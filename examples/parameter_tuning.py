#!/usr/bin/env python3
"""Exploring the Riptide parameter space (Table I / Figure 10).

Part 1 uses the closed-form Section II-B model to show why initial
windows matter at all (Figures 3 and 4).  Part 2 runs the live c_max
sweep of Figure 10 on a small deployment — serially, then again fanned
across 4 worker processes (repro.parallel) — prints the window CDFs and
the wall-time speedup, and checks the two sweeps agree exactly.

Run:  python examples/parameter_tuning.py     (about a minute)
"""

import os
import time

from repro.experiments import fig03_rtt_cdf, fig04_theoretical_gain, fig10_cmax_sweep

SWEEP_KWARGS = dict(
    c_max_values=(50, 100, 200),
    topology_codes=("LHR", "AMS", "JFK", "NRT", "SYD"),
    duration=30.0,
    warmup=10.0,
)


def main() -> None:
    print("== part 1: the model (why initcwnd matters) ==\n")
    print(fig03_rtt_cdf.run(samples=50_000).report())
    print()
    print(fig04_theoretical_gain.run().report())

    print("\n== part 2: live c_max sweep (Figure 10) ==")
    print("running 4 deployments (control + three c_max values) serially...")
    started = time.perf_counter()
    serial_result = fig10_cmax_sweep.run(**SWEEP_KWARGS)
    serial_wall = time.perf_counter() - started
    print(f"...and again across 4 worker processes ({os.cpu_count()} cpu here)...\n")
    started = time.perf_counter()
    result = fig10_cmax_sweep.run(workers=4, **SWEEP_KWARGS)
    parallel_wall = time.perf_counter() - started
    print(result.report())
    identical = all(
        result.cdfs[key].values == serial_result.cdfs[key].values
        for key in result.cdfs
    )
    print(
        f"\nserial sweep: {serial_wall:.1f}s, 4-worker sweep: {parallel_wall:.1f}s "
        f"({serial_wall / parallel_wall:.2f}x), identical CDFs: {identical}"
    )
    print(
        "\nNote the mode each series shows at its own c_max, and how the"
        "\ndistribution stops moving once c_max exceeds what the traffic"
        "\nactually reaches - the paper picks 100 for exactly this reason."
    )


if __name__ == "__main__":
    main()
