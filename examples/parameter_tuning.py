#!/usr/bin/env python3
"""Exploring the Riptide parameter space (Table I / Figure 10).

Part 1 uses the closed-form Section II-B model to show why initial
windows matter at all (Figures 3 and 4).  Part 2 runs the live c_max
sweep of Figure 10 on a small deployment and prints the window CDFs —
reproducing the knee at c_max = 100 that the paper uses to pick its
production setting.

Run:  python examples/parameter_tuning.py     (about a minute)
"""

from repro.experiments import fig03_rtt_cdf, fig04_theoretical_gain, fig10_cmax_sweep


def main() -> None:
    print("== part 1: the model (why initcwnd matters) ==\n")
    print(fig03_rtt_cdf.run(samples=50_000).report())
    print()
    print(fig04_theoretical_gain.run().report())

    print("\n== part 2: live c_max sweep (Figure 10) ==")
    print("running 4 deployments (control + three c_max values)...\n")
    result = fig10_cmax_sweep.run(
        c_max_values=(50, 100, 200),
        topology_codes=("LHR", "AMS", "JFK", "NRT", "SYD"),
        duration=30.0,
        warmup=10.0,
    )
    print(result.report())
    print(
        "\nNote the mode each series shows at its own c_max, and how the"
        "\ndistribution stops moving once c_max exceeds what the traffic"
        "\nactually reaches - the paper picks 100 for exactly this reason."
    )


if __name__ == "__main__":
    main()
