#!/usr/bin/env python3
"""Destinations as routes: host vs prefix granularity (Section III-B).

Two PoPs; organic traffic only ever flows between one pair of machines.
A brand-new machine in the client PoP then cold-fetches 100 KB:

* with /32 host routes, the server has never seen that machine and the
  response starts at the default window;
* with a /16 prefix route, everything learned from the neighbour's
  traffic applies, and the fetch is jump-started.

Run:  python examples/prefix_granularity.py
"""

from repro.cdn.cluster import CdnCluster, ClusterConfig, with_riptide_config
from repro.cdn.topology import Topology, build_paper_topology


def run_arm(granularity: str) -> None:
    full = build_paper_topology(servers_per_pop=3)
    topo = Topology(pops=tuple(p for p in full.pops if p.code in ("LHR", "JFK")))
    cluster = CdnCluster(
        topo,
        with_riptide_config(
            ClusterConfig(seed=21), granularity=granularity, prefix_length=16
        ),
    )
    # Only LHR host 0 talks to JFK; hosts 1 and 2 are silent bystanders.
    cluster.add_organic_workload("LHR", ["JFK"], host_index=0)
    cluster.start_riptide()
    cluster.run(25.0)

    jfk_host = cluster.hosts("JFK")[0]
    print(f"--- granularity = {granularity} ---")
    print("JFK route table:")
    for line in jfk_host.ip.route_show():
        print(f"  {line}")

    result = cluster.client("LHR", 2).fetch(cluster.server_address("JFK"), 100_000)
    cluster.run(10.0)
    status = f"{result.total_time * 1000:.0f} ms" if result.completed else "FAILED"
    print(f"cold 100 KB fetch from never-seen LHR host 2: {status}\n")


def main() -> None:
    print("== host routes vs prefix routes ==\n")
    run_arm("host")
    run_arm("prefix")
    print(
        "With prefix routes, windows learned from *any* traffic to the\n"
        "remote PoP jump-start connections to *every* host in it."
    )


if __name__ == "__main__":
    main()
