#!/usr/bin/env python3
"""Operating Riptide: reboots, load shifts and conservatism advisories.

The paper motivates Riptide with operational reality (Section II-A):
machines reboot and forget everything, and load balancing tears down
connections.  Section V proposes feeding Riptide "higher level
information (e.g., the need to perform immediate load balancing)" to set
more conservative windows.  This example walks all three situations on a
two-host deployment.

Run:  python examples/operations_playbook.py
"""

from repro.core import RiptideAgent, RiptideConfig
from repro.net import Prefix
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


def show(bed, agent, label):
    key = Prefix.host(bed.client.address)
    learned = agent.learned_window_for(key)
    effective = bed.server.initcwnd_for(bed.client.address)
    print(f"{label:<46} learned={learned} effective initcwnd={effective}")


def main() -> None:
    bed = TwoHostTestbed(
        rtt=0.100,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5, ttl=20.0))
    agent.start()

    print("== 1. steady state: learn from live traffic ==")
    request_response(bed, response_bytes=1_000_000)
    bed.sim.run(until=bed.sim.now + 2.0)
    show(bed, agent, "after a 1 MB transfer")

    print("\n== 2. load-balancing shift: advise conservatism ==")
    advisory = agent.advise_conservative(
        scale=0.5, duration=10.0, reason="shifting traffic from a drained PoP"
    )
    bed.sim.run(until=bed.sim.now + 2.0)
    show(bed, agent, f"advisory active ({advisory.reason})")
    bed.sim.run(until=bed.sim.now + 10.0)
    show(bed, agent, "advisory expired")

    print("\n== 3. reboot: all state lost, then relearned ==")
    bed.server.reboot()
    agent.stop(remove_routes=False)
    agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5, ttl=20.0))
    agent.start()
    bed.sim.run(until=bed.sim.now + 1.0)
    show(bed, agent, "immediately after reboot")
    request_response(bed, response_bytes=1_000_000)
    bed.sim.run(until=bed.sim.now + 2.0)
    show(bed, agent, "after the first post-reboot transfer")

    print("\n== 4. idle path: TTL expiry restores the default ==")
    for sock in list(bed.client.sockets()) + list(bed.server.sockets()):
        sock.vanish()
    bed.sim.run(until=bed.sim.now + 25.0)
    show(bed, agent, "25 s after all connections vanished (ttl=20)")
    print(f"\nagent counters: polls={agent.stats.polls} "
          f"installs={agent.stats.routes_installed} "
          f"expiries={agent.stats.routes_expired}")


if __name__ == "__main__":
    main()
