#!/usr/bin/env python3
"""A miniature of the paper's production evaluation (Section IV).

Builds a multi-continent CDN sub-topology, runs organic traffic on every
PoP, then sends the 10/50/100 KB diagnostic probe fleet from a European
and a North American vantage point — once without Riptide (control) and
once with it.  Prints the Figure 12-14 completion-time table and the
Figure 15-16 percentile-gain profile.

Run:  python examples/probe_study.py          (about a minute)
"""

from repro.experiments import fig12_14_probe_times, fig15_16_percentile_gain
from repro.experiments.scenarios import ProbeStudyConfig, run_paired_probe_study


def main() -> None:
    config = ProbeStudyConfig(
        topology_codes=("LHR", "AMS", "JFK", "IAD", "NRT", "SYD"),
        warmup=15.0,
        duration=40.0,
        probe_interval=6.0,
    )
    print("== paired probe study (control vs Riptide) ==")
    print(f"PoPs: {', '.join(config.topology_codes)}")
    print(f"sources: {', '.join(config.source_pops)}")
    print("running both arms...\n")

    control, riptide = run_paired_probe_study(config)
    print(
        f"control: {len(control.fleet.results)} probes, "
        f"riptide: {len(riptide.fleet.results)} probes\n"
    )

    print(fig12_14_probe_times.build_result(control, riptide).report())
    print()
    print(fig15_16_percentile_gain.build_result(control, riptide).report())

    learned = sum(len(a.learned_table()) for a in riptide.cluster.all_agents())
    installs = sum(a.stats.routes_installed for a in riptide.cluster.all_agents())
    print(f"\nRiptide state: {learned} live learned routes, "
          f"{installs} route installs issued")


if __name__ == "__main__":
    main()
