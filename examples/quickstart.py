#!/usr/bin/env python3
"""Quickstart: watch Riptide jump-start a connection.

Two hosts, one 100 ms wide-area path.  A first (cold) 100 KB transfer
pays full TCP slow start from the default 10-segment window.  Riptide on
the server observes the connection's grown window, installs a learned
``initcwnd`` route (the paper's Figure 8 command), and the next cold
transfer completes in a single round trip.

Run:  python examples/quickstart.py
"""

from repro.core import RiptideAgent, RiptideConfig
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


def main() -> None:
    bed = TwoHostTestbed(
        rtt=0.100,
        bandwidth_bps=1e9,
        # Raise the initial receive window to cover c_max (Section III-C).
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()

    print("== Riptide quickstart ==")
    print(f"path: {bed.trunk.rtt * 1000:.0f} ms RTT, 1 Gbps\n")

    # --- 1. cold transfer without Riptide --------------------------------
    cold = request_response(bed, response_bytes=100_000)
    print(
        f"cold 100 KB transfer (default IW10):   {cold.total_time * 1000:6.0f} ms"
    )

    # --- 2. start Riptide on the server ----------------------------------
    agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
    agent.start()
    # Organic traffic grows a window Riptide can learn from.
    request_response(bed, response_bytes=1_000_000)
    bed.sim.run(until=bed.sim.now + 2.0)

    print("\nserver route table after learning:")
    for line in bed.server.ip.route_show():
        print(f"  ip route: {line}")
    print(f"learned table: {agent.learned_table().windows()}\n")

    # --- 3. cold transfer with the learned window ------------------------
    # Close pooled connections so the next fetch is genuinely cold.
    for sock in list(bed.client.sockets()):
        sock.close()
    bed.sim.run(until=bed.sim.now + 1.0)

    learned_initcwnd = bed.server.initcwnd_for(bed.client.address)
    warm_start = request_response(bed, response_bytes=100_000)
    print(
        f"cold 100 KB transfer (Riptide initcwnd={learned_initcwnd}"
        f" on server): {warm_start.total_time * 1000:6.0f} ms"
    )
    gain = 1.0 - warm_start.total_time / cold.total_time
    print(f"\nimprovement: {gain:.0%} "
          f"({cold.total_time * 1000:.0f} ms -> {warm_start.total_time * 1000:.0f} ms)")


if __name__ == "__main__":
    main()
