"""Small ready-made topologies for tests, examples and quick studies.

:class:`TwoHostTestbed` wires two hosts in two zones over one wide-area
trunk — the smallest fabric on which every TCP and Riptide behaviour can
be exercised.  :func:`request_response` runs one complete request/response
exchange and reports its timing, which is the primitive the paper's probe
measurements are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.linux.host import Host
from repro.net.addresses import Prefix
from repro.net.link import DuplexLink
from repro.net.loss import LossModel
from repro.net.network import Network, PathSpec
from repro.sim.kernel import Simulator
from repro.sim.rand import RandomStreams
from repro.tcp.constants import TcpConfig
from repro.tcp.socket import TcpSocket


class TwoHostTestbed:
    """Two hosts, two zones, one configurable trunk."""

    CLIENT_ZONE = Prefix.parse("10.0.0.0/24")
    SERVER_ZONE = Prefix.parse("10.1.0.0/24")

    def __init__(
        self,
        rtt: float = 0.100,
        bandwidth_bps: float = 1e9,
        queue_limit_packets: int = 1024,
        loss_model: LossModel | None = None,
        client_config: TcpConfig | None = None,
        server_config: TcpConfig | None = None,
        seed: int = 42,
    ) -> None:
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.network = Network(self.sim, self.streams)
        self.network.add_zone(self.CLIENT_ZONE)
        self.network.add_zone(self.SERVER_ZONE)
        spec = PathSpec(
            bandwidth_bps=bandwidth_bps,
            propagation_delay=rtt / 2.0,
            queue_limit_packets=queue_limit_packets,
            loss_model=loss_model if loss_model is not None else _no_loss(),
        )
        self.trunk: DuplexLink = self.network.connect_zones(
            self.CLIENT_ZONE, self.SERVER_ZONE, spec
        )
        self.client = Host(
            self.sim, self.network, "10.0.0.1", config=client_config, name="client"
        )
        self.server = Host(
            self.sim, self.network, "10.1.0.1", config=server_config, name="server"
        )

    def serve_echo(self, port: int = 80) -> None:
        """Listen on the server; respond to ``("get", n)`` with ``n`` bytes."""

        def on_message(sock: TcpSocket, payload: Any, size: int) -> None:
            if isinstance(payload, tuple) and payload and payload[0] == "get":
                sock.send_message(("data", payload[1]), payload[1])

        def on_accept(sock: TcpSocket) -> None:
            sock.on_message = on_message

        self.server.listen(port, on_accept=on_accept)


@dataclass
class ExchangeResult:
    """Timing of one request/response exchange."""

    started_at: float
    established_at: float | None
    completed_at: float | None
    response_bytes: int
    socket: TcpSocket

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def total_time(self) -> float:
        """Request start (including handshake) to full response arrival."""
        if self.completed_at is None:
            raise ValueError("exchange did not complete")
        return self.completed_at - self.started_at


def request_response(
    testbed: TwoHostTestbed,
    response_bytes: int,
    request_bytes: int = 200,
    port: int = 80,
    deadline: float = 60.0,
) -> ExchangeResult:
    """Open a connection, fetch ``response_bytes``, run until complete."""
    result = ExchangeResult(
        started_at=testbed.sim.now,
        established_at=None,
        completed_at=None,
        response_bytes=response_bytes,
        socket=None,  # type: ignore[arg-type] - set below
    )

    def on_established(sock: TcpSocket) -> None:
        result.established_at = testbed.sim.now
        sock.send_message(("get", response_bytes), request_bytes)

    def on_message(sock: TcpSocket, payload: Any, size: int) -> None:
        result.completed_at = testbed.sim.now

    sock = testbed.client.connect(
        testbed.server.address,
        port,
        on_established=on_established,
        on_message=on_message,
    )
    result.socket = sock
    testbed.sim.run(until=testbed.sim.now + deadline)
    return result


def _no_loss() -> LossModel:
    from repro.net.loss import NoLoss

    return NoLoss()
