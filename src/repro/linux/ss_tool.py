"""An ``ss``-shaped socket statistics interface.

Riptide "polls the congestion window of all open connections via the ss
utility".  :meth:`SsTool.tcp_info` returns snapshots of the host's live
sockets; filters mirror the flags the agent would pass on a real server
(established-only, outgoing-only, created-after).

The tool carries an injectable fault surface (see :mod:`repro.faults`)
modelling how ``ss`` actually misbehaves on a loaded box:

* ``"error"`` — the invocation fails outright (:class:`ToolError`);
* ``"empty"`` — the poll returns no sockets at all;
* ``"stale"`` — the poll returns the *previous* successful snapshot
  (a wedged collector re-serving cached data);
* ``"partial"`` — only every other socket makes it into the output
  (truncated output, the paper agent's skip-and-continue case).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.linux.errors import ToolError
from repro.tcp.socket import SocketStats, TcpState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.linux.host import Host

#: Fault modes an ``ss`` poll can be armed with.
SS_FAULT_MODES = ("error", "empty", "stale", "partial")


class SyntheticSocketSource(Protocol):
    """Something that fabricates socket snapshots for ``ss`` polls.

    The fluid traffic engine registers one of these per host
    (``host.fluid_sources``) so mean-field cohorts show up in ``ss``
    output exactly like packet-granular sockets — the Riptide agent,
    the EWMA learner and the safety guard stay byte-for-byte unchanged.
    Returned snapshots carry real ``state``/``is_client``/``created_at``
    fields; the tool applies its usual filters to them.
    """

    def socket_stats(self) -> list[SocketStats]: ...


class SsTool:
    """``ss -ti``-style observation of a host's sockets."""

    def __init__(self, host: "Host") -> None:
        self._host = host
        self.polls = 0
        self.faulted_polls = 0
        self._fault_mode: str | None = None
        self._last_good: list[SocketStats] = []

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    @property
    def fault_mode(self) -> str | None:
        return self._fault_mode

    def set_fault(self, mode: str) -> None:
        """Arm a failure mode for subsequent polls."""
        if mode not in SS_FAULT_MODES:
            raise ValueError(
                f"unknown ss fault mode {mode!r}; expected one of "
                f"{', '.join(SS_FAULT_MODES)}"
            )
        self._fault_mode = mode

    def clear_fault(self) -> None:
        self._fault_mode = None

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def tcp_info(
        self,
        established_only: bool = True,
        outgoing_only: bool = False,
        created_after: float | None = None,
    ) -> list[SocketStats]:
        """Snapshots of all live sockets matching the filters."""
        self.polls += 1
        mode = self._fault_mode
        if mode is not None:
            self.faulted_polls += 1
            if mode == "error":
                raise ToolError(f"ss: poll failed on {self._host.address}")
            if mode == "empty":
                return []
            if mode == "stale":
                return list(self._last_good)
        snapshots = []
        for sock in self._host.sockets():
            if established_only and sock.state is not TcpState.ESTABLISHED:
                continue
            if outgoing_only and not sock.is_client:
                continue
            if created_after is not None and sock.created_at < created_after:
                continue
            snapshots.append(sock.stats_snapshot())
        for source in self._host.fluid_sources:
            for stats in source.socket_stats():
                if established_only and stats.state is not TcpState.ESTABLISHED:
                    continue
                if outgoing_only and not stats.is_client:
                    continue
                if created_after is not None and stats.created_at < created_after:
                    continue
                snapshots.append(stats)
        if mode == "partial":
            return snapshots[::2]
        self._last_good = snapshots
        return snapshots

    def format_lines(self, **filters) -> list[str]:
        """Human-readable lines approximating ``ss -ti`` output."""
        lines = []
        for info in self.tcp_info(**filters):
            srtt = f"{info.srtt * 1e3:.1f}" if info.srtt is not None else "-"
            lines.append(
                f"{info.state.value:<12} {self._host.address}:{info.local_port}"
                f" -> {info.remote_address}:{info.remote_port}"
                f" cubic cwnd:{info.cwnd} rtt:{srtt}ms"
                f" bytes_acked:{info.bytes_acked}"
            )
        return lines

    def __repr__(self) -> str:
        fault = f" fault={self._fault_mode}" if self._fault_mode else ""
        return f"<SsTool host={self._host.address} polls={self.polls}{fault}>"


__all__ = ["SS_FAULT_MODES", "SocketStats", "SsTool", "SyntheticSocketSource"]
