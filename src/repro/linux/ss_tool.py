"""An ``ss``-shaped socket statistics interface.

Riptide "polls the congestion window of all open connections via the ss
utility".  :meth:`SsTool.tcp_info` returns snapshots of the host's live
sockets; filters mirror the flags the agent would pass on a real server
(established-only, outgoing-only, created-after).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tcp.socket import SocketStats, TcpState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.linux.host import Host


class SsTool:
    """``ss -ti``-style observation of a host's sockets."""

    def __init__(self, host: "Host") -> None:
        self._host = host
        self.polls = 0

    def tcp_info(
        self,
        established_only: bool = True,
        outgoing_only: bool = False,
        created_after: float | None = None,
    ) -> list[SocketStats]:
        """Snapshots of all live sockets matching the filters."""
        self.polls += 1
        snapshots = []
        for sock in self._host.sockets():
            if established_only and sock.state is not TcpState.ESTABLISHED:
                continue
            if outgoing_only and not sock.is_client:
                continue
            if created_after is not None and sock.created_at < created_after:
                continue
            snapshots.append(sock.stats_snapshot())
        return snapshots

    def format_lines(self, **filters) -> list[str]:
        """Human-readable lines approximating ``ss -ti`` output."""
        lines = []
        for info in self.tcp_info(**filters):
            srtt = f"{info.srtt * 1e3:.1f}" if info.srtt is not None else "-"
            lines.append(
                f"{info.state.value:<12} {self._host.address}:{info.local_port}"
                f" -> {info.remote_address}:{info.remote_port}"
                f" cubic cwnd:{info.cwnd} rtt:{srtt}ms"
                f" bytes_acked:{info.bytes_acked}"
            )
        return lines

    def __repr__(self) -> str:
        return f"<SsTool host={self._host.address} polls={self.polls}>"


__all__ = ["SocketStats", "SsTool"]
