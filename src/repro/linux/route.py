"""The host route table (FIB) with per-route TCP window overrides.

Linux allows ``initcwnd`` and ``initrwnd`` to be attached to individual
routes; a connection picks them up at establishment via longest-prefix
match on the destination.  This is the one kernel mechanism Riptide uses,
so it is modelled faithfully: most-specific prefix wins, ``/32`` host
routes beat prefix routes beat the default route.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.net.addresses import IPv4Address, Prefix


class _Keep:
    """Sentinel: leave an attribute as it is (see ``KEEP``)."""

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "KEEP"


#: Default for :meth:`RouteTable.update_attributes` arguments: an
#: attribute not passed explicitly keeps its current value.  ``None``
#: remains meaningful as an explicit "clear this attribute" — the two
#: must not be conflated, or updating ``initcwnd`` silently wipes an
#: existing ``initrwnd``.
KEEP = _Keep()


@dataclass(frozen=True)
class RouteEntry:
    """One FIB entry.

    ``initcwnd``/``initrwnd`` of ``None`` mean "inherit the sysctl
    default", exactly like a route without those attributes on Linux.
    """

    prefix: Prefix
    initcwnd: int | None = None
    initrwnd: int | None = None
    proto: str = "static"
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if self.initcwnd is not None and self.initcwnd < 1:
            raise ValueError(f"initcwnd must be >= 1, got {self.initcwnd}")
        if self.initrwnd is not None and self.initrwnd < 1:
            raise ValueError(f"initrwnd must be >= 1, got {self.initrwnd}")

    def format_linux(self) -> str:
        """Render roughly as ``ip route show`` would."""
        parts = [str(self.prefix), f"proto {self.proto}"]
        if self.initcwnd is not None:
            parts.append(f"initcwnd {self.initcwnd}")
        if self.initrwnd is not None:
            parts.append(f"initrwnd {self.initrwnd}")
        return " ".join(parts)


class RouteTable:
    """Longest-prefix-match route table."""

    def __init__(self) -> None:
        self._routes: dict[Prefix, RouteEntry] = {}

    def __len__(self) -> int:
        return len(self._routes)

    def add(self, entry: RouteEntry) -> None:
        """Add a route; fails if the exact prefix already exists."""
        if entry.prefix in self._routes:
            raise KeyError(f"route for {entry.prefix} already exists")
        self._routes[entry.prefix] = entry

    def replace(self, entry: RouteEntry) -> None:
        """Add or overwrite the route for the entry's prefix."""
        self._routes[entry.prefix] = entry

    def delete(self, prefix: Prefix) -> RouteEntry:
        """Remove and return the route for an exact prefix.

        Raises :class:`KeyError` when no such route exists.
        """
        return self._routes.pop(prefix)

    def get(self, prefix: Prefix) -> RouteEntry | None:
        """The route for an *exact* prefix, if present."""
        return self._routes.get(prefix)

    def lookup(self, destination: IPv4Address) -> RouteEntry | None:
        """Longest-prefix match for a destination address."""
        best: RouteEntry | None = None
        for prefix, entry in self._routes.items():
            if prefix.contains(destination):
                if best is None or prefix.length > best.prefix.length:
                    best = entry
        return best

    def entries(self) -> list[RouteEntry]:
        """All routes, most specific first (stable order within a length)."""
        return sorted(
            self._routes.values(),
            key=lambda e: (-e.prefix.length, e.prefix.network.value),
        )

    def update_attributes(
        self,
        prefix: Prefix,
        initcwnd: "int | None | _Keep" = KEEP,
        initrwnd: "int | None | _Keep" = KEEP,
    ) -> RouteEntry:
        """Modify window attributes of an existing route in place.

        Attributes not passed keep their current value; pass ``None``
        explicitly to clear one (restore the sysctl default).
        """
        entry = self._routes[prefix]
        changes: dict[str, int | None] = {}
        if not isinstance(initcwnd, _Keep):
            changes["initcwnd"] = initcwnd
        if not isinstance(initrwnd, _Keep):
            changes["initrwnd"] = initrwnd
        updated = replace(entry, **changes)
        self._routes[prefix] = updated
        return updated

    def __repr__(self) -> str:
        return f"<RouteTable routes={len(self._routes)}>"
