"""An ``ip route``-shaped interface over a host's route table.

Riptide "sets a route (using the Linux ip tool)" — Figure 8 of the paper
shows ``ip route add 10.0.0.127 dev eth0 proto static initcwnd 80``.  This
class is the in-simulation equivalent: the same verbs (``add``,
``replace``, ``del``), the same semantics (a route that only exists to
carry an ``initcwnd``), plus a ``show`` that renders Linux-style lines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.linux.errors import ToolError
from repro.linux.route import RouteEntry
from repro.net.addresses import IPv4Address, Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.linux.host import Host


class IpRouteTool:
    """``ip route`` verbs bound to one host.

    Mutating verbs (``add``/``replace``/``del``) carry an injectable
    failure mode (see :mod:`repro.faults`): while armed, every command
    raises :class:`ToolError` — netlink said no — and the route table is
    untouched.  Read verbs (``show``/``get``) keep working, as they do on
    a real box when the FIB is fine but modifications are rejected.
    """

    def __init__(self, host: "Host") -> None:
        self._host = host
        self.commands_issued = 0
        self.commands_failed = 0
        self._failing = False

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    @property
    def failing(self) -> bool:
        return self._failing

    def set_fault(self) -> None:
        """Arm the failure mode: mutating verbs raise until cleared."""
        self._failing = True

    def clear_fault(self) -> None:
        self._failing = False

    def _check_fault(self, verb: str, destination: object) -> None:
        if self._failing:
            self.commands_failed += 1
            raise ToolError(
                f"ip route {verb} {destination}: RTNETLINK answers: "
                "Operation not permitted"
            )

    def route_add(
        self,
        destination: "Prefix | IPv4Address | str",
        initcwnd: int | None = None,
        initrwnd: int | None = None,
    ) -> RouteEntry:
        """``ip route add <dst> ... initcwnd N`` — fails if present."""
        self._check_fault("add", destination)
        entry = self._entry(destination, initcwnd, initrwnd)
        self._host.route_table.add(entry)
        self.commands_issued += 1
        return entry

    def route_replace(
        self,
        destination: "Prefix | IPv4Address | str",
        initcwnd: int | None = None,
        initrwnd: int | None = None,
    ) -> RouteEntry:
        """``ip route replace`` — add-or-overwrite, Riptide's usual verb."""
        self._check_fault("replace", destination)
        entry = self._entry(destination, initcwnd, initrwnd)
        self._host.route_table.replace(entry)
        self.commands_issued += 1
        return entry

    def route_del(self, destination: "Prefix | IPv4Address | str") -> RouteEntry:
        """``ip route del <dst>`` — raises KeyError when absent."""
        self._check_fault("del", destination)
        prefix = self._as_prefix(destination)
        entry = self._host.route_table.delete(prefix)
        self.commands_issued += 1
        return entry

    def route_show(self) -> list[str]:
        """Linux-style ``ip route show`` output lines."""
        return [entry.format_linux() for entry in self._host.route_table.entries()]

    def route_get(self, destination: "IPv4Address | str") -> RouteEntry | None:
        """``ip route get`` — the route a connection to ``destination``
        would resolve to (longest-prefix match)."""
        return self._host.route_table.lookup(IPv4Address(destination))

    def _entry(
        self,
        destination: "Prefix | IPv4Address | str",
        initcwnd: int | None,
        initrwnd: int | None,
    ) -> RouteEntry:
        return RouteEntry(
            prefix=self._as_prefix(destination),
            initcwnd=initcwnd,
            initrwnd=initrwnd,
            created_at=self._host.sim.now,
        )

    @staticmethod
    def _as_prefix(destination: "Prefix | IPv4Address | str") -> Prefix:
        if isinstance(destination, Prefix):
            return destination
        if isinstance(destination, IPv4Address):
            return Prefix.host(destination)
        return Prefix.parse(destination)

    def __repr__(self) -> str:
        fault = " failing" if self._failing else ""
        return (
            f"<IpRouteTool host={self._host.address} "
            f"issued={self.commands_issued}{fault}>"
        )
