"""A small sysctl façade over :class:`~repro.tcp.constants.TcpConfig`.

Riptide's deployment story (Section III-C) involves two host-wide knobs:
the congestion-control algorithm and the memory ceiling that bounds
receive-window growth.  This façade exposes them under their Linux names
so examples and experiments read like operations runbooks.
"""

from __future__ import annotations

from dataclasses import asdict, replace

from repro.tcp.constants import TcpConfig

_NAME_TO_FIELD = {
    "net.ipv4.tcp_congestion_control": "congestion_control",
    "net.ipv4.tcp_rmem_max": "rmem_max_bytes",
    "net.ipv4.tcp_mss": "mss",
    "net.ipv4.tcp_initcwnd_default": "default_initcwnd",
    "net.ipv4.tcp_initrwnd_default": "default_initrwnd",
    "net.ipv4.tcp_delayed_ack": "delayed_ack",
}


class Sysctl:
    """Get/set TCP tunables by their Linux-style names."""

    def __init__(self, config: TcpConfig | None = None) -> None:
        self._config = config if config is not None else TcpConfig()

    @property
    def config(self) -> TcpConfig:
        """The current immutable configuration snapshot."""
        return self._config

    def get(self, name: str):
        field = self._lookup(name)
        return getattr(self._config, field)

    def set(self, name: str, value) -> None:
        field = self._lookup(name)
        self._config = replace(self._config, **{field: value})

    def names(self) -> list[str]:
        return sorted(_NAME_TO_FIELD)

    def dump(self) -> dict[str, object]:
        """All tunables as ``{linux_name: value}``."""
        values = asdict(self._config)
        return {name: values[field] for name, field in _NAME_TO_FIELD.items()}

    @staticmethod
    def _lookup(name: str) -> str:
        try:
            return _NAME_TO_FIELD[name]
        except KeyError:
            known = ", ".join(sorted(_NAME_TO_FIELD))
            raise KeyError(f"unknown sysctl {name!r} (known: {known})") from None

    def __repr__(self) -> str:
        return f"<Sysctl {self._config}>"
