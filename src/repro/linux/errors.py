"""Errors raised by the simulated host tools (``ss``, ``ip``).

On a real server the Riptide agent shells out to ``ss`` and ``ip``; both
can fail — a busy box times the poll out, ``ip route`` returns a nonzero
exit status, netlink rejects the message.  :class:`ToolError` is the
in-simulation equivalent of that nonzero exit status: fault injection
(:mod:`repro.faults`) arms it, and the agent's resilience policies
(:mod:`repro.core.agent`) absorb it.
"""


class ToolError(RuntimeError):
    """A host tool invocation failed (nonzero exit status)."""
