"""The simulated server: sockets, listeners, route table, tools.

A :class:`Host` is one machine in one PoP.  It owns

* the route table that Riptide manipulates (``host.ip``),
* the socket statistics view that Riptide polls (``host.ss``),
* the TCP configuration (MSS, default initcwnd/initrwnd, congestion
  control), and
* the live sockets and listeners, with demultiplexing of incoming packets.

The two methods that close the loop for the paper are
:meth:`initcwnd_for` and :meth:`initrwnd_for`: every new connection —
active or passive — resolves its initial windows through the route table
at establishment time, exactly as the Linux kernel does.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable

#: Signature of an in-kernel initial-window hook (see Host.initcwnd_hook).
InitcwndHook = Callable[["IPv4Address"], "int | None"]

from repro.linux.ip_tool import IpRouteTool
from repro.linux.route import RouteTable
from repro.linux.ss_tool import SsTool, SyntheticSocketSource
from repro.net.addresses import IPv4Address
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.kernel import Simulator
from repro.tcp.constants import TcpConfig
from repro.tcp.errors import TcpError
from repro.tcp.listener import AcceptCallback, TcpListener
from repro.tcp.socket import TcpSocket
from repro.tcp.wire import Segment

_EPHEMERAL_PORT_START = 32768

ConnKey = tuple[int, IPv4Address, int]


class Host:
    """One simulated Linux server attached to the fabric."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: "IPv4Address | str",
        config: TcpConfig | None = None,
        name: str | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.address = IPv4Address(address)
        self.config = config if config is not None else TcpConfig()
        self.name = name if name is not None else str(self.address)
        self.route_table = RouteTable()
        self.ip = IpRouteTool(self)
        self.ss = SsTool(self)
        self._sockets: dict[ConnKey, TcpSocket] = {}
        self._listeners: dict[int, TcpListener] = {}
        self._ephemeral_ports = itertools.count(_EPHEMERAL_PORT_START)
        #: Optional in-kernel initial-window resolver, consulted before
        #: the route table (the Section V "Kernel Implementation" path).
        #: Returning None falls through to the normal FIB lookup.
        self.initcwnd_hook: InitcwndHook | None = None
        #: Mean-field cohorts whose synthesized snapshots appear in
        #: ``ss`` polls alongside the real sockets (repro.cdn hybrid
        #: mode).  Fabric-level state: a reboot does not clear it — the
        #: background population exists independently of this box.
        self.fluid_sources: list[SyntheticSocketSource] = []
        self.packets_received = 0
        self.packets_unmatched = 0
        self.reboots = 0
        network.attach(self)

    # ------------------------------------------------------------------
    # initial-window resolution (the Riptide hook point)
    # ------------------------------------------------------------------

    def initcwnd_for(self, destination: IPv4Address) -> int:
        """Initial congestion window for a new connection to ``destination``.

        An installed kernel hook wins, then longest-prefix match in the
        route table, then the host default (10 segments on stock Linux).
        """
        return self.initcwnd_with_source(destination)[0]

    def initcwnd_with_source(self, destination: IPv4Address) -> tuple[int, str]:
        """Resolve the initial window plus where it came from.

        The source tag (``"hook"``, ``"route"`` or ``"default"``) lands
        on the flow record; the attribution report uses it to tell a
        Riptide-jump-started connection from one that fell back to the
        sysctl default because no route was learned yet.
        """
        if self.initcwnd_hook is not None:
            value = self.initcwnd_hook(destination)
            if value is not None:
                return value, "hook"
        route = self.route_table.lookup(destination)
        if route is not None and route.initcwnd is not None:
            return route.initcwnd, "route"
        return self.config.default_initcwnd, "default"

    def initrwnd_for(self, destination: IPv4Address) -> int:
        """Initial receive window (segments) advertised to ``destination``."""
        route = self.route_table.lookup(destination)
        if route is not None and route.initrwnd is not None:
            return route.initrwnd
        return self.config.default_initrwnd

    # ------------------------------------------------------------------
    # socket lifecycle
    # ------------------------------------------------------------------

    def connect(
        self,
        remote_address: "IPv4Address | str",
        remote_port: int,
        on_established: Callable[[TcpSocket], None] | None = None,
        on_message: Callable[[TcpSocket, object, int], None] | None = None,
        on_closed: Callable[[TcpSocket], None] | None = None,
        on_error: Callable[[TcpSocket, str], None] | None = None,
    ) -> TcpSocket:
        """Actively open a connection and return the client socket."""
        remote = IPv4Address(remote_address)
        local_port = next(self._ephemeral_ports)
        initial_cwnd, cwnd_source = self.initcwnd_with_source(remote)
        sock = TcpSocket(
            host=self,
            local_port=local_port,
            remote_address=remote,
            remote_port=remote_port,
            config=self.config,
            initial_cwnd=initial_cwnd,
            initial_rwnd_segments=self.initrwnd_for(remote),
            cwnd_source=cwnd_source,
        )
        sock.is_client = True
        sock.on_established = on_established
        sock.on_message = on_message
        sock.on_closed = on_closed
        sock.on_error = on_error
        self._register(sock)
        sock.connect()
        return sock

    def create_server_socket(
        self,
        local_port: int,
        remote_address: IPv4Address,
        remote_port: int,
    ) -> TcpSocket:
        """Build and register the passive-side socket (listener path)."""
        initial_cwnd, cwnd_source = self.initcwnd_with_source(remote_address)
        sock = TcpSocket(
            host=self,
            local_port=local_port,
            remote_address=remote_address,
            remote_port=remote_port,
            config=self.config,
            initial_cwnd=initial_cwnd,
            initial_rwnd_segments=self.initrwnd_for(remote_address),
            cwnd_source=cwnd_source,
        )
        self._register(sock)
        return sock

    def listen(self, port: int, on_accept: AcceptCallback | None = None) -> TcpListener:
        """Open a listening port."""
        if port in self._listeners:
            raise TcpError(f"port {port} is already listening on {self.address}")
        listener = TcpListener(self, port, on_accept)
        self._listeners[port] = listener
        return listener

    def stop_listening(self, port: int) -> None:
        self._listeners.pop(port, None)

    def sockets(self) -> Iterable[TcpSocket]:
        """All live (registered) sockets."""
        return list(self._sockets.values())

    def socket_count(self) -> int:
        return len(self._sockets)

    def socket_closed(self, sock: TcpSocket) -> None:
        """Called by sockets on teardown to deregister themselves."""
        key = (sock.local_port, sock.remote_address, sock.remote_port)
        registered = self._sockets.get(key)
        if registered is sock:
            del self._sockets[key]

    def _register(self, sock: TcpSocket) -> None:
        key = (sock.local_port, sock.remote_address, sock.remote_port)
        if key in self._sockets:
            raise TcpError(f"socket collision on {key}")
        self._sockets[key] = sock

    def reboot(self) -> None:
        """Simulate a reboot (Section II-A's motivating failure case).

        All sockets vanish without so much as a FIN (peers discover the
        loss through their own timers), the route table — including every
        Riptide-installed entry — is wiped, and any kernel hook is gone.
        Listeners persist: services restart with the machine.  Everything
        Riptide had learned, locally *and about this node on remote
        machines*, must be re-learned.
        """
        self.reboots += 1
        for sock in list(self._sockets.values()):
            sock.vanish()
        self._sockets.clear()
        self.route_table = RouteTable()
        self.initcwnd_hook = None

    # ------------------------------------------------------------------
    # packet I/O
    # ------------------------------------------------------------------

    def send_packet(self, packet: Packet) -> None:
        self.network.send(packet)

    def receive_packet(self, packet: Packet) -> None:
        """Demultiplex an incoming packet to a socket or listener."""
        self.packets_received += 1
        segment = packet.payload
        if not isinstance(segment, Segment):
            self.packets_unmatched += 1
            return
        key = (segment.dst_port, packet.src, segment.src_port)
        sock = self._sockets.get(key)
        if sock is not None:
            sock.handle_segment(segment)
            return
        if segment.syn and not segment.is_ack:
            listener = self._listeners.get(segment.dst_port)
            if listener is not None:
                listener.handle_syn(segment, packet.src)
                return
        self.packets_unmatched += 1

    def __repr__(self) -> str:
        return (
            f"<Host {self.name!r} {self.address} sockets={len(self._sockets)} "
            f"listeners={sorted(self._listeners)}>"
        )
