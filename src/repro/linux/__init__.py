"""Simulated Linux host environment.

Provides the kernel-adjacent surfaces Riptide actually touches on a real
server: a route table with per-route ``initcwnd``/``initrwnd`` and
longest-prefix matching (:mod:`repro.linux.route`), an ``ip route``-style
manipulation tool (:mod:`repro.linux.ip_tool`), an ``ss``-style socket
statistics tool (:mod:`repro.linux.ss_tool`), and the host object that owns
sockets, listeners and the TCP configuration (:mod:`repro.linux.host`).
"""

from repro.linux.errors import ToolError
from repro.linux.host import Host
from repro.linux.ip_tool import IpRouteTool
from repro.linux.route import RouteEntry, RouteTable
from repro.linux.ss_tool import SS_FAULT_MODES, SsTool
from repro.linux.sysctl import Sysctl

__all__ = [
    "Host",
    "IpRouteTool",
    "RouteEntry",
    "RouteTable",
    "SS_FAULT_MODES",
    "SsTool",
    "Sysctl",
    "ToolError",
]
