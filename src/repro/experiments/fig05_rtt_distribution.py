"""Figure 5: RTT variation between globally deployed datacenters.

Paper anchor: "in the median case we observe RTTs of over 125ms" — half
of all PoP pairs are at least that far apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_table
from repro.cdn.topology import Topology, build_paper_topology


@dataclass
class Fig05Result:
    """The all-pairs RTT population."""

    cdf: EmpiricalCdf
    fraction_over_125ms: float

    def report(self) -> str:
        rows = [
            (f"p{level}", f"{self.cdf.quantile(level / 100.0) * 1000:.0f} ms")
            for level in (10, 25, 50, 75, 90)
        ]
        rows.append(("pairs > 125 ms", f"{self.fraction_over_125ms:.0%} (paper: 50%)"))
        return format_table(
            ("statistic", "value"),
            rows,
            title="Figure 5: inter-PoP RTT distribution",
        )


def run(topology: Topology | None = None) -> Fig05Result:
    topology = topology if topology is not None else build_paper_topology()
    rtts = topology.all_pair_rtts()
    cdf = EmpiricalCdf(rtts)
    return Fig05Result(
        cdf=cdf,
        fraction_over_125ms=1.0 - cdf.cdf(0.125),
    )
