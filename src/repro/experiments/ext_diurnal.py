"""Extension experiment: Riptide across traffic valleys (diurnal load).

Not a paper figure — it quantifies a consequence the paper states in its
Discussion: "if a server is idle ... Riptide effectiveness would be
minimal", because the TTL removes learned routes once connections drain.
An on/off workload with valleys longer than the TTL makes the first
fetches of each peak start cold from the kernel default, while fetches
later in the peak ride freshly relearned windows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.cdn.diurnal import OnOffProfile
from repro.cdn.filesizes import FileSizeDistribution
from repro.cdn.workload import OrganicWorkload, OrganicWorkloadConfig
from repro.core.config import RiptideConfig
from repro.experiments.scenarios import sub_topology

FETCH_BYTES = 100_000


@dataclass
class DiurnalResult:
    """Cold-fetch times right after each valley vs later in each peak."""

    post_valley_times: list[float]
    mid_peak_times: list[float]
    ttl: float
    valley: float

    @property
    def post_valley_median(self) -> float:
        return sorted(self.post_valley_times)[len(self.post_valley_times) // 2]

    @property
    def mid_peak_median(self) -> float:
        return sorted(self.mid_peak_times)[len(self.mid_peak_times) // 2]

    @property
    def relearning_penalty(self) -> float:
        """How much slower the first post-valley fetch is (fractional)."""
        if self.mid_peak_median == 0:
            return 0.0
        return self.post_valley_median / self.mid_peak_median - 1.0

    def report(self) -> str:
        rows = [
            ("post-valley (entries expired)",
             f"{self.post_valley_median * 1000:.0f} ms",
             str(len(self.post_valley_times))),
            ("mid-peak (entries live)",
             f"{self.mid_peak_median * 1000:.0f} ms",
             str(len(self.mid_peak_times))),
        ]
        table = format_table(
            ("fetch timing", "median", "n"),
            rows,
            title=(
                f"Extension: {FETCH_BYTES // 1000} KB cold fetches under "
                f"on/off load (valley {self.valley:.0f}s > ttl {self.ttl:.0f}s)"
            ),
        )
        return table + (
            f"\nrelearning penalty after each valley: "
            f"{self.relearning_penalty:+.0%}"
        )


def run(
    ttl: float = 8.0,
    valley: float = 15.0,
    peak: float = 25.0,
    cycles: int = 4,
    seed: int = 42,
) -> DiurnalResult:
    if valley <= ttl:
        raise ValueError("the valley must outlast the ttl to expire entries")
    topology = sub_topology(("LHR", "JFK"))
    riptide_config = RiptideConfig(
        granularity="prefix", prefix_length=16, ttl=ttl, update_interval=0.5
    )
    cluster = CdnCluster(
        topology, replace(ClusterConfig(seed=seed), riptide=riptide_config)
    )
    # On/off organic traffic between the PoPs drives learning during
    # peaks; valleys drain connections so the TTL can lapse.
    profile = OnOffProfile(on_duration=peak, off_duration=valley)
    for source, destination in (("LHR", "JFK"), ("JFK", "LHR")):
        deployment_client = cluster.client(source, 0)
        workload = OrganicWorkload(
            sim=cluster.sim,
            client=deployment_client,
            destinations=[cluster.server_address(destination)],
            sizes=FileSizeDistribution.production_cdn(),
            rng=cluster.streams.stream(f"diurnal:{source}"),
            config=OrganicWorkloadConfig(rate_per_second=4.0, close_probability=1.0),
            rate_profile=profile,
        )
        workload.start()
    cluster.start_riptide()

    probe_client = cluster.client("LHR", 1)
    target = cluster.server_address("JFK")
    post_valley_times: list[float] = []
    mid_peak_times: list[float] = []
    cycle = peak + valley

    def fetch_into(bucket: list[float]) -> None:
        result = probe_client.fetch(target, FETCH_BYTES)
        cluster.run(5.0)
        probe_client.close_idle_connections()
        cluster.run(0.5)
        if result.completed:
            bucket.append(result.total_time)

    for index in range(cycles):
        cycle_start = index * cycle
        # Just after the valley ends (start of the next peak): run up to
        # the boundary, then fetch immediately.
        cluster.run(max(0.0, cycle_start + 0.5 - cluster.sim.now))
        if index > 0:
            fetch_into(post_valley_times)
        # Mid-peak: entries are warm from the organic traffic.
        cluster.run(max(0.0, cycle_start + peak * 0.8 - cluster.sim.now))
        fetch_into(mid_peak_times)
        cluster.run(max(0.0, cycle_start + cycle - cluster.sim.now))

    return DiurnalResult(
        post_valley_times=post_valley_times,
        mid_peak_times=mid_peak_times,
        ttl=ttl,
        valley=valley,
    )
