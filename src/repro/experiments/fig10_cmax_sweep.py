"""Figure 10: live congestion windows under different ``c_max`` values.

Methodology (Section IV-B1): sample the windows of connections created
after Riptide started, once a minute, across the deployment; repeat for
``c_max`` in {50, 100, 150, 200, 250} and for a control group without
Riptide.  Paper anchors: the median window under the lowest setting
(c_max = 50) is ~100 % above the control; every line shows a mode at its
own c_max (connections opened at the learned window and never grown);
the knee at 100 motivates the deployed c_max = 100.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_cdf_rows
from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.cdn.topology import Topology
from repro.cdn.workload import OrganicWorkloadConfig
from repro.core.config import RiptideConfig
from repro.experiments.scenarios import EVALUATION_POP_CODES, sub_topology

PAPER_CMAX_VALUES = (50, 100, 150, 200, 250)

#: Key used for the no-Riptide control series.
CONTROL = 0


@dataclass
class Fig10Result:
    """Window CDFs per c_max (key 0 = control)."""

    cdfs: dict[int, EmpiricalCdf]

    def median_increase_vs_control(self, c_max: int) -> float:
        """Fractional median window increase over the control group."""
        control_median = self.cdfs[CONTROL].median
        if control_median == 0:
            return 0.0
        return self.cdfs[c_max].median / control_median - 1.0

    def fraction_at_cmax(self, c_max: int) -> float:
        """Mass of the mode at the series' own c_max."""
        cdf = self.cdfs[c_max]
        return 1.0 - cdf.cdf(c_max - 1)

    def report(self) -> str:
        names = {CONTROL: "control"}
        names.update({c: f"c_max={c}" for c in sorted(k for k in self.cdfs if k)})
        table = format_cdf_rows(
            {names[k]: self.cdfs[k] for k in sorted(self.cdfs)},
            levels=(10, 25, 50, 75, 90),
            value_format="{:.0f}",
            title="Figure 10: live congestion windows (segments)",
        )
        lowest = min(k for k in self.cdfs if k)
        anchors = (
            f"\nmedian increase at c_max={lowest} vs control: "
            f"{self.median_increase_vs_control(lowest):.0%} (paper: ~100%)"
        )
        return table + anchors


def run_single(
    c_max: int | None,
    topology: Topology,
    duration: float = 60.0,
    warmup: float = 10.0,
    sample_interval: float = 5.0,
    organic_rate: float = 3.0,
    seed: int = 42,
) -> EmpiricalCdf:
    """One arm of the sweep; ``c_max=None`` runs the control group."""
    riptide_config = RiptideConfig(
        granularity="prefix",
        prefix_length=16,
        c_max=c_max if c_max is not None else 100,
    )
    cluster = CdnCluster(
        topology, replace(ClusterConfig(seed=seed), riptide=riptide_config)
    )
    workload = OrganicWorkloadConfig(rate_per_second=organic_rate)
    codes = cluster.pop_codes
    for code in codes:
        cluster.add_organic_workload(code, [c for c in codes if c != code], workload)
    if c_max is not None:
        started = cluster.start_riptide()
    else:
        started = cluster.sim.now
    cluster.run(warmup)
    sampler = cluster.make_cwnd_sampler(
        interval=sample_interval, created_after=started
    )
    sampler.start()
    cluster.run(duration)
    return EmpiricalCdf(sampler.cwnd_values())


def run(
    c_max_values: tuple[int, ...] = PAPER_CMAX_VALUES,
    topology_codes: tuple[str, ...] = EVALUATION_POP_CODES,
    duration: float = 60.0,
    warmup: float = 10.0,
    organic_rate: float = 3.0,
    seed: int = 42,
    workers: int = 1,
) -> Fig10Result:
    """Run the control group plus one deployment per ``c_max`` value.

    The deployments are independent simulations sharing a seed, so with
    ``workers`` > 1 they fan out across forked worker processes
    (:mod:`repro.parallel`) and produce byte-identical CDFs to the
    serial sweep, in the same control-first order.
    """
    topology = sub_topology(topology_codes)
    arms: list[int | None] = [None, *c_max_values]

    def make_task(c_max: int | None):
        return lambda: run_single(
            c_max, topology, duration=duration, warmup=warmup,
            organic_rate=organic_rate, seed=seed,
        )

    if workers > 1:
        from repro.parallel import run_tasks

        results = run_tasks(
            [make_task(c_max) for c_max in arms],
            workers=workers,
            labels=[
                "fig10:control" if c is None else f"fig10:c_max={c}" for c in arms
            ],
        )
    else:
        results = [make_task(c_max)() for c_max in arms]
    cdfs: dict[int, EmpiricalCdf] = {
        (CONTROL if c_max is None else c_max): cdf
        for c_max, cdf in zip(arms, results, strict=True)
    }
    return Fig10Result(cdfs=cdfs)
