"""Chaos experiments: the paired probe study under injected faults.

The paper's evaluation runs on a production CDN that misbehaves daily;
the reproduction's counterpart injects that misbehaviour on purpose.
Each chaos experiment runs the control (IW10) and Riptide arms of a
probe study under the *same* deterministic fault schedule (same seed,
same faults, same packet drops) and asks the deployment-safety
question: does Riptide, with its resilience policies (bounded tool
retries, poll-failure tolerance, the safety guard reverting hostile
paths to IW10), still beat or at least match the control — or does a
learned window amplify the damage?

The verdict compares the median completion time of *new-connection*
probes (the population Riptide changes) with a small tolerance; the
report also surfaces the resilience counters so an operator can see the
faults being absorbed rather than silently ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from statistics import median


from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.cdn.probes import ProbeFleet, ProbeResultSet
from repro.core.config import RiptideConfig
from repro.experiments.scenarios import sub_topology
from repro.faults.engine import FaultInjector
from repro.faults.scenarios import ChaosScenario, ExpectedAlert, get_scenario
from repro.obs.slo import AlertEpisode, source_matches_arm
from repro.tcp.constants import TcpConfig

#: Fractional slack on the median verdict: "matches" means within this.
VERDICT_TOLERANCE = 0.05


@dataclass(frozen=True)
class ChaosStudyConfig:
    """Knobs for a paired chaos study."""

    scenario: str = "chaos_lossy_agent"
    seed: int = 42
    #: Simulated seconds of organic traffic before probing and faults.
    warmup: float = 20.0
    #: Simulated seconds of probing; the fault schedule is scaled to it.
    duration: float = 90.0
    probe_interval: float = 6.0
    organic_rate: float = 3.0
    close_probability: float = 0.35
    probe_churn: float = 0.4
    #: The chaos arms enable the safety guard — it is the resilience
    #: policy under test — on top of the evaluation's prefix granularity.
    riptide: RiptideConfig = field(
        default_factory=lambda: RiptideConfig(
            granularity="prefix", prefix_length=16, safety_guard=True
        )
    )
    cluster: ClusterConfig = field(
        default_factory=lambda: ClusterConfig(
            tcp=TcpConfig(default_initrwnd=300, slow_start_after_idle=False)
        )
    )


@dataclass
class ChaosArmRun:
    """One live arm of a chaos study."""

    cluster: CdnCluster
    fleet: ProbeFleet
    injector: FaultInjector
    riptide_enabled: bool

    def summary(self) -> "ChaosArmSummary":
        """Detach the picklable measurements from the live cluster."""
        agents = self.cluster.all_agents()
        # Only this arm's alert episodes: a serial run captures both arms
        # into one shared log, so filter by the arm-qualified source.
        label = self.cluster.config.label
        alerts = tuple(
            episode
            for episode in self.cluster.sim.obs.alerts.episodes()
            if source_matches_arm(episode.source, label)
        )
        return ChaosArmSummary(
            alerts=alerts,
            fleet=self.fleet.result_set(),
            riptide_enabled=self.riptide_enabled,
            faults_injected=self.injector.injected,
            faults_cleared=self.injector.cleared,
            guard_trips=sum(agent.stats.guard_trips for agent in agents),
            crashes=sum(agent.stats.crashes for agent in agents),
            poll_failures=sum(agent.stats.poll_failures for agent in agents),
            tool_errors=sum(agent.stats.tool_errors for agent in agents),
            tool_retries=sum(agent.stats.tool_retries for agent in agents),
            learned_routes=sum(
                len(agent.learned_table()) for agent in agents
            ),
            events_processed=self.cluster.sim.events_processed,
        )


@dataclass
class ChaosArmSummary:
    """One arm's measurements, detached from its simulator."""

    fleet: ProbeResultSet
    riptide_enabled: bool
    faults_injected: int
    faults_cleared: int
    guard_trips: int
    crashes: int
    poll_failures: int
    tool_errors: int
    tool_retries: int
    learned_routes: int
    events_processed: int
    #: This arm's SLO alert episodes (begin order, arm-filtered).
    alerts: tuple[AlertEpisode, ...] = ()


ChaosArm = ChaosArmRun | ChaosArmSummary


def _arm_counters(arm: ChaosArm) -> "ChaosArmSummary":
    """Both arm flavours viewed as a summary (live arms are detached)."""
    return arm if isinstance(arm, ChaosArmSummary) else arm.summary()


def check_expected_alert(
    expectation: ExpectedAlert, episodes: tuple[AlertEpisode, ...]
) -> tuple[bool, str]:
    """Judge one expected-alert contract against one arm's episodes."""
    mine = [e for e in episodes if e.slo == expectation.slo]
    fired = [e for e in mine if e.fired]
    resolved = [e for e in mine if e.resolved]
    if expectation.must_fire and not fired:
        return False, f"{expectation.slo}: expected to fire, never did"
    if expectation.must_resolve and not resolved:
        return False, f"{expectation.slo}: fired but never resolved"
    detail = (
        f"{expectation.slo}: fired {len(fired)} episode(s), "
        f"resolved {len(resolved)}"
    )
    return True, detail


def run_chaos_arm(
    config: ChaosStudyConfig, riptide_enabled: bool
) -> ChaosArmRun:
    """Build and run one arm under the scenario's fault schedule.

    Both arms share seed, topology, workloads, probe schedule *and
    faults*; only whether Riptide runs differs.
    """
    scenario = get_scenario(config.scenario)
    topology = sub_topology(scenario.pop_codes)
    cluster_config = replace(
        config.cluster,
        seed=config.seed,
        riptide=config.riptide,
        label="riptide" if riptide_enabled else "control",
    )
    cluster = CdnCluster(topology, cluster_config)
    from repro.cdn.workload import OrganicWorkloadConfig

    workload_config = OrganicWorkloadConfig(
        rate_per_second=config.organic_rate,
        close_probability=config.close_probability,
    )
    codes = cluster.pop_codes
    for code in codes:
        cluster.add_organic_workload(
            code, [c for c in codes if c != code], workload_config
        )
    if riptide_enabled:
        cluster.start_riptide()
    cluster.run(config.warmup)
    fleet = cluster.make_probe_fleet(
        [scenario.source_pop],
        interval=config.probe_interval,
        host_indices=[1],
        churn_probability=config.probe_churn,
    )
    cluster.start_timeline_sampler()
    cluster.start_slo()
    fleet.start(initial_delay=0.0)
    injector = FaultInjector(cluster, scenario.build(config.duration))
    injector.arm()
    cluster.run(config.duration)
    cluster.sync_flows()
    return ChaosArmRun(
        cluster=cluster,
        fleet=fleet,
        injector=injector,
        riptide_enabled=riptide_enabled,
    )


@dataclass
class ChaosStudyResult:
    """Both arms of one chaos study plus the verdict machinery."""

    scenario: ChaosScenario
    duration: float
    control: ChaosArm
    riptide: ChaosArm

    def _times(self, arm: ChaosArm, new_only: bool) -> list[float]:
        return arm.fleet.completion_times(new_connections_only=new_only)

    def median_gain(self, new_only: bool = True) -> float | None:
        """Fractional median improvement (positive = Riptide faster)."""
        control = self._times(self.control, new_only)
        riptide = self._times(self.riptide, new_only)
        if not control or not riptide:
            return None
        control_median = median(control)
        if control_median == 0:
            return None
        return 1.0 - median(riptide) / control_median

    @property
    def riptide_holds_up(self) -> bool:
        """True when Riptide beats or matches the control under faults.

        Judged on the median completion time of new-connection probes
        (the population Riptide changes) within a small tolerance; a run
        where faults killed every probe on both arms counts as holding
        up (nothing to lose).
        """
        gain = self.median_gain(new_only=True)
        if gain is None:
            return True
        return gain >= -VERDICT_TOLERANCE

    def _arm_alerts(self, arm_label: str) -> tuple[AlertEpisode, ...]:
        arm = self.riptide if arm_label == "riptide" else self.control
        return _arm_counters(arm).alerts

    def alert_assertion_results(self) -> list[tuple[ExpectedAlert, bool, str]]:
        """Each scenario expectation judged against the matching arm."""
        results = []
        for expectation in self.scenario.expected_alerts:
            ok, detail = check_expected_alert(
                expectation, self._arm_alerts(expectation.arm)
            )
            results.append((expectation, ok, detail))
        return results

    @property
    def alerts_ok(self) -> bool:
        """True when every expected-alert contract held."""
        return all(ok for _, ok, _ in self.alert_assertion_results())

    def report(self) -> str:
        from repro.analysis.tables import format_table

        control = _arm_counters(self.control)
        riptide = _arm_counters(self.riptide)
        rows = []
        for label, new_only in (("all probes", False), ("new connections", True)):
            control_times = self._times(self.control, new_only)
            riptide_times = self._times(self.riptide, new_only)
            if not control_times or not riptide_times:
                rows.append((label, len(control_times), len(riptide_times),
                             "-", "-", "-"))
                continue
            control_median = median(control_times)
            riptide_median = median(riptide_times)
            gain = (
                1.0 - riptide_median / control_median
                if control_median > 0
                else 0.0
            )
            rows.append(
                (
                    label,
                    len(control_times),
                    len(riptide_times),
                    f"{control_median * 1000:.0f}ms",
                    f"{riptide_median * 1000:.0f}ms",
                    f"{gain:+.0%}",
                )
            )
        table = format_table(
            ("population", "ctrl n", "riptide n", "ctrl median",
             "riptide median", "gain"),
            rows,
            title=f"Chaos study: {self.scenario.name}",
        )
        timeline = self.scenario.build(self.duration).describe()
        counters = (
            f"faults injected/cleared: {riptide.faults_injected}/"
            f"{riptide.faults_cleared}  guard trips: {riptide.guard_trips}  "
            f"crashes: {riptide.crashes}\n"
            f"poll failures: {riptide.poll_failures}  tool errors: "
            f"{riptide.tool_errors}  tool retries: {riptide.tool_retries}  "
            f"learned routes: {riptide.learned_routes}"
        )
        alert_lines = [
            f"SLO alerts (control arm): fired "
            f"{sum(1 for e in control.alerts if e.fired)}, resolved "
            f"{sum(1 for e in control.alerts if e.resolved)}",
            f"SLO alerts (riptide arm): fired "
            f"{sum(1 for e in riptide.alerts if e.fired)}, resolved "
            f"{sum(1 for e in riptide.alerts if e.resolved)}",
        ]
        for expectation, ok, detail in self.alert_assertion_results():
            status = "ok" if ok else "FAILED"
            alert_lines.append(
                f"  expected [{expectation.arm}] {detail} -- {status}"
            )
        alerts_text = "\n".join(alert_lines)
        verdict = (
            "PASS: Riptide beats/matches the IW10 control under faults"
            if self.riptide_holds_up
            else "FAIL: Riptide is slower than the IW10 control under faults"
        )
        if self.scenario.expected_alerts and not self.alerts_ok:
            verdict += "; FAIL: expected SLO alerts did not materialise"
        return (
            f"{table}\n\nfault timeline ({self.duration:g}s of probing):\n"
            f"{timeline}\n\nriptide-arm resilience counters:\n{counters}\n"
            f"\n{alerts_text}\n\nverdict: {verdict}"
        )


def run_chaos_study(
    config: ChaosStudyConfig | None = None, workers: int = 1
) -> ChaosStudyResult:
    """Run control and Riptide arms under the same fault schedule.

    With ``workers`` > 1 the two independent arms run in forked worker
    processes (:mod:`repro.parallel`) and come back as detached
    summaries — byte-identical measurements to the serial path.
    """
    config = config if config is not None else ChaosStudyConfig()
    scenario = get_scenario(config.scenario)
    if workers > 1:
        from repro.parallel import run_tasks

        control, riptide = run_tasks(
            [
                lambda: run_chaos_arm(config, riptide_enabled=False).summary(),
                lambda: run_chaos_arm(config, riptide_enabled=True).summary(),
            ],
            workers=min(workers, 2),
            labels=[
                f"{scenario.name}:control",
                f"{scenario.name}:riptide",
            ],
        )
    else:
        # Detach summaries on the serial path too: the result carries the
        # same types either way, and the live clusters can be collected.
        control = run_chaos_arm(config, riptide_enabled=False).summary()
        riptide = run_chaos_arm(config, riptide_enabled=True).summary()
    return ChaosStudyResult(
        scenario=scenario,
        duration=config.duration,
        control=control,
        riptide=riptide,
    )


def _scenario_runner(name: str):
    """A registry ``run`` callable pinned to one scenario."""

    def run(
        config: ChaosStudyConfig | None = None, workers: int = 1
    ) -> ChaosStudyResult:
        config = config if config is not None else ChaosStudyConfig()
        return run_chaos_study(replace(config, scenario=name), workers=workers)

    run.__doc__ = f"Run the {name} chaos scenario (control vs Riptide)."
    return run


run_lossy_agent = _scenario_runner("chaos_lossy_agent")
run_partition = _scenario_runner("chaos_partition")
run_flaky_tools = _scenario_runner("chaos_flaky_tools")
