"""Figure 3: RTTs needed to transfer the Figure 2 files under different
initial congestion windows.

Paper anchors: "an increase to an initial congestion window of 50 would
allow ... over 31% more files able to complete in the first RTT.  Further
increasing the window to 100 would allow all but 15% of files to complete
in the first RTT."
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.cdn.filesizes import FileSizeDistribution
from repro.model.slowstart import rtts_to_complete
from repro.sim.rand import RandomStreams

PAPER_INITCWNDS = (10, 25, 50, 100)


@dataclass
class Fig03Result:
    """Distribution of RTT counts per initcwnd."""

    samples: int
    #: initcwnd -> {rtt_count: fraction}
    rtt_fractions: dict[int, dict[int, float]]

    def fraction_within(self, initcwnd: int, rtts: int) -> float:
        """Fraction of files completing in at most ``rtts`` round trips."""
        return sum(
            fraction
            for count, fraction in self.rtt_fractions[initcwnd].items()
            if count <= rtts
        )

    @property
    def extra_first_rtt_at_50(self) -> float:
        """Additional files that fit in one RTT at IW50 vs IW10 (paper: 31%)."""
        return self.fraction_within(50, 1) - self.fraction_within(10, 1)

    @property
    def not_first_rtt_at_100(self) -> float:
        """Files needing more than one RTT at IW100 (paper: 15%)."""
        return 1.0 - self.fraction_within(100, 1)

    def report(self) -> str:
        headers = ["initcwnd"] + [f"<= {r} RTT" for r in (1, 2, 3, 4)]
        rows = []
        for iw in sorted(self.rtt_fractions):
            rows.append(
                [str(iw)]
                + [f"{self.fraction_within(iw, r):.1%}" for r in (1, 2, 3, 4)]
            )
        table = format_table(
            headers, rows, title="Figure 3: RTTs to complete transfers"
        )
        anchors = (
            f"\nIW50 first-RTT gain over IW10: {self.extra_first_rtt_at_50:.1%}"
            f" (paper: ~31%)\n"
            f"IW100 files needing >1 RTT: {self.not_first_rtt_at_100:.1%}"
            f" (paper: ~15%)"
        )
        return table + anchors


def run(
    samples: int = 100_000,
    seed: int = 42,
    initcwnds: tuple[int, ...] = PAPER_INITCWNDS,
) -> Fig03Result:
    distribution = FileSizeDistribution.production_cdn()
    rng = RandomStreams(seed).stream("fig03")
    sizes = distribution.sample_many(rng, samples)
    fractions: dict[int, dict[int, float]] = {}
    for iw in initcwnds:
        counts = Counter(rtts_to_complete(size, iw) for size in sizes)
        fractions[iw] = {
            rtts: count / samples for rtts, count in sorted(counts.items())
        }
    return Fig03Result(samples=samples, rtt_fractions=fractions)
