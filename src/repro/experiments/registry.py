"""The experiment registry: id -> (description, runner)."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.experiments import (
    chaos,
    edge_cases,
    ext_advisory,
    ext_diurnal,
    fig02_filesizes,
    fig03_rtt_cdf,
    fig04_theoretical_gain,
    fig05_rtt_distribution,
    fig06_transfer_time_model,
    fig10_cmax_sweep,
    fig11_traffic_profiles,
    fig12_14_probe_times,
    fig15_16_percentile_gain,
    hybrid,
    table2_pops,
    tournament,
)


@dataclass(frozen=True)
class Experiment:
    """One registered reproduction experiment."""

    experiment_id: str
    description: str
    run: Callable
    simulation_backed: bool
    #: Whether ``run`` accepts a ``workers=N`` keyword that fans its
    #: independent simulations out across a process pool
    #: (:mod:`repro.parallel`).
    supports_workers: bool = False
    #: Chaos scenario this experiment pairs with (``repro faults``), when
    #: its simulation runs under an injected fault schedule.
    fault_scenario: str | None = None


EXPERIMENTS: dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in (
        Experiment(
            "fig02",
            "Production CDN file-size distribution (54% exceed IW10)",
            fig02_filesizes.run,
            simulation_backed=False,
        ),
        Experiment(
            "fig03",
            "RTTs to complete transfers under IW 10/25/50/100",
            fig03_rtt_cdf.run,
            simulation_backed=False,
        ),
        Experiment(
            "fig04",
            "Theoretical RTT reduction vs file size for IW 25/50/100",
            fig04_theoretical_gain.run,
            simulation_backed=False,
        ),
        Experiment(
            "fig05",
            "Inter-PoP RTT distribution (median > 125 ms)",
            fig05_rtt_distribution.run,
            simulation_backed=False,
        ),
        Experiment(
            "fig06",
            "Modelled 100 KB transfer time over the RTT distribution",
            fig06_transfer_time_model.run,
            simulation_backed=False,
        ),
        Experiment(
            "table2",
            "PoP census per continent",
            table2_pops.run,
            simulation_backed=False,
        ),
        Experiment(
            "fig10",
            "Live congestion windows for c_max in {50..250} + control",
            fig10_cmax_sweep.run,
            simulation_backed=True,
            supports_workers=True,
        ),
        Experiment(
            "fig11",
            "Probe-only vs organic-traffic PoP window profiles",
            fig11_traffic_profiles.run,
            simulation_backed=True,
        ),
        Experiment(
            "fig12_14",
            "Probe completion-time CDFs by size and RTT bucket",
            fig12_14_probe_times.run,
            simulation_backed=True,
            supports_workers=True,
        ),
        Experiment(
            "fig15_16",
            "Fraction of gain by percentile for 50/100 KB probes",
            fig15_16_percentile_gain.run,
            simulation_backed=True,
            supports_workers=True,
        ),
        Experiment(
            "edge_cases",
            "Best/worst-case probe times per destination (Section IV-D)",
            edge_cases.run,
            simulation_backed=True,
            supports_workers=True,
        ),
        Experiment(
            "hybrid",
            "Mean-field hybrid: 34 PoPs, 10^6 open background flows per window",
            hybrid.run,
            simulation_backed=True,
        ),
        Experiment(
            "ext_diurnal",
            "Extension: TTL relearning penalty across traffic valleys",
            ext_diurnal.run,
            simulation_backed=True,
        ),
        Experiment(
            "ext_advisory",
            "Extension: conservatism advisories during a load shift",
            ext_advisory.run,
            simulation_backed=True,
        ),
        Experiment(
            "chaos_lossy_agent",
            "Chaos: loss storm + agent crash/ss blackout; guard reverts to IW10",
            chaos.run_lossy_agent,
            simulation_backed=True,
            supports_workers=True,
            fault_scenario="chaos_lossy_agent",
        ),
        Experiment(
            "chaos_partition",
            "Chaos: PoP partition, trunk flap and degrade; recovery vs IW10",
            chaos.run_partition,
            simulation_backed=True,
            supports_workers=True,
            fault_scenario="chaos_partition",
        ),
        Experiment(
            "chaos_flaky_tools",
            "Chaos: failing ip route, stale/partial ss, poll jitter",
            chaos.run_flaky_tools,
            simulation_backed=True,
            supports_workers=True,
            fault_scenario="chaos_flaky_tools",
        ),
        Experiment(
            "tournament",
            "Policy zoo tournament: every window policy x every scenario",
            tournament.run,
            simulation_backed=True,
            supports_workers=True,
        ),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r} (known: {known})") from None


def list_experiments() -> list[Experiment]:
    return list(EXPERIMENTS.values())
