"""Shared scenario builders for the simulation-backed experiments.

The paper evaluates on the production 34-PoP CDN over 12-20 hours.  The
simulated counterpart compresses wall-clock (probes every few seconds
instead of hourly, minutes of simulated time instead of hours) and, for
affordable runs, uses a representative sub-topology spanning all RTT
buckets.  Per-transfer timings are unaffected by the compression; only
the number of samples shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.cdn.probes import ProbeFleet, ProbeResultSet
from repro.cdn.topology import Topology, build_paper_topology
from repro.cdn.workload import OrganicWorkloadConfig
from repro.core.config import RiptideConfig
from repro.tcp.constants import TcpConfig

#: The two vantage PoPs of Section IV-B: one European, one North American.
EU_SOURCE = "LHR"
NA_SOURCE = "JFK"

#: A sub-topology that spans every Figure 12-14 RTT bucket from both
#: vantage points: metro-close (AMS/IAD), mid (ARN/ORD/DFW), far
#: (JFK<->LHR), very far (NRT, SYD, GRU).
EVALUATION_POP_CODES = (
    "LHR",
    "AMS",
    "ARN",
    "MAD",
    "JFK",
    "IAD",
    "ORD",
    "DFW",
    "NRT",
    "SYD",
    "GRU",
)


def sub_topology(codes: tuple[str, ...] = EVALUATION_POP_CODES) -> Topology:
    """The paper topology restricted to a set of PoP codes."""
    full = build_paper_topology()
    wanted = set(codes)
    missing = wanted - {pop.code for pop in full.pops}
    if missing:
        raise KeyError(f"unknown PoP codes: {sorted(missing)}")
    return Topology(
        pops=tuple(pop for pop in full.pops if pop.code in wanted),
        path_inflation=full.path_inflation,
    )


@dataclass(frozen=True)
class ProbeStudyConfig:
    """Knobs for a paired (control vs Riptide) probe study."""

    topology_codes: tuple[str, ...] = EVALUATION_POP_CODES
    source_pops: tuple[str, ...] = (EU_SOURCE, NA_SOURCE)
    seed: int = 42
    #: Simulated seconds of organic traffic before probing starts.
    warmup: float = 20.0
    #: Simulated seconds of probing.
    duration: float = 60.0
    #: Seconds between probe rounds (the paper's "hourly", compressed).
    probe_interval: float = 6.0
    #: Organic traffic rate per source host (fetches/second).
    organic_rate: float = 3.0
    #: Probability a connection closes after a fetch (churn).
    close_probability: float = 0.35
    #: Fraction of idle probe connections closed before each probe round.
    #: Reproduces the paper's probe population: most probes reuse an
    #: existing connection (unchanged by Riptide), the rest open cold.
    probe_churn: float = 0.4
    #: The evaluation uses prefix granularity — one learned route per
    #: remote PoP /16 — so organic traffic between any pair of machines
    #: teaches the initcwnd used for probe responses to that PoP
    #: (Section III-B, "Destinations as Routes").
    riptide: RiptideConfig = field(
        default_factory=lambda: RiptideConfig(granularity="prefix", prefix_length=16)
    )
    #: The evaluation hosts disable slow-start-after-idle (a common CDN
    #: tuning), so a *reused* connection keeps its grown window: reused
    #: probes are the unchanged bulk of the CDFs, cold probes the part
    #: Riptide improves — the Figure 12-14 population structure.
    cluster: ClusterConfig = field(
        default_factory=lambda: ClusterConfig(
            tcp=TcpConfig(default_initrwnd=300, slow_start_after_idle=False)
        )
    )


@dataclass
class ProbeStudyRun:
    """One arm (control or Riptide) of a probe study."""

    cluster: CdnCluster
    fleet: ProbeFleet
    riptide_enabled: bool

    def summary(self) -> "ProbeArmSummary":
        """Detach the picklable measurements from the live cluster."""
        return ProbeArmSummary(
            fleet=self.fleet.result_set(),
            riptide_enabled=self.riptide_enabled,
            learned_routes=sum(
                len(agent.learned_table()) for agent in self.cluster.all_agents()
            ),
            events_processed=self.cluster.sim.events_processed,
        )


@dataclass
class ProbeArmSummary:
    """The measurements of one arm, detached from its simulator.

    This is what a parallel worker ships back to the parent process: the
    probe results (behind the same ``fleet`` accessors the figure
    harnesses use on a live run) plus the headline run counters.  The
    live cluster — sockets, callbacks, the event heap — stays in the
    worker and is discarded with it.
    """

    fleet: ProbeResultSet
    riptide_enabled: bool
    learned_routes: int
    events_processed: int


#: What the figure harnesses actually consume: a live arm (serial path)
#: or a detached summary (parallel path) — both expose ``fleet``
#: accessors and ``riptide_enabled``.
ProbeStudyArm = ProbeStudyRun | ProbeArmSummary


def run_probe_arm(config: ProbeStudyConfig, riptide_enabled: bool) -> ProbeStudyRun:
    """Build and run one arm of the paired study.

    Both arms share the seed, topology, workload schedule and probe
    schedule; the only difference is whether Riptide agents run.
    """
    topology = sub_topology(config.topology_codes)
    cluster_config = replace(
        config.cluster,
        seed=config.seed,
        riptide=config.riptide,
        label="riptide" if riptide_enabled else "control",
    )
    cluster = CdnCluster(topology, cluster_config)
    workload_config = OrganicWorkloadConfig(
        rate_per_second=config.organic_rate,
        close_probability=config.close_probability,
    )
    codes = cluster.pop_codes
    for code in codes:
        cluster.add_organic_workload(
            code, [c for c in codes if c != code], workload_config
        )
    if riptide_enabled:
        cluster.start_riptide()
    cluster.run(config.warmup)
    # Probes run from a dedicated machine (host 1) in each source PoP,
    # mirroring the paper's diagnostic fleet riding alongside organic
    # traffic.  A fraction of idle probe connections churns away before
    # each round, so the probe population mixes warm reuse with the
    # fresh connections Riptide jump-starts.
    fleet = cluster.make_probe_fleet(
        list(config.source_pops),
        interval=config.probe_interval,
        host_indices=[1],
        churn_probability=config.probe_churn,
    )
    cluster.start_timeline_sampler()
    fleet.start(initial_delay=0.0)
    cluster.run(config.duration)
    cluster.sync_flows()
    return ProbeStudyRun(cluster=cluster, fleet=fleet, riptide_enabled=riptide_enabled)


def run_paired_probe_study(
    config: ProbeStudyConfig | None = None,
    workers: int = 1,
) -> tuple[ProbeStudyArm, ProbeStudyArm]:
    """Run control and Riptide arms; returns ``(control, riptide)``.

    The two arms share a config but are fully independent simulations,
    so with ``workers`` > 1 they run concurrently in forked worker
    processes and come back as detached :class:`ProbeArmSummary` objects
    (byte-identical measurements, in the same (control, riptide) order).
    The serial path keeps returning live :class:`ProbeStudyRun` objects
    so callers can keep inspecting clusters and agents.
    """
    config = config if config is not None else ProbeStudyConfig()
    if workers > 1:
        from repro.parallel import run_tasks

        control, riptide = run_tasks(
            [
                lambda: run_probe_arm(config, riptide_enabled=False).summary(),
                lambda: run_probe_arm(config, riptide_enabled=True).summary(),
            ],
            workers=min(workers, 2),
            labels=["probe-study:control", "probe-study:riptide"],
        )
        return control, riptide
    control = run_probe_arm(config, riptide_enabled=False)
    riptide = run_probe_arm(config, riptide_enabled=True)
    return control, riptide
