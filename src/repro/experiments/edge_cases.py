"""Section IV-D: edge cases — best- and worst-case probe times.

Paper anchors: per-destination *minimum* completion times are essentially
unchanged (75 % of EU destinations show no change, the rest within
±5 %) because the best probes already complete in the minimum possible
RTTs; per-destination *maximum* times are noisy with no discernible
trend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments.scenarios import (
    EU_SOURCE,
    ProbeStudyArm,
    ProbeStudyConfig,
    run_paired_probe_study,
)

PROBE_BYTES = 100_000


@dataclass
class DestinationExtremes:
    """Min/max probe times toward one destination, both arms."""

    destination_pop: str
    control_min: float
    riptide_min: float
    control_max: float
    riptide_max: float

    @property
    def min_change(self) -> float:
        """Relative change of the best case (negative = Riptide faster)."""
        if self.control_min == 0:
            return 0.0
        return self.riptide_min / self.control_min - 1.0

    @property
    def max_change(self) -> float:
        if self.control_max == 0:
            return 0.0
        return self.riptide_max / self.control_max - 1.0


@dataclass
class EdgeCasesResult:
    """Per-destination extremes for one source PoP."""

    source_pop: str
    destinations: list[DestinationExtremes]

    def fraction_min_within(self, tolerance: float = 0.05) -> float:
        """Fraction of destinations whose best case changed <= tolerance."""
        if not self.destinations:
            return 0.0
        within = sum(
            1 for d in self.destinations if abs(d.min_change) <= tolerance
        )
        return within / len(self.destinations)

    def report(self) -> str:
        rows = [
            (
                d.destination_pop,
                f"{d.control_min * 1000:.0f}ms",
                f"{d.riptide_min * 1000:.0f}ms",
                f"{d.min_change:+.1%}",
                f"{d.max_change:+.1%}",
            )
            for d in self.destinations
        ]
        table = format_table(
            ("destination", "ctrl min", "riptide min", "min change", "max change"),
            rows,
            title=f"Section IV-D: edge cases for {PROBE_BYTES // 1000}KB probes "
            f"from {self.source_pop}",
        )
        anchor = (
            f"\ndestinations with best case within ±5%: "
            f"{self.fraction_min_within():.0%} (paper: most)"
        )
        return table + anchor


def build_result(
    control: ProbeStudyArm,
    riptide: ProbeStudyArm,
    source_pop: str = EU_SOURCE,
    size_bytes: int = PROBE_BYTES,
) -> EdgeCasesResult:
    destinations = sorted(
        {
            probe.destination_pop
            for probe in control.fleet.completed_results(
                size_bytes=size_bytes, source_pop=source_pop
            )
        }
    )
    extremes = []
    for destination in destinations:
        control_times = [
            p.total_time
            for p in control.fleet.completed_results(
                size_bytes=size_bytes, source_pop=source_pop
            )
            if p.destination_pop == destination
        ]
        riptide_times = [
            p.total_time
            for p in riptide.fleet.completed_results(
                size_bytes=size_bytes, source_pop=source_pop
            )
            if p.destination_pop == destination
        ]
        if not control_times or not riptide_times:
            continue
        extremes.append(
            DestinationExtremes(
                destination_pop=destination,
                control_min=min(control_times),
                riptide_min=min(riptide_times),
                control_max=max(control_times),
                riptide_max=max(riptide_times),
            )
        )
    return EdgeCasesResult(source_pop=source_pop, destinations=extremes)


def run(config: ProbeStudyConfig | None = None, workers: int = 1) -> EdgeCasesResult:
    control, riptide = run_paired_probe_study(config, workers=workers)
    return build_result(control, riptide)
