"""Figure 6: modelled transfer time of a 100 KB file over the Figure 5
RTT distribution, per initial congestion window.

Paper anchors: "In the median case, the transfer time is over 280ms
longer than the initial congestion window of 100 case, while at the 90th
percentile, we see the total transfer time increase by 290ms, about
100%."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_cdf_rows
from repro.cdn.topology import Topology, build_paper_topology
from repro.model.slowstart import transfer_time

PAPER_INITCWNDS = (10, 25, 50, 100)
FILE_BYTES = 100_000


@dataclass
class Fig06Result:
    """Transfer-time distributions per initcwnd."""

    file_bytes: int
    cdfs: dict[int, EmpiricalCdf]

    def median_penalty_vs_100(self, initcwnd: int = 10) -> float:
        """Extra median seconds versus the IW100 case (paper: >280 ms)."""
        return self.cdfs[initcwnd].median - self.cdfs[100].median

    def p90_penalty_vs_100(self, initcwnd: int = 10) -> float:
        return self.cdfs[initcwnd].quantile(0.9) - self.cdfs[100].quantile(0.9)

    def report(self) -> str:
        table = format_cdf_rows(
            {f"IW{iw}": cdf for iw, cdf in sorted(self.cdfs.items())},
            title=f"Figure 6: modelled transfer time of a {self.file_bytes // 1000} KB file (s)",
        )
        anchors = (
            f"\nmedian IW10 penalty vs IW100: "
            f"{self.median_penalty_vs_100() * 1000:.0f} ms (paper: >280 ms)\n"
            f"p90 IW10 penalty vs IW100: "
            f"{self.p90_penalty_vs_100() * 1000:.0f} ms (paper: ~290 ms, ~100%)"
        )
        return table + anchors


def run(
    topology: Topology | None = None,
    file_bytes: int = FILE_BYTES,
    initcwnds: tuple[int, ...] = PAPER_INITCWNDS,
) -> Fig06Result:
    topology = topology if topology is not None else build_paper_topology()
    rtts = topology.all_pair_rtts()
    cdfs = {
        iw: EmpiricalCdf([transfer_time(file_bytes, iw, rtt) for rtt in rtts])
        for iw in initcwnds
    }
    return Fig06Result(file_bytes=file_bytes, cdfs=cdfs)
