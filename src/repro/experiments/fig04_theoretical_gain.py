"""Figure 4: theoretical RTT reduction vs file size for larger initcwnds.

Paper anchor: "the primary improvements are seen between 15KB and 1000KB,
after which the benefits of reducing a single RTT diminish."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.model.gain import gain_fraction

PAPER_INITCWNDS = (25, 50, 100)


@dataclass
class Fig04Result:
    """Gain curves over a logarithmic size sweep."""

    sizes_bytes: list[int]
    #: initcwnd -> gain fraction at each size
    gains: dict[int, list[float]]

    def peak_gain(self, initcwnd: int) -> float:
        return max(self.gains[initcwnd])

    def gain_at(self, initcwnd: int, size_bytes: int) -> float:
        """Gain at the sweep point closest to ``size_bytes``."""
        index = min(
            range(len(self.sizes_bytes)),
            key=lambda i: abs(self.sizes_bytes[i] - size_bytes),
        )
        return self.gains[initcwnd][index]

    def report(self) -> str:
        marks = (10_000, 15_000, 50_000, 100_000, 500_000, 1_000_000, 10_000_000)
        headers = ["size"] + [f"IW{iw}" for iw in sorted(self.gains)]
        rows = []
        for mark in marks:
            row = [f"{mark // 1000} KB"]
            for iw in sorted(self.gains):
                row.append(f"{self.gain_at(iw, mark):.0%}")
            rows.append(row)
        return format_table(
            headers,
            rows,
            title="Figure 4: theoretical RTT reduction vs IW10 baseline",
        )


def run(
    min_bytes: int = 1_000,
    max_bytes: int = 50_000_000,
    points: int = 400,
    initcwnds: tuple[int, ...] = PAPER_INITCWNDS,
) -> Fig04Result:
    if points < 2:
        raise ValueError(f"need at least 2 sweep points, got {points}")
    ratio = math.log(max_bytes / min_bytes)
    sizes = [
        int(min_bytes * math.exp(ratio * i / (points - 1))) for i in range(points)
    ]
    gains = {
        iw: [gain_fraction(size, iw) for size in sizes] for iw in initcwnds
    }
    return Fig04Result(sizes_bytes=sizes, gains=gains)
