"""Figures 15-16: fraction of gain by percentile, per source PoP.

For the 50 KB probes (Figure 15) the paper sees "almost no change" below
the 50th-60th percentile and gains up to ~30 % (EU) / ~21 % (NA) above;
for the 100 KB probes (Figure 16) gains are broader — from the 30th
percentile up for the EU PoP and across all percentiles for the NA PoP,
reaching ~25 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import PercentileGain, percentile_gain_profile
from repro.analysis.tables import format_table
from repro.experiments.scenarios import (
    EU_SOURCE,
    NA_SOURCE,
    ProbeStudyArm,
    ProbeStudyConfig,
    run_paired_probe_study,
)

PROFILE_SIZES = (50_000, 100_000)


@dataclass
class Fig1516Result:
    """Percentile-gain profiles keyed by (size, source PoP)."""

    profiles: dict[tuple[int, str], list[PercentileGain]]

    def profile(self, size_bytes: int, source_pop: str) -> list[PercentileGain]:
        return self.profiles[(size_bytes, source_pop)]

    def max_gain(self, size_bytes: int, source_pop: str) -> float:
        return max(g.gain for g in self.profile(size_bytes, source_pop))

    def gain_at(self, size_bytes: int, source_pop: str, percentile: float) -> float:
        for gain in self.profile(size_bytes, source_pop):
            if abs(gain.percentile - percentile) < 1e-6:
                return gain.gain
        raise KeyError(f"no percentile {percentile} in profile")

    def report(self) -> str:
        headers = ["percentile"] + [
            f"{size // 1000}KB/{pop}" for (size, pop) in sorted(self.profiles)
        ]
        sample_profile = next(iter(self.profiles.values()))
        rows = []
        for i, gain in enumerate(sample_profile):
            row = [f"p{gain.percentile:.0f}"]
            for key in sorted(self.profiles):
                row.append(f"{self.profiles[key][i].gain:+.0%}")
            rows.append(row)
        table = format_table(
            headers, rows,
            title="Figures 15-16: fraction of gain by percentile",
        )
        anchors = (
            f"\nmax 50KB gain (EU): {self.max_gain(50_000, EU_SOURCE):.0%}"
            f" (paper: ~30%)\n"
            f"max 100KB gain (NA): {self.max_gain(100_000, NA_SOURCE):.0%}"
            f" (paper: ~25%)"
        )
        return table + anchors


def build_result(
    control: ProbeStudyArm,
    riptide: ProbeStudyArm,
    sizes: tuple[int, ...] = PROFILE_SIZES,
    source_pops: tuple[str, ...] = (EU_SOURCE, NA_SOURCE),
    step: float = 5.0,
) -> Fig1516Result:
    profiles = {}
    for size in sizes:
        for pop in source_pops:
            baseline = control.fleet.completion_times(
                size_bytes=size, source_pop=pop
            )
            treatment = riptide.fleet.completion_times(
                size_bytes=size, source_pop=pop
            )
            profiles[(size, pop)] = percentile_gain_profile(
                baseline, treatment, step=step
            )
    return Fig1516Result(profiles=profiles)


def run(config: ProbeStudyConfig | None = None, workers: int = 1) -> Fig1516Result:
    control, riptide = run_paired_probe_study(config, workers=workers)
    return build_result(control, riptide)
