"""The all-pairs policy tournament: every zoo policy × every scenario.

Riptide's evaluation compares one policy (the EWMA learner) against one
control (IW10).  The tournament widens that to the full competitor
field of :mod:`repro.policy`: every registered policy runs the same
deterministic cluster under every scenario — the clean network, the
three chaos scenarios (with their fault schedules), and a hybrid cell
with mean-field background traffic — and every cell is judged with the
tail-latency attribution report (:mod:`repro.obs.report`): p50/p90
probe completion time, the slow-probe cause mix and guard withdrawals,
plus the burn-rate SLO engine's violation count (episodes that reached
firing, :mod:`repro.obs.slo`).

Cells are independent simulations, so the matrix fans out across the
parallel runner; every cell computes its measurements from its own
instrumentation capture, which makes the leaderboard artifact
byte-identical between ``--workers 1`` and ``--workers N``.

Ranking: within a scenario, policies sort by new-connection p90 (the
population an initial-window policy changes), breaking ties with
new-connection p50, the all-probe p90, guard withdrawals, and finally
the policy name.  The overall leaderboard orders policies by mean
per-scenario rank.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.cdn.workload import OrganicWorkloadConfig
from repro.core.config import RiptideConfig
from repro.experiments.scenarios import sub_topology
from repro.faults.engine import FaultInjector
from repro.faults.scenarios import get_scenario
from repro.obs import capture
from repro.obs.report import build_report
from repro.policy import policy_names
from repro.tcp.constants import TcpConfig

#: PoPs for the scenarios without a fault schedule (clean, hybrid):
#: the same reduced evaluation footprint the fast probe studies use.
_CLEAN_POP_CODES = ("LHR", "AMS", "JFK", "NRT", "SYD")


@dataclass(frozen=True)
class TournamentScenario:
    """One column of the tournament matrix."""

    name: str
    description: str
    pop_codes: tuple[str, ...]
    #: PoP whose probe fleet produces the judged completion times.
    source_pop: str
    #: Chaos scenario name whose fault schedule runs during probing.
    chaos: str | None = None
    #: Mean-field background flows per PoP pair (0 = none).
    fluid_flows_per_pair: float = 0.0


def _chaos_column(name: str) -> TournamentScenario:
    scenario = get_scenario(name)
    return TournamentScenario(
        name=name,
        description=scenario.description,
        pop_codes=tuple(scenario.pop_codes),
        source_pop=scenario.source_pop,
        chaos=name,
    )


TOURNAMENT_SCENARIOS: dict[str, TournamentScenario] = {
    scenario.name: scenario
    for scenario in (
        TournamentScenario(
            name="clean",
            description="No faults: organic traffic and probes only",
            pop_codes=_CLEAN_POP_CODES,
            source_pop="LHR",
        ),
        _chaos_column("chaos_lossy_agent"),
        _chaos_column("chaos_partition"),
        _chaos_column("chaos_flaky_tools"),
        TournamentScenario(
            name="hybrid",
            description="Mean-field background flows share every trunk",
            pop_codes=_CLEAN_POP_CODES,
            source_pop="LHR",
            fluid_flows_per_pair=50.0,
        ),
    )
}


def scenario_names() -> tuple[str, ...]:
    """All tournament scenario names, in matrix order."""
    return tuple(TOURNAMENT_SCENARIOS)


@dataclass(frozen=True)
class TournamentConfig:
    """Knobs for one tournament run."""

    #: Policies to race; empty means every registered policy.
    policies: tuple[str, ...] = ()
    #: Scenario columns; empty means the full matrix.
    scenarios: tuple[str, ...] = ()
    seed: int = 42
    #: Simulated seconds of organic traffic before probing and faults.
    warmup: float = 6.0
    #: Simulated seconds of probing; fault schedules are scaled to it.
    duration: float = 24.0
    probe_interval: float = 3.0
    organic_rate: float = 3.0
    close_probability: float = 0.35
    probe_churn: float = 0.4

    def resolved_policies(self) -> tuple[str, ...]:
        selected = self.policies if self.policies else policy_names()
        known = set(policy_names())
        for name in selected:
            if name not in known:
                raise ValueError(
                    f"unknown policy {name!r} (known: {', '.join(sorted(known))})"
                )
        return tuple(selected)

    def resolved_scenarios(self) -> tuple[str, ...]:
        selected = self.scenarios if self.scenarios else scenario_names()
        for name in selected:
            if name not in TOURNAMENT_SCENARIOS:
                raise ValueError(
                    f"unknown scenario {name!r} "
                    f"(known: {', '.join(TOURNAMENT_SCENARIOS)})"
                )
        return tuple(selected)


def _nearest_rank_ms(sorted_times: list[float], p: float) -> float | None:
    """Nearest-rank percentile of completion times, in milliseconds."""
    if not sorted_times:
        return None
    rank = max(
        0,
        min(len(sorted_times) - 1, round(p / 100.0 * (len(sorted_times) - 1))),
    )
    return round(sorted_times[rank] * 1000.0, 3)


def run_tournament_cell(
    policy: str, scenario_name: str, config: TournamentConfig
) -> dict[str, Any]:
    """Run one (policy, scenario) cell; return its picklable judgement.

    Every cell shares the seed, topology, workloads and probe schedule
    of its scenario column — only the window-decision policy differs —
    and measures itself from its own instrumentation capture so results
    do not depend on which process ran it.
    """
    scenario = TOURNAMENT_SCENARIOS[scenario_name]
    riptide_config = RiptideConfig(
        policy=policy,
        granularity="prefix",
        prefix_length=16,
        safety_guard=True,
    )
    cluster_config = ClusterConfig(
        seed=config.seed,
        label=policy,
        riptide=riptide_config,
        tcp=TcpConfig(default_initrwnd=300, slow_start_after_idle=False),
    )
    with capture() as instrumentation:
        topology = sub_topology(list(scenario.pop_codes))
        cluster = CdnCluster(topology, cluster_config)
        workload_config = OrganicWorkloadConfig(
            rate_per_second=config.organic_rate,
            close_probability=config.close_probability,
        )
        codes = cluster.pop_codes
        for code in codes:
            cluster.add_organic_workload(
                code, [c for c in codes if c != code], workload_config
            )
        cluster.start_riptide()
        if scenario.fluid_flows_per_pair > 0:
            for code in codes:
                cluster.add_fluid_traffic(
                    code,
                    [c for c in codes if c != code],
                    flows_per_destination=scenario.fluid_flows_per_pair,
                )
        cluster.run(config.warmup)
        fleet = cluster.make_probe_fleet(
            [scenario.source_pop],
            interval=config.probe_interval,
            host_indices=[1],
            churn_probability=config.probe_churn,
        )
        cluster.start_timeline_sampler()
        cluster.start_slo()
        fleet.start(initial_delay=0.0)
        faults_injected = 0
        faults_cleared = 0
        if scenario.chaos is not None:
            injector = FaultInjector(
                cluster, get_scenario(scenario.chaos).build(config.duration)
            )
            injector.arm()
        else:
            injector = None
        cluster.run(config.duration)
        cluster.sync_flows()
        if injector is not None:
            faults_injected = injector.injected
            faults_cleared = injector.cleared
        agents = cluster.all_agents()
        times = sorted(fleet.completion_times())
        new_times = sorted(fleet.completion_times(new_connections_only=True))
        events_processed = cluster.sim.events_processed
        agent_counters = {
            "guard_trips": sum(a.stats.guard_trips for a in agents),
            "routes_installed": sum(a.stats.routes_installed for a in agents),
            "routes_expired": sum(a.stats.routes_expired for a in agents),
            "poll_failures": sum(a.stats.poll_failures for a in agents),
            "tool_errors": sum(a.stats.tool_errors for a in agents),
            "crashes": sum(a.stats.crashes for a in agents),
            "learned_routes": sum(len(a.learned_table()) for a in agents),
        }
    report = build_report(
        instrumentation, experiment=f"{policy}/{scenario_name}"
    )
    return {
        "policy": policy,
        "scenario": scenario_name,
        "probes": report["probes"],
        "completed": len(times),
        "new_completed": len(new_times),
        "p50_ms": _nearest_rank_ms(times, 50.0),
        "p90_ms": _nearest_rank_ms(times, 90.0),
        "new_p50_ms": _nearest_rank_ms(new_times, 50.0),
        "new_p90_ms": _nearest_rank_ms(new_times, 90.0),
        "causes": report["causes"],
        "faults_injected": faults_injected,
        "faults_cleared": faults_cleared,
        "events_processed": events_processed,
        # Burn-rate SLO judgement: episodes that reached firing in this
        # cell's capture (the cell owns exactly one cluster, so the whole
        # alert log is its own).
        "slo_violations": instrumentation.alerts.fired_count,
        "slo_resolved": instrumentation.alerts.resolved_count,
        **agent_counters,
    }


_HUGE = float("inf")


def _cell_sort_key(cell: dict[str, Any]) -> tuple[float, float, float, int, str]:
    new_p90 = cell["new_p90_ms"]
    new_p50 = cell["new_p50_ms"]
    p90 = cell["p90_ms"]
    return (
        new_p90 if new_p90 is not None else _HUGE,
        new_p50 if new_p50 is not None else _HUGE,
        p90 if p90 is not None else _HUGE,
        cell["guard_trips"],
        cell["policy"],
    )


def build_leaderboard(
    cells: list[dict[str, Any]],
    policies: tuple[str, ...],
    scenarios: tuple[str, ...],
) -> dict[str, Any]:
    """Rank every scenario column, then order policies by mean rank."""
    by_scenario: dict[str, list[dict[str, Any]]] = {}
    for cell in cells:
        by_scenario.setdefault(cell["scenario"], []).append(cell)
    scenario_tables: dict[str, list[dict[str, Any]]] = {}
    ranks: dict[str, dict[str, int]] = {policy: {} for policy in policies}
    for scenario in scenarios:
        ranked = sorted(by_scenario.get(scenario, []), key=_cell_sort_key)
        table = []
        for position, cell in enumerate(ranked, start=1):
            ranks[cell["policy"]][scenario] = position
            table.append(
                {
                    "rank": position,
                    "policy": cell["policy"],
                    "new_p90_ms": cell["new_p90_ms"],
                    "new_p50_ms": cell["new_p50_ms"],
                    "p90_ms": cell["p90_ms"],
                    "guard_trips": cell["guard_trips"],
                    "slo_violations": cell.get("slo_violations", 0),
                }
            )
        scenario_tables[scenario] = table
    overall = []
    for policy in policies:
        policy_ranks = ranks[policy]
        mean_rank = (
            round(sum(policy_ranks.values()) / len(policy_ranks), 4)
            if policy_ranks
            else _HUGE
        )
        overall.append(
            {
                "policy": policy,
                "mean_rank": mean_rank,
                "ranks": {s: policy_ranks.get(s) for s in scenarios},
            }
        )
    overall.sort(key=lambda row: (row["mean_rank"], row["policy"]))
    for position, row in enumerate(overall, start=1):
        row["rank"] = position
    return {"overall": overall, "scenarios": scenario_tables}


@dataclass
class TournamentResult:
    """The full matrix plus its leaderboard."""

    config: TournamentConfig
    policies: tuple[str, ...]
    scenarios: tuple[str, ...]
    cells: list[dict[str, Any]]
    leaderboard: dict[str, Any]

    def artifact(self) -> dict[str, Any]:
        """The deterministic leaderboard artifact (no wall-clock data)."""
        return {
            "tournament": {
                "policies": list(self.policies),
                "scenarios": list(self.scenarios),
                "seed": self.config.seed,
                "warmup": self.config.warmup,
                "duration": self.config.duration,
                "probe_interval": self.config.probe_interval,
            },
            "leaderboard": self.leaderboard,
            "cells": self.cells,
        }

    def to_json(self) -> str:
        return json.dumps(self.artifact(), indent=2) + "\n"

    def to_markdown(self) -> str:
        """The leaderboard as a markdown document."""

        def fmt(value: float | None) -> str:
            return "-" if value is None else f"{value:.1f}"

        lines = ["# Initial-window policy tournament", ""]
        lines.append(
            f"{len(self.policies)} policies x {len(self.scenarios)} scenarios, "
            f"seed {self.config.seed}, {self.config.duration:g}s probing per "
            f"cell after {self.config.warmup:g}s warmup."
        )
        lines.append("")
        lines.append("## Overall (mean per-scenario rank)")
        lines.append("")
        header = "| rank | policy | mean rank | " + " | ".join(self.scenarios) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (3 + len(self.scenarios)))
        for row in self.leaderboard["overall"]:
            scenario_ranks = " | ".join(
                str(row["ranks"][s]) if row["ranks"][s] is not None else "-"
                for s in self.scenarios
            )
            lines.append(
                f"| {row['rank']} | {row['policy']} | {row['mean_rank']:g} | "
                f"{scenario_ranks} |"
            )
        for scenario in self.scenarios:
            lines.append("")
            lines.append(f"## {scenario}")
            lines.append("")
            lines.append(
                "| rank | policy | new-conn p90 (ms) | new-conn p50 (ms) | "
                "all p90 (ms) | guard trips | SLO violations |"
            )
            lines.append("|---|---|---|---|---|---|---|")
            for row in self.leaderboard["scenarios"][scenario]:
                lines.append(
                    f"| {row['rank']} | {row['policy']} | "
                    f"{fmt(row['new_p90_ms'])} | {fmt(row['new_p50_ms'])} | "
                    f"{fmt(row['p90_ms'])} | {row['guard_trips']} | "
                    f"{row.get('slo_violations', 0)} |"
                )
        lines.append("")
        lines.append(
            "Reproduce: `python -m repro tournament --workers 4` "
            "(add `--fast` for the reduced clock)."
        )
        return "\n".join(lines) + "\n"

    def report(self) -> str:
        """Text report for ``python -m repro run tournament``."""
        return self.to_markdown().rstrip("\n")


def run_tournament(
    config: TournamentConfig | None = None, workers: int = 1
) -> TournamentResult:
    """Run the policy × scenario matrix; rank every column.

    With ``workers`` > 1 the independent cells fan out across forked
    worker processes (:mod:`repro.parallel`); each cell measures itself
    under its own capture, so the result is byte-identical to serial.
    """
    config = config if config is not None else TournamentConfig()
    policies = config.resolved_policies()
    scenarios = config.resolved_scenarios()
    pairs = [(policy, scenario) for policy in policies for scenario in scenarios]
    tasks = [
        lambda policy=policy, scenario=scenario: run_tournament_cell(
            policy, scenario, config
        )
        for policy, scenario in pairs
    ]
    if workers > 1:
        from repro.parallel import run_tasks

        cells = run_tasks(
            tasks,
            workers=workers,
            labels=[f"tournament:{p}:{s}" for p, s in pairs],
        )
    else:
        cells = [task() for task in tasks]
    leaderboard = build_leaderboard(cells, policies, scenarios)
    return TournamentResult(
        config=config,
        policies=policies,
        scenarios=scenarios,
        cells=cells,
        leaderboard=leaderboard,
    )


def run(
    config: TournamentConfig | None = None, workers: int = 1
) -> TournamentResult:
    """Registry entry point for the ``tournament`` experiment."""
    return run_tournament(config, workers=workers)
