"""Figure 2: distribution of file sizes in a production CDN.

Paper anchor: "a significant fraction of files, 54%, are too large to fit
in the default window of 10 segments" (10 x 1460 B = 14.6 KB).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_table
from repro.cdn.filesizes import FileSizeDistribution
from repro.sim.rand import RandomStreams
from repro.tcp.constants import DEFAULT_MSS

#: Bytes that fit in the default 10-segment initial window.
DEFAULT_WINDOW_BYTES = 10 * DEFAULT_MSS


@dataclass
class Fig02Result:
    """Sampled file-size distribution and its paper anchors."""

    cdf: EmpiricalCdf
    fraction_exceeding_default_window: float
    analytic_fraction_exceeding: float

    def report(self) -> str:
        levels = (10, 25, 50, 75, 90, 99)
        rows = [
            (f"p{level}", f"{self.cdf.quantile(level / 100.0) / 1024:.1f} KB")
            for level in levels
        ]
        rows.append(
            (
                "> IW10 (14.6 KB)",
                f"{self.fraction_exceeding_default_window:.1%} "
                f"(paper: 54%, analytic: {self.analytic_fraction_exceeding:.1%})",
            )
        )
        return format_table(
            ("statistic", "value"),
            rows,
            title="Figure 2: production CDN file-size distribution",
        )


def run(samples: int = 200_000, seed: int = 42) -> Fig02Result:
    """Sample the calibrated distribution and measure the anchors."""
    distribution = FileSizeDistribution.production_cdn()
    rng = RandomStreams(seed).stream("fig02")
    sizes = distribution.sample_many(rng, samples)
    cdf = EmpiricalCdf(sizes)
    return Fig02Result(
        cdf=cdf,
        fraction_exceeding_default_window=1.0 - cdf.cdf(DEFAULT_WINDOW_BYTES),
        analytic_fraction_exceeding=distribution.fraction_exceeding(
            DEFAULT_WINDOW_BYTES
        ),
    )
