"""Table II: CDN PoPs with Riptide deployed, per continent."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.cdn.topology import Topology, build_paper_topology

PAPER_TABLE2 = {
    "Europe": 10,
    "North America": 11,
    "South America": 1,
    "Asia": 9,
    "Oceania": 3,
}


@dataclass
class Table2Result:
    counts: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def matches_paper(self) -> bool:
        return self.counts == PAPER_TABLE2

    def report(self) -> str:
        rows = [
            (continent, str(count), str(PAPER_TABLE2.get(continent, 0)))
            for continent, count in sorted(self.counts.items())
        ]
        rows.append(("TOTAL", str(self.total), str(sum(PAPER_TABLE2.values()))))
        return format_table(
            ("continent", "built", "paper"),
            rows,
            title="Table II: PoPs per continent",
        )


def run(topology: Topology | None = None) -> Table2Result:
    topology = topology if topology is not None else build_paper_topology()
    return Table2Result(counts=topology.continent_counts())
