"""Extension experiment: conservatism advisories during a load shift.

Section V: higher-level signals "(e.g., the need to perform immediate
load balancing) ... could be used to set more conservative congestion
windows to avoid sudden crowding."  The risk is concrete: when a load
balancer moves a PoP's worth of traffic, *many* connections open to the
same destination at once, each starting at the learned initcwnd — and
the combined burst can overrun the path queue exactly because every
sender was told the path supports a large window *individually*.

This experiment stages that shift on a deliberately shallow-buffered
trunk and compares three policies: no Riptide (IW10 everywhere), Riptide
as-is, and Riptide with a conservatism advisory active during the shift.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_table
from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.cdn.workload import OrganicWorkloadConfig
from repro.core.config import RiptideConfig
from repro.experiments.scenarios import sub_topology

SHIFT_FETCH_BYTES = 150_000


@dataclass
class AdvisoryArm:
    """One policy's outcome for the staged shift."""

    label: str
    completion_p95: float
    queue_drops: int
    completed: int


@dataclass
class AdvisoryResult:
    arms: dict[str, AdvisoryArm]

    def report(self) -> str:
        rows = [
            (
                arm.label,
                f"{arm.completion_p95 * 1000:.0f} ms",
                str(arm.queue_drops),
                str(arm.completed),
            )
            for arm in self.arms.values()
        ]
        table = format_table(
            ("policy", "shift p95", "queue drops", "completed"),
            rows,
            title=(
                "Extension: simultaneous load shift onto a shallow-buffered "
                "trunk"
            ),
        )
        return table + (
            "\nWithout the advisory, every shifted connection opens at the "
            "learned window\nsimultaneously and the combined burst collapses "
            "the path (failed transfers,\nmost drops).  The advisory keeps "
            "the fleet conservative for the shift's\nduration: every "
            "transfer completes and drops fall sharply."
        )


def _run_arm(
    riptide_on: bool,
    advisory_scale: float | None,
    parallel_fetches: int,
    seed: int,
) -> AdvisoryArm:
    topology = sub_topology(("LHR", "JFK"))
    cluster_config = replace(
        ClusterConfig(seed=seed, queue_limit_packets=64, bandwidth_bps=200e6),
        riptide=RiptideConfig(granularity="prefix", prefix_length=16),
    )
    cluster = CdnCluster(topology, cluster_config)
    cluster.add_organic_workload(
        "LHR", ["JFK"], OrganicWorkloadConfig(rate_per_second=4.0)
    )
    cluster.add_organic_workload(
        "JFK", ["LHR"], OrganicWorkloadConfig(rate_per_second=4.0)
    )
    if riptide_on:
        cluster.start_riptide()
    cluster.run(25.0)

    if advisory_scale is not None:
        for agent in cluster.all_agents():
            agent.advise_conservative(
                advisory_scale, duration=30.0, reason="load shift"
            )
        cluster.run(2.0)  # let the scaled windows install

    # The shift: many machines fetch from JFK at the same instant.
    trunk = cluster.network.trunk_between(
        cluster.pop("LHR").prefix, cluster.pop("JFK").prefix
    )
    drops_before = trunk.reverse.stats.packets_dropped_queue
    client = cluster.client("LHR", 1)
    results = [
        client.fetch(cluster.server_address("JFK"), SHIFT_FETCH_BYTES)
        for _ in range(parallel_fetches)
    ]
    cluster.run(30.0)
    drops = trunk.reverse.stats.packets_dropped_queue - drops_before
    times = [r.total_time for r in results if r.completed]
    label = (
        "no riptide"
        if not riptide_on
        else f"riptide + advisory {advisory_scale}"
        if advisory_scale is not None
        else "riptide"
    )
    cdf = EmpiricalCdf(times)
    return AdvisoryArm(
        label=label,
        completion_p95=cdf.quantile(0.95),
        queue_drops=drops,
        completed=len(times),
    )


def run(parallel_fetches: int = 40, seed: int = 42) -> AdvisoryResult:
    arms = {}
    for key, (riptide_on, scale) in {
        "control": (False, None),
        "riptide": (True, None),
        "advisory": (True, 0.4),
    }.items():
        arms[key] = _run_arm(riptide_on, scale, parallel_fetches, seed)
    return AdvisoryResult(arms=arms)
