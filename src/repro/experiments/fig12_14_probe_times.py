"""Figures 12-14: probe completion-time CDFs, Riptide vs default.

For each probe size (10/50/100 KB) and each RTT bucket (<50 ms, 51-100,
101-150, >150 ms), compare the completion times of freshly opened probe
connections with and without Riptide.  Paper anchors: the 10 KB probes
are unchanged (they already fit in IW10); the 50 KB probes improve for
~30 % of connections; the 100 KB probes gain across ~78 % of
connections, with the gap growing at higher RTTs (stair-stepping a full
RTT at a time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_table
from repro.cdn.probes import PAPER_PROBE_SIZES, RTT_BUCKETS
from repro.experiments.scenarios import (
    ProbeStudyArm,
    ProbeStudyConfig,
    run_paired_probe_study,
)

BUCKET_LABELS = tuple(label for label, _ in RTT_BUCKETS)


@dataclass
class BucketComparison:
    """Control vs Riptide for one (size, bucket) cell."""

    size_bytes: int
    bucket: str
    control: EmpiricalCdf | None
    riptide: EmpiricalCdf | None

    @property
    def populated(self) -> bool:
        return self.control is not None and self.riptide is not None

    @property
    def median_gain(self) -> float:
        """Fractional median improvement (positive = Riptide faster)."""
        if not self.populated or self.control.median == 0:
            return 0.0
        return 1.0 - self.riptide.median / self.control.median

    def fraction_improved(self, tolerance: float = 0.02) -> float:
        """Fraction of CDF levels where Riptide is meaningfully faster.

        Compares the two CDFs at every 2nd percentile — the visual
        "fraction of the CDF where the Riptide curve sits left of the
        default curve" in Figures 12-14.
        """
        if not self.populated:
            return 0.0
        levels = [p / 100.0 for p in range(2, 100, 2)]
        improved = 0
        for level in levels:
            control_value = self.control.quantile(level)
            riptide_value = self.riptide.quantile(level)
            if control_value > 0 and riptide_value < control_value * (1 - tolerance):
                improved += 1
        return improved / len(levels)


@dataclass
class Fig1214Result:
    """All (size, bucket) comparisons."""

    cells: dict[tuple[int, str], BucketComparison]

    def comparison(self, size_bytes: int, bucket: str) -> BucketComparison:
        return self.cells[(size_bytes, bucket)]

    def fraction_improved_for_size(self, size_bytes: int) -> float:
        """Probe-weighted fraction of the size's CDF mass that improved."""
        total_weight = 0
        weighted = 0.0
        for (size, _), cell in self.cells.items():
            if size != size_bytes or not cell.populated:
                continue
            weight = len(cell.control)
            total_weight += weight
            weighted += weight * cell.fraction_improved()
        return weighted / total_weight if total_weight else 0.0

    def report(self) -> str:
        headers = ("size", "bucket", "ctrl median", "riptide median",
                   "median gain", "improved")
        rows = []
        for (size, bucket), cell in sorted(self.cells.items()):
            if not cell.populated:
                rows.append((f"{size // 1000}KB", bucket, "-", "-", "-", "-"))
                continue
            rows.append(
                (
                    f"{size // 1000}KB",
                    bucket,
                    f"{cell.control.median * 1000:.0f}ms",
                    f"{cell.riptide.median * 1000:.0f}ms",
                    f"{cell.median_gain:+.0%}",
                    f"{cell.fraction_improved():.0%}",
                )
            )
        table = format_table(
            headers, rows,
            title="Figures 12-14: probe completion times (all probes)",
        )
        anchors = (
            f"\n10KB improved fraction: "
            f"{self.fraction_improved_for_size(10_000):.0%} (paper: ~0%)\n"
            f"50KB improved fraction: "
            f"{self.fraction_improved_for_size(50_000):.0%} (paper: ~30%)\n"
            f"100KB improved fraction: "
            f"{self.fraction_improved_for_size(100_000):.0%} (paper: ~78%)"
        )
        return table + anchors


def build_result(
    control: ProbeStudyArm,
    riptide: ProbeStudyArm,
    sizes: tuple[int, ...] = PAPER_PROBE_SIZES,
) -> Fig1214Result:
    """Assemble the per-(size, bucket) comparisons from a paired study."""
    cells = {}
    for size in sizes:
        for bucket in BUCKET_LABELS:
            control_times = control.fleet.completion_times(
                size_bytes=size, bucket=bucket
            )
            riptide_times = riptide.fleet.completion_times(
                size_bytes=size, bucket=bucket
            )
            cells[(size, bucket)] = BucketComparison(
                size_bytes=size,
                bucket=bucket,
                control=EmpiricalCdf(control_times) if control_times else None,
                riptide=EmpiricalCdf(riptide_times) if riptide_times else None,
            )
    return Fig1214Result(cells=cells)


def run(config: ProbeStudyConfig | None = None, workers: int = 1) -> Fig1214Result:
    control, riptide = run_paired_probe_study(config, workers=workers)
    return build_result(control, riptide)
