"""Experiment harnesses: one per data-bearing figure/table in the paper.

Every module exposes ``run(...)`` returning a result object with a
``report()`` method that prints the same rows/series the paper reports.
``repro.experiments.registry`` maps experiment ids (``fig02`` ... ``fig16``,
``table2``, ``edge_cases``) to their runners.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = ["EXPERIMENTS", "get_experiment", "list_experiments"]
