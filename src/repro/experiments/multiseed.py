"""Multi-seed stability analysis.

The paper reports single production runs; a simulation can do better by
repeating an experiment across seeds and reporting the spread.  Used by
the robustness tests to check that the headline effects are not
artifacts of one random draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Sequence


@dataclass(frozen=True)
class SeedSweepResult:
    """Per-seed metric values with summary statistics."""

    metric_name: str
    seeds: tuple[int, ...]
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def all_within(self, low: float, high: float) -> bool:
        """True when every seed's value falls in ``[low, high]``."""
        return all(low <= v <= high for v in self.values)

    def report(self) -> str:
        per_seed = ", ".join(
            f"seed {s}: {v:.4g}" for s, v in zip(self.seeds, self.values, strict=True)
        )
        return (
            f"{self.metric_name}: mean={self.mean:.4g} stdev={self.stdev:.4g} "
            f"range=[{self.min:.4g}, {self.max:.4g}] ({per_seed})"
        )


def sweep_seeds(
    metric_name: str,
    seeds: Sequence[int],
    run_metric: Callable[[int], float],
    workers: int = 1,
) -> SeedSweepResult:
    """Evaluate ``run_metric(seed)`` for each seed.

    With ``workers`` > 1 the per-seed runs fan out across a pool of
    forked worker processes (:mod:`repro.parallel`).  Each run is a pure
    function of its seed, so the parallel sweep returns byte-identical
    values in identical seed order to the serial sweep; a seed whose
    runner raises surfaces as a
    :class:`~repro.parallel.WorkerFailure` naming that seed.
    """
    if not seeds:
        raise ValueError("sweep_seeds needs at least one seed")
    if workers > 1:
        from repro.parallel import run_tasks

        values = tuple(
            run_tasks(
                [lambda seed=seed: float(run_metric(seed)) for seed in seeds],
                workers=workers,
                labels=[f"{metric_name}[seed={seed}]" for seed in seeds],
            )
        )
    else:
        values = tuple(float(run_metric(seed)) for seed in seeds)
    return SeedSweepResult(
        metric_name=metric_name, seeds=tuple(seeds), values=values
    )
