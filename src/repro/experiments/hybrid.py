"""Hybrid mode: mean-field background traffic under packet-granular probes.

Two entry points share the machinery:

* :func:`run` / :func:`run_scale` — the headline scenario: the full
  34-PoP paper topology carrying **one million open background flows
  per measurement window** as fluid cohorts
  (:class:`~repro.cdn.fluidtraffic.FluidTraffic`), while the probe
  fleet and a sampled slice of organic flows stay packet-granular on
  the event kernel.  Per-packet simulation of that population would
  need billions of events; the fluid engine steps each cohort's cwnd
  *distribution* on a coarse cadence, so cost scales with (pairs ×
  steps), not flows.

* :func:`run_differential` — the validation harness: at small scale,
  run the same seeded scenario twice, once with packet-granular
  background traffic and once with fluid cohorts whose drift/churn
  parameters are *derived from the packet workload's own configuration*
  (fetch rate, object-size distribution, close probability), and
  compare what Riptide actually learns plus the Figure 3/6-style probe
  anchors (completion-time distributions per RTT bucket, first-RTT
  completion fractions).  The differential tests in
  ``tests/experiments/test_hybrid.py`` hold these within tolerance
  across seeds.

The parameter derivation that makes the two arms comparable: a packet
workload fetches per destination address at rate ``λ = organic_rate /
n_addresses``.  Each fetch of ``S`` segments grows the serving socket's
window by about ``S`` (slow start adds one segment per acked segment),
and closes it with probability ``p``.  The fluid mirror is a cohort
with additive drift ``λ·S̄`` segments/s, per-flow churn ``λ·p`` and
re-entry at the currently routed initial window — whose fixed point
``entry + S̄/p`` equals the packet population's steady-state mean.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_table
from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.cdn.filesizes import FileSizeDistribution
from repro.cdn.probes import PAPER_PROBE_SIZES, ProbeResultSet, RTT_BUCKETS
from repro.cdn.topology import build_paper_topology
from repro.cdn.workload import OrganicWorkloadConfig
from repro.core.config import RiptideConfig
from repro.experiments.scenarios import sub_topology
from repro.sim.fluid import FluidConfig
from repro.tcp.constants import DEFAULT_MSS, TcpConfig

BUCKET_LABELS = tuple(label for label, _ in RTT_BUCKETS)

#: Differential sub-topology: near / far / very far from both vantages.
DIFFERENTIAL_POP_CODES = ("LHR", "JFK", "NRT")


# ----------------------------------------------------------------------
# shared parameter derivation
# ----------------------------------------------------------------------


def mean_object_segments(
    sizes: FileSizeDistribution,
    max_object_bytes: int,
    mss: int = DEFAULT_MSS,
    resolution: int = 200,
) -> float:
    """Expected segments per fetched object, capped like the workload.

    Deterministic mid-quantile integration of the size distribution —
    no sampling, so both differential arms derive the same value.
    """
    total = 0.0
    for i in range(resolution):
        q = (i + 0.5) / resolution
        size = min(sizes.quantile(q), float(max_object_bytes))
        total += math.ceil(size / mss)
    return total / resolution


# ----------------------------------------------------------------------
# differential study (validation)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HybridStudyConfig:
    """One seeded small-scale scenario, runnable in either mode."""

    topology_codes: tuple[str, ...] = DIFFERENTIAL_POP_CODES
    source_pops: tuple[str, ...] = ("LHR",)
    seed: int = 42
    warmup: float = 15.0
    duration: float = 45.0
    probe_interval: float = 5.0
    #: Packet-arm organic traffic per source host (fetches/second); the
    #: fluid arm derives its drift/churn from the same numbers.
    organic_rate: float = 3.0
    close_probability: float = 0.35
    #: Cap on fetched object size.  Kept moderate so the learned windows
    #: sit *between* the floor and c_max — a discriminating regime where
    #: the two arms could actually disagree.
    max_object_bytes: int = 120_000
    probe_churn: float = 0.4
    #: Segments a fetch *request* adds to the client-side socket.
    request_segments: float = 1.0
    fluid: FluidConfig = field(default_factory=FluidConfig)
    riptide: RiptideConfig = field(
        default_factory=lambda: RiptideConfig(granularity="prefix", prefix_length=16)
    )
    cluster: ClusterConfig = field(
        default_factory=lambda: ClusterConfig(
            tcp=TcpConfig(default_initrwnd=300, slow_start_after_idle=False)
        )
    )


@dataclass
class HybridArmSummary:
    """One arm of the differential, detached from its simulator."""

    mode: str
    #: (pop_code, destination prefix) -> learned window on host 0's agent.
    advisories: dict[tuple[str, str], int]
    probes: ProbeResultSet
    learned_routes: int
    events_processed: int
    fluid_flows: float
    fluid_steps: int


def run_arm(config: HybridStudyConfig, mode: str) -> HybridArmSummary:
    """Run one seeded arm: ``mode`` is ``"packet"`` or ``"hybrid"``.

    Both arms share seed, topology, Riptide config and the (packet
    granular) probe schedule; only the background population's substrate
    differs.
    """
    if mode not in ("packet", "hybrid"):
        raise ValueError(f"mode must be 'packet' or 'hybrid', got {mode!r}")
    topology = sub_topology(config.topology_codes)
    cluster = CdnCluster(
        topology,
        replace(
            config.cluster,
            seed=config.seed,
            riptide=config.riptide,
            label=mode,
        ),
    )
    codes = cluster.pop_codes
    cluster.start_riptide()
    if mode == "packet":
        workload_config = OrganicWorkloadConfig(
            rate_per_second=config.organic_rate,
            close_probability=config.close_probability,
            max_object_bytes=config.max_object_bytes,
        )
        for code in codes:
            cluster.add_organic_workload(
                code, [c for c in codes if c != code], workload_config
            )
    else:
        _add_mirror_populations(cluster, config)
    cluster.run(config.warmup)
    fleet = cluster.make_probe_fleet(
        list(config.source_pops),
        interval=config.probe_interval,
        host_indices=[1],
        churn_probability=config.probe_churn,
    )
    cluster.start_timeline_sampler()
    fleet.start(initial_delay=0.0)
    cluster.run(config.duration)
    cluster.sync_flows()
    advisories: dict[tuple[str, str], int] = {}
    for code in codes:
        agent = cluster.agents(code)[0]
        for prefix, window in sorted(
            agent.learned_table().windows().items(), key=lambda kv: str(kv[0])
        ):
            advisories[(code, str(prefix))] = window
    fluid = cluster.fluid
    return HybridArmSummary(
        mode=mode,
        advisories=advisories,
        probes=fleet.result_set(),
        learned_routes=sum(
            len(agent.learned_table()) for agent in cluster.all_agents()
        ),
        events_processed=cluster.sim.events_processed,
        fluid_flows=fluid.total_flows() if fluid is not None else 0.0,
        fluid_steps=fluid.steps if fluid is not None else 0,
    )


def _add_mirror_populations(cluster: CdnCluster, config: HybridStudyConfig) -> None:
    """Register fluid cohorts mirroring the packet arm's organic mesh.

    For each host 0 and each remote PoP, two cohorts reproduce what the
    packet arm's ``ss`` polls would show toward that prefix: the serving
    sockets (one per remote fetching client, windows grown by whole
    objects) and the fetching sockets (one per remote address, windows
    grown only by requests).
    """
    sizes = FileSizeDistribution.production_cdn()
    mean_segments = mean_object_segments(sizes, config.max_object_bytes)
    codes = cluster.pop_codes
    for code in codes:
        others = [c for c in codes if c != code]
        n_addresses = sum(
            len(cluster.pop(c).server_addresses()) for c in others
        )
        rate_per_address = config.organic_rate / n_addresses
        churn = rate_per_address * config.close_probability
        for dest in others:
            # Serving side: the remote PoP's one workload client fetches
            # whole objects from this host.  The socket is idle between
            # fetches, so its send rate — and therefore its loss
            # exposure — is the fetch schedule's, not w/rtt.
            serve_rate = rate_per_address * mean_segments
            cluster.add_fluid_traffic(
                code,
                [dest],
                flows_per_destination=1.0,
                growth_segments_per_sec=serve_rate,
                send_segments_per_flow_per_sec=serve_rate,
                churn_per_flow_per_sec=churn,
                config=config.fluid,
            )
            # Fetching side: this host's workload client holds one
            # connection per remote address, grown by request segments.
            fetch_rate = rate_per_address * config.request_segments
            cluster.add_fluid_traffic(
                code,
                [dest],
                flows_per_destination=float(
                    len(cluster.pop(dest).server_addresses())
                ),
                growth_segments_per_sec=fetch_rate,
                send_segments_per_flow_per_sec=fetch_rate,
                churn_per_flow_per_sec=churn,
                is_client=True,
                config=config.fluid,
            )


@dataclass
class HybridDifferentialResult:
    """Packet vs hybrid agreement on learning and probe anchors."""

    packet: HybridArmSummary
    hybrid: HybridArmSummary

    # -- learner agreement ---------------------------------------------

    def advisory_pairs(self) -> dict[tuple[str, str], tuple[int, int]]:
        """(pop, prefix) -> (packet window, hybrid window); 0 = unlearned."""
        keys = sorted(set(self.packet.advisories) | set(self.hybrid.advisories))
        return {
            key: (
                self.packet.advisories.get(key, 0),
                self.hybrid.advisories.get(key, 0),
            )
            for key in keys
        }

    def advisory_max_rel_delta(self) -> float:
        """Worst per-destination relative disagreement of learned windows."""
        worst = 0.0
        for packet_window, hybrid_window in self.advisory_pairs().values():
            top = max(packet_window, hybrid_window)
            if top == 0:
                continue
            worst = max(worst, abs(packet_window - hybrid_window) / top)
        return worst

    # -- Figure 6 anchor: probe completion-time distributions ----------

    def anchor_median_deltas(self) -> dict[tuple[int, str], float]:
        """Relative median completion-time delta per (size, RTT bucket)."""
        deltas: dict[tuple[int, str], float] = {}
        for size in PAPER_PROBE_SIZES:
            for bucket in BUCKET_LABELS:
                packet_times = self.packet.probes.completion_times(
                    size_bytes=size, bucket=bucket
                )
                hybrid_times = self.hybrid.probes.completion_times(
                    size_bytes=size, bucket=bucket
                )
                if not packet_times or not hybrid_times:
                    continue
                packet_median = EmpiricalCdf(packet_times).median
                hybrid_median = EmpiricalCdf(hybrid_times).median
                top = max(packet_median, hybrid_median)
                deltas[(size, bucket)] = (
                    abs(packet_median - hybrid_median) / top if top else 0.0
                )
        return deltas

    def anchor_max_rel_delta(self) -> float:
        deltas = self.anchor_median_deltas()
        return max(deltas.values()) if deltas else 0.0

    # -- Figure 3 anchor: transfers completing in the first RTTs -------

    def first_window_fractions(self, size_bytes: int) -> tuple[float, float]:
        """Fraction of probes finishing within ~2 path RTTs, per arm.

        Two RTTs = handshake + one data round: the Figure 3 "completes
        in the first RTT" population, measured instead of modelled.
        """
        def fraction(probes: ProbeResultSet) -> float:
            results = probes.completed_results(size_bytes=size_bytes)
            if not results:
                return 0.0
            fast = sum(
                1 for probe in results
                if probe.total_time <= 2.25 * probe.path_rtt
            )
            return fast / len(results)

        return fraction(self.packet.probes), fraction(self.hybrid.probes)

    def first_window_fraction_delta(self) -> float:
        """Worst absolute disagreement of the Figure 3-style fractions."""
        worst = 0.0
        for size in PAPER_PROBE_SIZES:
            packet_fraction, hybrid_fraction = self.first_window_fractions(size)
            worst = max(worst, abs(packet_fraction - hybrid_fraction))
        return worst

    def report(self) -> str:
        rows = []
        for (code, prefix), (pw, hw) in sorted(self.advisory_pairs().items()):
            top = max(pw, hw)
            delta = abs(pw - hw) / top if top else 0.0
            rows.append((code, prefix, str(pw), str(hw), f"{delta:.0%}"))
        table = format_table(
            ("pop", "destination", "packet", "hybrid", "delta"),
            rows,
            title="Hybrid differential: learned windows per destination",
        )
        lines = [
            table,
            f"\nadvisory max delta: {self.advisory_max_rel_delta():.1%}",
            f"probe median max delta: {self.anchor_max_rel_delta():.1%}",
            f"first-RTT fraction max delta: "
            f"{self.first_window_fraction_delta():.2f}",
            f"events: packet={self.packet.events_processed:,} "
            f"hybrid={self.hybrid.events_processed:,} "
            f"(hybrid background flows: {self.hybrid.fluid_flows:.0f} fluid, "
            f"{self.hybrid.fluid_steps} steps)",
        ]
        return "\n".join(lines)


def run_differential(
    config: HybridStudyConfig | None = None,
    workers: int = 1,
) -> HybridDifferentialResult:
    """Run the packet and hybrid arms and compare; ``(packet, hybrid)``.

    The two arms are independent simulations, so ``workers > 1`` runs
    them in forked workers (bit-identical results, same order).
    """
    config = config if config is not None else HybridStudyConfig()
    if workers > 1:
        from repro.parallel import run_tasks

        packet, hybrid = run_tasks(
            [
                lambda: run_arm(config, "packet"),
                lambda: run_arm(config, "hybrid"),
            ],
            workers=min(workers, 2),
            labels=["hybrid-study:packet", "hybrid-study:hybrid"],
        )
        return HybridDifferentialResult(packet=packet, hybrid=hybrid)
    return HybridDifferentialResult(
        packet=run_arm(config, "packet"),
        hybrid=run_arm(config, "hybrid"),
    )


# ----------------------------------------------------------------------
# the 34-PoP / 10^6-flow scale scenario
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HybridScaleConfig:
    """The headline hybrid run: full paper topology, 10^6 open flows."""

    seed: int = 42
    #: Open background flows per ordered PoP pair.  34 PoPs give
    #: 34 * 33 = 1122 pairs; 900 flows each is 1,009,800 open flows.
    flows_per_pair: float = 900.0
    warmup: float = 5.0
    duration: float = 25.0
    probe_interval: float = 5.0
    source_pops: tuple[str, ...] = ("LHR", "JFK")
    #: Additive drift per background flow (segments/second).
    growth_segments_per_sec: float = 2.0
    #: Per-flow departure rate (connection churn).
    churn_per_flow_per_sec: float = 0.02
    #: The sampled packet-granular slice: organic fetch rate on each
    #: source PoP riding the same (fluid-pressured) trunks.
    organic_rate: float = 1.0
    fluid: FluidConfig = field(
        default_factory=lambda: FluidConfig(cadence=0.5, bin_width=4)
    )
    riptide: RiptideConfig = field(
        default_factory=lambda: RiptideConfig(
            granularity="prefix", prefix_length=16, update_interval=2.0
        )
    )
    cluster: ClusterConfig = field(
        default_factory=lambda: ClusterConfig(
            tcp=TcpConfig(default_initrwnd=300, slow_start_after_idle=False)
        )
    )


@dataclass
class HybridScaleResult:
    """What the 34-PoP hybrid run sustained."""

    pops: int
    populations: int
    #: Open fluid flows observed at each probe window (min/mean/max).
    flows_min: float
    flows_mean: float
    flows_max: float
    fluid_steps: int
    mean_cwnd: float
    offered_gbps: float
    probes_completed: int
    learned_routes: int
    events_processed: int
    wall_seconds: float

    @property
    def sustained_million_flows(self) -> bool:
        """Did every measurement window hold >= 10^6 open flows?"""
        return self.flows_min >= 1_000_000

    def report(self) -> str:
        rows = [
            ("PoPs", f"{self.pops}"),
            ("fluid populations", f"{self.populations:,}"),
            ("open flows per window (min)", f"{self.flows_min:,.0f}"),
            ("open flows per window (mean)", f"{self.flows_mean:,.0f}"),
            ("open flows per window (max)", f"{self.flows_max:,.0f}"),
            ("fluid steps", f"{self.fluid_steps:,}"),
            ("mean background cwnd", f"{self.mean_cwnd:.1f} segments"),
            ("background offered load", f"{self.offered_gbps:.1f} Gbps"),
            ("probes completed", f"{self.probes_completed:,}"),
            ("learned routes", f"{self.learned_routes:,}"),
            ("kernel events", f"{self.events_processed:,}"),
            ("wall time", f"{self.wall_seconds:.1f}s"),
        ]
        table = format_table(
            ("quantity", "value"),
            rows,
            title="Hybrid scale run: 34-PoP mean-field background",
        )
        verdict = (
            "\n>= 10^6 open flows sustained every window: "
            f"{'yes' if self.sustained_million_flows else 'NO'}"
        )
        return table + verdict


def run_scale(config: HybridScaleConfig | None = None) -> HybridScaleResult:
    """Run the 34-PoP hybrid scenario and measure what it sustained."""
    config = config if config is not None else HybridScaleConfig()
    started = time.perf_counter()  # lint: ignore[DET001] - measures the host, never feeds sim state
    topology = build_paper_topology()
    cluster = CdnCluster(
        topology,
        replace(
            config.cluster,
            seed=config.seed,
            riptide=config.riptide,
            label="hybrid",
        ),
    )
    codes = cluster.pop_codes
    cluster.start_riptide()
    for code in codes:
        cluster.add_fluid_traffic(
            code,
            [c for c in codes if c != code],
            flows_per_destination=config.flows_per_pair,
            growth_segments_per_sec=config.growth_segments_per_sec,
            churn_per_flow_per_sec=config.churn_per_flow_per_sec,
            config=config.fluid,
        )
    # The sampled packet-granular slice: real flows sharing the trunks.
    workload_config = OrganicWorkloadConfig(
        rate_per_second=config.organic_rate, max_object_bytes=200_000
    )
    for code in config.source_pops:
        cluster.add_organic_workload(
            code, [c for c in codes if c != code], workload_config
        )
    engine = cluster.fluid
    assert engine is not None
    cluster.run(config.warmup)
    fleet = cluster.make_probe_fleet(
        list(config.source_pops),
        interval=config.probe_interval,
        host_indices=[1],
    )
    fleet.start(initial_delay=0.0)
    # Sample the open-flow count once per probe window.
    window_flows: list[float] = []
    windows = max(1, int(config.duration / config.probe_interval))
    for _ in range(windows):
        cluster.run(config.probe_interval)
        window_flows.append(engine.total_flows())
    cluster.sync_flows()
    wall = time.perf_counter() - started  # lint: ignore[DET001] - measures the host, never feeds sim state
    return HybridScaleResult(
        pops=len(codes),
        populations=len(engine.populations),
        flows_min=min(window_flows),
        flows_mean=sum(window_flows) / len(window_flows),
        flows_max=max(window_flows),
        fluid_steps=engine.steps,
        mean_cwnd=engine.mean_window(),
        offered_gbps=engine.total_offered_bps() / 1e9,
        probes_completed=len(fleet.completed_results()),
        learned_routes=sum(
            len(agent.learned_table()) for agent in cluster.all_agents()
        ),
        events_processed=cluster.sim.events_processed,
        wall_seconds=wall,
    )


def run(
    config: HybridScaleConfig | None = None,
    flows_per_pair: float | None = None,
    warmup: float | None = None,
    duration: float | None = None,
    seed: int | None = None,
) -> HybridScaleResult:
    """Registry entry point: the 34-PoP scale scenario.

    Keyword overrides exist for the CLI fast path (a reduced smoke run
    that keeps the full topology but shrinks flows and duration).
    """
    config = config if config is not None else HybridScaleConfig()
    overrides: dict[str, object] = {}
    if flows_per_pair is not None:
        overrides["flows_per_pair"] = flows_per_pair
    if warmup is not None:
        overrides["warmup"] = warmup
    if duration is not None:
        overrides["duration"] = duration
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        config = replace(config, **overrides)
    return run_scale(config)
