"""Figure 11: learned windows at a probe-only PoP vs an organic PoP.

Paper anchors: "the PoP with organic traffic sees much higher windows,
achieving a congestion window of 100 for over 44% of connections.  On
the other hand, the probe-only traffic is below a window of 100 in 99%
of cases, and has a median window of 75 segments."  Riptide's learned
value can only grow as far as the traffic that teaches it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_cdf_rows
from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.cdn.workload import OrganicWorkloadConfig
from repro.core.config import RiptideConfig
from repro.experiments.scenarios import sub_topology

#: Probe-only vantage / organic ("busiest in the network") vantage.
PROBE_ONLY_POP = "ARN"
ORGANIC_POP = "LHR"

DEFAULT_CODES = ("LHR", "ARN", "JFK", "IAD", "NRT", "SYD")


@dataclass
class Fig11Result:
    """Window CDFs observed at the two vantage PoPs."""

    probe_only: EmpiricalCdf
    organic: EmpiricalCdf
    c_max: int

    @property
    def organic_fraction_at_cmax(self) -> float:
        return 1.0 - self.organic.cdf(self.c_max - 1)

    @property
    def probe_only_fraction_below_cmax(self) -> float:
        return self.probe_only.cdf(self.c_max - 1)

    def report(self) -> str:
        table = format_cdf_rows(
            {"probe-only PoP": self.probe_only, "organic PoP": self.organic},
            levels=(10, 25, 50, 75, 90),
            value_format="{:.0f}",
            title="Figure 11: observed windows by traffic profile (segments)",
        )
        anchors = (
            f"\norganic PoP at c_max={self.c_max}: "
            f"{self.organic_fraction_at_cmax:.0%} of connections (paper: 44%)\n"
            f"probe-only PoP below c_max: "
            f"{self.probe_only_fraction_below_cmax:.0%} (paper: 99%, median 75)"
        )
        return table + anchors


def run(
    topology_codes: tuple[str, ...] = DEFAULT_CODES,
    duration: float = 90.0,
    warmup: float = 10.0,
    probe_interval: float = 12.0,
    organic_rate: float = 6.0,
    c_max: int = 100,
    ttl: float = 6.0,
    update_interval: float = 0.5,
    idle_close_delay: float = 4.0,
    seed: int = 42,
) -> Fig11Result:
    """Run the two-profile comparison.

    The paper's probes are hourly while Riptide's TTL is 90 s, so on a
    probe-only PoP every learned route *expires between rounds* and each
    probe starts from the kernel default — capping its windows at what a
    single transfer can grow.  We preserve that regime under time
    compression by keeping ``ttl`` below ``probe_interval`` (while the
    organic PoP's continuous traffic keeps its entries alive).
    """
    if ttl >= probe_interval:
        raise ValueError(
            "fig11 requires ttl < probe_interval to reproduce the paper's "
            "expiry-between-probe-rounds regime"
        )
    topology = sub_topology(topology_codes)
    riptide_config = RiptideConfig(
        granularity="prefix",
        prefix_length=16,
        c_max=c_max,
        ttl=ttl,
        update_interval=update_interval,
    )
    cluster = CdnCluster(
        topology, replace(ClusterConfig(seed=seed), riptide=riptide_config)
    )
    codes = cluster.pop_codes
    # Organic traffic everywhere except the probe-only PoP (and nobody
    # fetches *from* it either, so its links see only probe traffic).
    busy_codes = [c for c in codes if c != PROBE_ONLY_POP]
    for code in busy_codes:
        cluster.add_organic_workload(
            code,
            [c for c in busy_codes if c != code],
            OrganicWorkloadConfig(rate_per_second=organic_rate),
        )
    started = cluster.start_riptide()
    cluster.run(warmup)
    # Every PoP probes every other (Section IV-A), so the probe-only PoP
    # both sends probes and *serves* probe responses — the only traffic
    # that can teach its peers' (and its own) Riptide agents about it.
    fleet = cluster.make_probe_fleet(
        codes, interval=probe_interval, host_indices=[1], close_before_round=True
    )
    # Probe connections idle-close soon after each round, so on the
    # probe-only PoP the learned routes expire before the next round.
    fleet.idle_close_delay = idle_close_delay
    fleet.start(initial_delay=0.0)
    probe_sampler = cluster.make_cwnd_sampler(
        interval=1.0,
        created_after=started,
        pop_codes=[PROBE_ONLY_POP],
    )
    organic_sampler = cluster.make_cwnd_sampler(
        interval=1.0,
        created_after=started,
        pop_codes=[ORGANIC_POP],
    )
    probe_sampler.start()
    organic_sampler.start()
    cluster.run(duration)
    return Fig11Result(
        probe_only=EmpiricalCdf(probe_sampler.cwnd_values()),
        organic=EmpiricalCdf(organic_sampler.cwnd_values()),
        c_max=c_max,
    )
