"""Mean-field background traffic: 10^6 open flows without 10^6 sockets.

:class:`FluidTraffic` is the hybrid engine's cdn-side half, a sibling of
:class:`~repro.cdn.crosstraffic.CrossTraffic`: where cross-traffic pumps
real filler packets through one link, fluid traffic carries whole
*populations* of background TCP flows as analytic cwnd distributions
(:class:`~repro.sim.fluid.FluidPopulation`) and only touches the packet
world through two narrow couplings:

* **link pressure** — each population's aggregate send rate is applied
  to the directional :class:`~repro.net.link.Link` its data crosses
  (``link.set_fluid_load``), so packet-granular flows sharing the trunk
  serialize against the residual capacity;
* **loss feedback** — each step reads the link's parametric loss model
  (``mean_loss_rate``) plus a congestion term when combined packet +
  fluid offered load exceeds capacity, EWMA-smoothed, and feeds it back
  into the halving dynamics.  A downed link drives the cohort's windows
  to the floor, exactly like a packet flow timing out.

Populations register per (source host, destination address) and appear
in that host's ``ss`` polls as synthesized socket snapshots
(``host.fluid_sources``), so the Riptide agent, EWMA learner, safety
guard and :class:`~repro.cdn.monitors.CwndSampler` all observe fluid
cohorts without a single code change.  Crucially the feedback loop is
closed: new fluid arrivals enter at ``host.initcwnd_for(remote)``, so a
Riptide-installed route jump-starts the background population just as
it jump-starts real connections.

The engine steps on a coarse cadence (default 250 ms) as one sim event
per step, independent of flow count — a million open flows cost the
same handful of histogram updates as a thousand.
"""

from __future__ import annotations

from repro.linux.host import Host
from repro.net.addresses import IPv4Address
from repro.net.link import Link
from repro.net.network import Network
from repro.sim.fluid import FluidConfig, FluidPopulation
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicProcess
from repro.tcp.socket import SocketStats, TcpState

#: Destination port stamped on synthesized snapshots (the transfer
#: service port, so fluid flows look like background fetch traffic).
FLUID_REMOTE_PORT = 8080

#: Base of the synthetic local-port range (above the ephemeral range
#: real sockets draw from, so ports never collide in ss output).
_FLUID_PORT_BASE = 50000

#: Hard cap on the congestion loss term (beyond this AIMD is dead anyway).
_MAX_LOSS_RATE = 0.5


class _HostFluidSource:
    """Adapter presenting one host's populations as an ``ss`` source."""

    __slots__ = ("_engine", "_host")

    def __init__(self, engine: "FluidTraffic", host: Host) -> None:
        self._engine = engine
        self._host = host

    def socket_stats(self) -> list[SocketStats]:
        return self._engine.socket_stats_for(self._host)


class _LinkState:
    """Per-link coupling state: load aggregation + smoothed loss."""

    __slots__ = (
        "link", "populations", "smoothed_loss", "last_bytes_offered",
    )

    def __init__(self, link: Link) -> None:
        self.link = link
        self.populations: list[FluidPopulation] = []
        self.smoothed_loss = link.effective_loss_model.mean_loss_rate()
        self.last_bytes_offered = link.stats.bytes_offered


class FluidTraffic:
    """The cluster-wide mean-field background-traffic engine."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: FluidConfig | None = None,
        name: str = "fluid-traffic",
    ) -> None:
        self._sim = sim
        self._network = network
        self.config = config if config is not None else FluidConfig()
        self.name = name
        self._populations: list[FluidPopulation] = []
        self._pop_host: list[Host] = []
        self._pop_remote: list[IPv4Address] = []
        self._pop_link: list[_LinkState | None] = []
        self._pop_port_base: list[int] = []
        self._by_host: dict[IPv4Address, list[int]] = {}
        self._link_states: list[_LinkState] = []
        self._link_index: dict[str, _LinkState] = {}
        self._sources: dict[IPv4Address, _HostFluidSource] = {}
        self._process = PeriodicProcess(
            sim, self.config.cadence, self._step, name=name
        )
        self.steps = 0
        metrics = sim.obs.metrics
        self._m_steps = metrics.counter("fluid_steps")
        self._g_flows = metrics.gauge("fluid_flows_open")
        self._g_offered = metrics.gauge("fluid_offered_bps")
        self._g_mean_cwnd = metrics.gauge("fluid_mean_cwnd")

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def add_population(
        self,
        host: Host,
        remote: IPv4Address,
        target_flows: float,
        growth_segments_per_sec: float | None = None,
        send_segments_per_flow_per_sec: float | None = None,
        churn_per_flow_per_sec: float = 0.0,
        is_client: bool = False,
        rtt: float | None = None,
    ) -> FluidPopulation:
        """Register a background cohort from ``host`` toward ``remote``.

        The cohort's data crosses the directional trunk from the host's
        zone to the remote's zone (both must be registered; same-zone
        cohorts are uncoupled — LAN paths have no interesting loss).
        New flows enter at whatever initial window the host's route
        table currently resolves for ``remote``.
        """
        src_zone = self._network.zone_of(host.address)
        dst_zone = self._network.zone_of(remote)
        if src_zone is None or dst_zone is None:
            unresolved = host.address if src_zone is None else remote
            raise ValueError(
                f"address {unresolved} is in no registered zone; fluid "
                "populations need resolvable endpoints to find their trunk"
            )
        link: Link | None = None
        if src_zone != dst_zone:
            link = self._network.link_from(src_zone, dst_zone)
            if link is None:
                raise ValueError(
                    f"no trunk from zone {src_zone} to zone {dst_zone} "
                    f"for fluid population {host.name}->{remote}"
                )
        if rtt is None:
            if link is not None:
                rtt = 2.0 * (link.propagation_delay + link.extra_delay)
            else:
                rtt = 2.0 * Network.DEFAULT_INTRA_ZONE_DELAY
        entry_window = host.initcwnd_for(remote)
        index = len(self._populations)
        population = FluidPopulation(
            name=f"{host.name}->{remote}",
            rtt=rtt,
            target_flows=target_flows,
            entry_window=entry_window,
            max_window=self.config.max_window,
            bin_width=self.config.bin_width,
            growth_segments_per_sec=growth_segments_per_sec,
            send_segments_per_flow_per_sec=send_segments_per_flow_per_sec,
            churn_per_flow_per_sec=churn_per_flow_per_sec,
            mss=host.config.mss,
            created_at=self._sim.now,
            is_client=is_client,
        )
        self._populations.append(population)
        self._pop_host.append(host)
        self._pop_remote.append(remote)
        self._pop_port_base.append(
            _FLUID_PORT_BASE + index * self.config.ss_samples
        )
        link_state: _LinkState | None = None
        if link is not None:
            link_state = self._link_index.get(link.name)
            if link_state is None:
                link_state = _LinkState(link)
                self._link_states.append(link_state)
                self._link_index[link.name] = link_state
            link_state.populations.append(population)
        self._pop_link.append(link_state)
        host_key = host.address
        if host_key not in self._by_host:
            self._by_host[host_key] = []
            source = _HostFluidSource(self, host)
            self._sources[host_key] = source
            host.fluid_sources.append(source)
        self._by_host[host_key].append(index)
        return population

    @property
    def populations(self) -> list[FluidPopulation]:
        return list(self._populations)

    @property
    def running(self) -> bool:
        return self._process.running

    def start(self, initial_delay: float | None = None) -> None:
        self._process.start(initial_delay=initial_delay)

    def stop(self) -> None:
        self._process.stop()
        # Release the pressure so packet flows get the trunks back.
        for state in self._link_states:
            state.link.set_fluid_load(0.0)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    def total_flows(self) -> float:
        return sum(p.flows for p in self._populations)

    def total_offered_bps(self) -> float:
        return sum(p.offered_bps() for p in self._populations)

    def mean_window(self) -> float:
        """Flow-weighted mean congestion window across all cohorts."""
        flows = self.total_flows()
        if flows <= 0.0:
            return 0.0
        weighted = sum(p.distribution.total_window_segments() for p in self._populations)
        return weighted / flows

    def link_loss_rate(self, link: Link) -> float:
        """The smoothed loss rate currently driving cohorts on ``link``."""
        state = self._link_index.get(link.name)
        if state is None:
            return link.effective_loss_model.mean_loss_rate()
        return state.smoothed_loss

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def _step(self) -> None:
        dt = self.config.cadence
        smoothing = self.config.loss_smoothing
        # Pass 1: refresh each link's loss estimate from what the *last*
        # interval actually carried (packet bytes observed on the link
        # plus the fluid load it was charged with), then re-apply the
        # new fluid pressure for the coming interval.
        for state in self._link_states:
            link = state.link
            if not link.up:
                state.smoothed_loss = 1.0
                state.last_bytes_offered = link.stats.bytes_offered
                link.set_fluid_load(0.0)
                continue
            capacity = link.bandwidth_bps * link.bandwidth_scale
            offered = link.stats.bytes_offered
            packet_bps = (offered - state.last_bytes_offered) * 8.0 / dt
            state.last_bytes_offered = offered
            fluid_bps = sum(p.offered_bps() for p in state.populations)
            total_bps = packet_bps + fluid_bps
            congestion = 0.0
            if total_bps > capacity:
                congestion = (total_bps - capacity) / total_bps
            raw = link.effective_loss_model.mean_loss_rate() + congestion
            if raw > _MAX_LOSS_RATE:
                raw = _MAX_LOSS_RATE
            state.smoothed_loss = (
                state.smoothed_loss + smoothing * (raw - state.smoothed_loss)
            )
            link.set_fluid_load(fluid_bps)
        # Pass 2: advance every cohort against its link's loss rate,
        # refilling churned-out flows at the currently-routed initial
        # window (the Riptide feedback edge).
        for index, population in enumerate(self._populations):
            link_state = self._pop_link[index]
            loss = (
                link_state.smoothed_loss if link_state is not None else 0.0
            )
            entry = self._pop_host[index].initcwnd_for(self._pop_remote[index])
            population.step(dt, loss, entry)
        self.steps += 1
        self._m_steps.inc()
        if self._sim.obs.enabled:
            self._g_flows.set(self.total_flows())
            self._g_offered.set(self.total_offered_bps())
            self._g_mean_cwnd.set(self.mean_window())

    # ------------------------------------------------------------------
    # ss synthesis
    # ------------------------------------------------------------------

    def socket_stats_for(self, host: Host) -> list[SocketStats]:
        """Synthesized ``ss`` snapshots for every cohort on ``host``.

        Each population contributes snapshots at evenly spaced quantiles
        of its cwnd distribution — ``min(config.ss_samples,
        round(flows))`` of them, so a two-flow cohort weighs like two
        sockets in the learner's average (matching the packet arm) while
        a million-flow cohort still costs only ``ss_samples`` rows.
        Cumulative sent/retransmitted counters split evenly across the
        samples so the safety guard's per-poll deltas reflect the
        cohort's true loss rate.  Deterministic: same state, same
        snapshots.
        """
        indices = self._by_host.get(host.address)
        if not indices:
            return []
        now = self._sim.now
        max_samples = self.config.ss_samples
        snapshots: list[SocketStats] = []
        for index in indices:
            population = self._populations[index]
            if population.flows <= 0.0:
                continue
            count = min(max_samples, max(1, round(population.flows)))
            remote = self._pop_remote[index]
            port_base = self._pop_port_base[index]
            windows = population.distribution.sample_windows(count)
            ages = population.sample_ages(count, now)
            sent_share = int(population.segments_sent_total / count)
            retx_share = int(population.segments_retx_total / count)
            acked_share = int(population.bytes_acked_total / count) + 1
            entry = self._pop_host[index].initcwnd_for(remote)
            for i in range(count):
                created = now - ages[i]
                snapshots.append(
                    SocketStats(
                        local_port=port_base + i,
                        remote_address=remote,
                        remote_port=FLUID_REMOTE_PORT,
                        state=TcpState.ESTABLISHED,
                        cwnd=windows[i],
                        ssthresh=float(self.config.max_window),
                        initial_cwnd=entry,
                        srtt=population.rtt,
                        bytes_acked=acked_share,
                        bytes_received=0,
                        segments_sent=sent_share,
                        segments_retransmitted=retx_share,
                        created_at=created,
                        established_at=created,
                        last_activity_at=now,
                        is_client=population.is_client,
                    )
                )
        return snapshots

    def __repr__(self) -> str:
        return (
            f"<FluidTraffic populations={len(self._populations)} "
            f"flows={self.total_flows():.0f} steps={self.steps} "
            f"running={self.running}>"
        )
