"""Background cross-traffic: congesting a trunk on demand.

The paper's adaptivity claim — "if the set of connections to a
destination do demonstrate smaller windows, Riptide will respond
accordingly, shrinking the initial windows" — needs a way to *make*
windows shrink.  A :class:`CrossTraffic` source pumps unacknowledged
filler packets into one link direction at a configurable rate, consuming
bandwidth and queue space exactly like competing traffic would, so TCP
flows sharing the trunk see queueing delay and drops.
"""

from __future__ import annotations

import zlib

from repro.net.addresses import IPv4Address
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.kernel import Simulator

#: Wire size of each filler packet (a full-MTU datagram).
FILLER_PACKET_BYTES = 1500


def filler_addresses(name: str) -> tuple[IPv4Address, IPv4Address]:
    """A per-source TEST-NET-1 address pair for filler packets.

    Filler is never routed to a host, but it *is* visible in traces and
    flow tooling — two sources sharing one hardcoded pair would be
    indistinguishable there.  The pair is derived from the instance
    name (stable across runs: same name, same addresses), giving 127
    disjoint ``(src, dst)`` pairs inside 192.0.2.0/24.
    """
    slot = zlib.crc32(name.encode("utf-8")) % 127
    first = 1 + 2 * slot
    return (
        IPv4Address(f"192.0.2.{first}"),
        IPv4Address(f"192.0.2.{first + 1}"),
    )


class CrossTraffic:
    """A constant-bit-rate packet source aimed at one link direction."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        rate_bps: float,
        name: str = "cross-traffic",
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self._sim = sim
        self._link = link
        self.rate_bps = float(rate_bps)
        self.name = name
        self.filler_src, self.filler_dst = filler_addresses(name)
        self._running = False
        self.packets_offered = 0

    @property
    def running(self) -> bool:
        return self._running

    @property
    def interval(self) -> float:
        """Seconds between filler packets at the configured rate."""
        return FILLER_PACKET_BYTES * 8.0 / self.rate_bps

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._sim.schedule(self.interval, self._emit)

    def stop(self) -> None:
        self._running = False

    def _emit(self) -> None:
        if not self._running:
            return
        packet = Packet(
            self.filler_src, self.filler_dst, FILLER_PACKET_BYTES, payload="filler"
        )
        self._link.transmit(packet, self._discard)
        self.packets_offered += 1
        self._sim.schedule(self.interval, self._emit)

    @staticmethod
    def _discard(packet: Packet) -> None:
        """Filler is fire-and-forget; nothing receives it."""

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return f"<CrossTraffic {self.name!r} {self.rate_bps / 1e6:.0f}Mbps {state}>"
