"""The 34-PoP global deployment of the paper's Table II.

Continental census (Table II): Europe 10, North America 11,
South America 1, Asia 9, Oceania 3 — 34 PoPs.  Cities are plausible CDN
metros; coordinates are real, so the pairwise RTT distribution (Figure 5)
emerges from geography rather than being hand-drawn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdn.geo import DEFAULT_PATH_INFLATION, GeoPoint, rtt_between
from repro.cdn.pop import PoP
from repro.net.addresses import Prefix

#: (code, city, continent, latitude, longitude)
PAPER_POP_SITES: tuple[tuple[str, str, str, float, float], ...] = (
    # Europe (10)
    ("LHR", "London", "Europe", 51.51, -0.13),
    ("FRA", "Frankfurt", "Europe", 50.11, 8.68),
    ("CDG", "Paris", "Europe", 48.86, 2.35),
    ("AMS", "Amsterdam", "Europe", 52.37, 4.90),
    ("MAD", "Madrid", "Europe", 40.42, -3.70),
    ("MXP", "Milan", "Europe", 45.46, 9.19),
    ("ARN", "Stockholm", "Europe", 59.33, 18.07),
    ("WAW", "Warsaw", "Europe", 52.23, 21.01),
    ("VIE", "Vienna", "Europe", 48.21, 16.37),
    ("DUB", "Dublin", "Europe", 53.35, -6.26),
    # North America (11)
    ("JFK", "New York", "North America", 40.71, -74.01),
    ("LAX", "Los Angeles", "North America", 34.05, -118.24),
    ("ORD", "Chicago", "North America", 41.88, -87.63),
    ("DFW", "Dallas", "North America", 32.78, -96.80),
    ("MIA", "Miami", "North America", 25.76, -80.19),
    ("SEA", "Seattle", "North America", 47.61, -122.33),
    ("IAD", "Ashburn", "North America", 39.04, -77.49),
    ("ATL", "Atlanta", "North America", 33.75, -84.39),
    ("DEN", "Denver", "North America", 39.74, -104.99),
    ("YYZ", "Toronto", "North America", 43.65, -79.38),
    ("SJC", "San Jose", "North America", 37.34, -121.89),
    # South America (1)
    ("GRU", "Sao Paulo", "South America", -23.55, -46.63),
    # Asia (9)
    ("NRT", "Tokyo", "Asia", 35.68, 139.69),
    ("SIN", "Singapore", "Asia", 1.35, 103.82),
    ("HKG", "Hong Kong", "Asia", 22.32, 114.17),
    ("ICN", "Seoul", "Asia", 37.57, 126.98),
    ("KIX", "Osaka", "Asia", 34.69, 135.50),
    ("BOM", "Mumbai", "Asia", 19.08, 72.88),
    ("MAA", "Chennai", "Asia", 13.08, 80.27),
    ("TPE", "Taipei", "Asia", 25.03, 121.57),
    ("MNL", "Manila", "Asia", 14.60, 120.98),
    # Oceania (3)
    ("SYD", "Sydney", "Oceania", -33.87, 151.21),
    ("MEL", "Melbourne", "Oceania", -37.81, 144.96),
    ("AKL", "Auckland", "Oceania", -36.85, 174.76),
)


@dataclass(frozen=True)
class Topology:
    """An immutable set of PoPs with derived pairwise RTTs."""

    pops: tuple[PoP, ...]
    path_inflation: float = DEFAULT_PATH_INFLATION

    def __post_init__(self) -> None:
        codes = [pop.code for pop in self.pops]
        if len(set(codes)) != len(codes):
            raise ValueError("duplicate PoP codes in topology")

    def pop_by_code(self, code: str) -> PoP:
        for pop in self.pops:
            if pop.code == code:
                return pop
        raise KeyError(f"no PoP with code {code!r}")

    def continent_counts(self) -> dict[str, int]:
        """Table II: PoP count per continent."""
        counts: dict[str, int] = {}
        for pop in self.pops:
            counts[pop.continent] = counts.get(pop.continent, 0) + 1
        return counts

    def rtt(self, a: PoP, b: PoP) -> float:
        """Base RTT between two PoPs in seconds."""
        return rtt_between(a.location, b.location, inflation=self.path_inflation)

    def pairs(self):
        """All unordered PoP pairs."""
        for i, a in enumerate(self.pops):
            for b in self.pops[i + 1 :]:
                yield a, b

    def all_pair_rtts(self) -> list[float]:
        """RTTs of all unordered pairs — the Figure 5 population."""
        return [self.rtt(a, b) for a, b in self.pairs()]

    def rtts_from(self, origin: PoP) -> dict[str, float]:
        """RTT from one PoP to every other, keyed by destination code."""
        return {
            pop.code: self.rtt(origin, pop) for pop in self.pops if pop is not origin
        }


def build_paper_topology(
    servers_per_pop: int = 2,
    path_inflation: float = DEFAULT_PATH_INFLATION,
) -> Topology:
    """The 34-PoP deployment with Table II's continental census.

    Each PoP ``i`` owns the zone ``10.<i>.0.0/16``; servers sit at the
    first addresses of the zone.
    """
    pops = []
    for index, (code, city, continent, lat, lon) in enumerate(PAPER_POP_SITES):
        pops.append(
            PoP(
                code=code,
                city=city,
                continent=continent,
                location=GeoPoint(lat, lon),
                prefix=Prefix.parse(f"10.{index}.0.0/16"),
                server_count=servers_per_pop,
            )
        )
    return Topology(pops=tuple(pops), path_inflation=path_inflation)
