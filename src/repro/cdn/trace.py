"""Transfer tracing: record what a deployment actually did.

A :class:`TransferTrace` subscribes to one or more transfer clients and
logs every completed or failed transfer — the raw material for custom
analyses beyond the built-in figure harnesses, and exportable to CSV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.export import rows_to_csv
from repro.cdn.transfer import TransferClient, TransferResult


@dataclass(frozen=True)
class TraceRecord:
    """One completed (or failed) transfer."""

    transfer_id: int
    source: str
    destination: str
    size_bytes: int
    started_at: float
    total_time: float | None
    new_connection: bool
    initial_cwnd: int
    failed_reason: str | None

    @property
    def completed(self) -> bool:
        return self.total_time is not None


class TransferTrace:
    """Collects per-transfer records across clients."""

    CSV_HEADERS = (
        "transfer_id",
        "source",
        "destination",
        "size_bytes",
        "started_at",
        "total_time",
        "new_connection",
        "initial_cwnd",
        "failed_reason",
    )

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def attach(self, client: TransferClient, source_label: str | None = None) -> None:
        """Wrap a client's ``fetch`` so every transfer is recorded."""
        label = source_label if source_label is not None else str(client.host.address)
        original_fetch = client.fetch

        def traced_fetch(destination, size_bytes, on_complete=None):
            def record(result: TransferResult) -> None:
                self._record(label, result)
                if on_complete is not None:
                    on_complete(result)

            return original_fetch(destination, size_bytes, on_complete=record)

        client.fetch = traced_fetch  # type: ignore[method-assign]

    def _record(self, source: str, result: TransferResult) -> None:
        self.records.append(
            TraceRecord(
                transfer_id=result.transfer_id,
                source=source,
                destination=str(result.destination),
                size_bytes=result.size_bytes,
                started_at=result.started_at,
                total_time=result.total_time if result.completed else None,
                new_connection=result.new_connection,
                initial_cwnd=result.initial_cwnd,
                failed_reason=result.failed_reason,
            )
        )

    def completed(self) -> list[TraceRecord]:
        return [r for r in self.records if r.completed]

    def failed(self) -> list[TraceRecord]:
        return [r for r in self.records if not r.completed]

    def completion_times(self, size_bytes: int | None = None) -> list[float]:
        return [
            r.total_time
            for r in self.completed()
            if size_bytes is None or r.size_bytes == size_bytes
        ]

    def to_csv(self) -> str:
        """All records as CSV text."""
        rows = [
            (
                r.transfer_id,
                r.source,
                r.destination,
                r.size_bytes,
                f"{r.started_at:.6f}",
                f"{r.total_time:.6f}" if r.total_time is not None else "",
                int(r.new_connection),
                r.initial_cwnd,
                r.failed_reason or "",
            )
            for r in self.records
        ]
        return rows_to_csv(self.CSV_HEADERS, rows)

    def __repr__(self) -> str:
        return (
            f"<TransferTrace records={len(self.records)} "
            f"failed={len(self.failed())}>"
        )
