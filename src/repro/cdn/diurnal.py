"""Time-varying traffic intensity (diurnal profiles).

Real CDN PoPs see strong day/night cycles.  For Riptide this matters
through the TTL: in a deep traffic valley no connections remain to a
destination, the learned entries expire, and the first transfers of the
next peak start from the kernel default again.  A :class:`RateProfile`
scales a workload's arrival rate over simulated time so experiments can
reproduce that regime.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass


class RateProfile(ABC):
    """A multiplicative modulation of a base arrival rate over time."""

    @abstractmethod
    def factor(self, now: float) -> float:
        """The rate multiplier at simulated time ``now`` (>= 0)."""

    @property
    @abstractmethod
    def max_factor(self) -> float:
        """An upper bound on :meth:`factor` over all time.

        Workloads sample arrivals at ``base_rate * max_factor`` and thin
        them down to the instantaneous rate (Lewis-Shedler), which is
        exact for any bounded profile.
        """


@dataclass(frozen=True)
class ConstantProfile(RateProfile):
    """No modulation (the default behaviour)."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"value must be >= 0, got {self.value}")

    def factor(self, now: float) -> float:
        return self.value

    @property
    def max_factor(self) -> float:
        return self.value


@dataclass(frozen=True)
class SinusoidalProfile(RateProfile):
    """A smooth day/night cycle.

    The factor oscillates between ``floor`` and ``peak`` with the given
    ``period`` (one simulated "day"), starting at the peak.
    """

    period: float
    floor: float = 0.1
    peak: float = 1.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not 0 <= self.floor <= self.peak:
            raise ValueError("require 0 <= floor <= peak")

    def factor(self, now: float) -> float:
        phase = math.cos(2.0 * math.pi * now / self.period)
        midpoint = (self.peak + self.floor) / 2.0
        amplitude = (self.peak - self.floor) / 2.0
        return midpoint + amplitude * phase

    @property
    def max_factor(self) -> float:
        return self.peak


@dataclass(frozen=True)
class OnOffProfile(RateProfile):
    """A hard valley: full rate for ``on_duration``, silence for
    ``off_duration``, repeating.  The sharpest test of TTL expiry."""

    on_duration: float
    off_duration: float

    def __post_init__(self) -> None:
        if self.on_duration <= 0 or self.off_duration <= 0:
            raise ValueError("durations must be positive")

    def factor(self, now: float) -> float:
        cycle = self.on_duration + self.off_duration
        return 1.0 if (now % cycle) < self.on_duration else 0.0

    @property
    def max_factor(self) -> float:
        return 1.0
