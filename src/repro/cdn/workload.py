"""Organic background traffic between PoPs.

The paper's Figure 11 shows that Riptide's learned windows are driven by
the PoP's *organic* traffic profile: a busy PoP observes large windows
and learns aggressive initcwnds, a probe-only PoP does not.  This module
generates that organic traffic: Poisson arrivals of fetches with sizes
drawn from the production file-size distribution, plus connection churn
(a fraction of connections close after use, so new connections keep
being created — the population Riptide improves).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cdn.diurnal import ConstantProfile, RateProfile
from repro.cdn.filesizes import FileSizeDistribution
from repro.cdn.transfer import TransferClient, TransferResult
from repro.net.addresses import IPv4Address
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class OrganicWorkloadConfig:
    """Parameters of one host's organic traffic toward a destination set."""

    rate_per_second: float = 2.0
    close_probability: float = 0.3
    max_object_bytes: int = 4 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_per_second}")
        if not 0.0 <= self.close_probability <= 1.0:
            raise ValueError(
                f"close_probability must be in [0, 1], got {self.close_probability}"
            )
        if self.max_object_bytes < 1:
            raise ValueError("max_object_bytes must be positive")


class OrganicWorkload:
    """Poisson fetches from one client toward a set of destinations."""

    def __init__(
        self,
        sim: Simulator,
        client: TransferClient,
        destinations: list[IPv4Address],
        sizes: FileSizeDistribution,
        rng: random.Random,
        config: OrganicWorkloadConfig | None = None,
        rate_profile: RateProfile | None = None,
        name: str = "organic",
    ) -> None:
        if not destinations:
            raise ValueError("workload needs at least one destination")
        self._sim = sim
        self._client = client
        self._destinations = list(destinations)
        self._sizes = sizes
        self._rng = rng
        self._config = config if config is not None else OrganicWorkloadConfig()
        self._profile = rate_profile if rate_profile is not None else ConstantProfile()
        self.name = name
        self._running = False
        self.transfers_issued = 0
        self.transfers_completed = 0
        self.bytes_fetched = 0

    @property
    def running(self) -> bool:
        return self._running

    @property
    def config(self) -> OrganicWorkloadConfig:
        return self._config

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next_arrival()

    def stop(self) -> None:
        self._running = False

    def _schedule_next_arrival(self) -> None:
        # Lewis-Shedler thinning: sample candidate arrivals at the
        # profile's peak rate, accept each with probability
        # factor(now) / max_factor.  Exact for any bounded profile.
        peak = self._profile.max_factor
        if peak <= 0.0:
            return  # a permanently silent profile generates nothing
        delay = self._rng.expovariate(self._config.rate_per_second * peak)
        self._sim.schedule(delay, self._arrival)

    def _arrival(self) -> None:
        if not self._running:
            return
        acceptance = self._profile.factor(self._sim.now) / self._profile.max_factor
        if self._rng.random() >= acceptance:
            self._schedule_next_arrival()
            return
        destination = self._rng.choice(self._destinations)
        size = min(self._sizes.sample(self._rng), self._config.max_object_bytes)
        self.transfers_issued += 1
        self._client.fetch(destination, size, on_complete=self._on_complete)
        self._schedule_next_arrival()

    def _on_complete(self, result: TransferResult) -> None:
        if result.completed:
            self.transfers_completed += 1
            self.bytes_fetched += result.size_bytes
            # Connection churn: sometimes drop the connection so future
            # fetches must open fresh ones (the case Riptide accelerates).
            if self._rng.random() < self._config.close_probability:
                self._client.close_idle_connections(result.destination)

    def __repr__(self) -> str:
        return (
            f"<OrganicWorkload {self.name!r} issued={self.transfers_issued} "
            f"completed={self.transfers_completed}>"
        )
