"""Points of presence.

A PoP is a named site with a location, a continent (for the Table II
census), an address prefix (its network zone) and a number of servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cdn.geo import GeoPoint
from repro.net.addresses import IPv4Address, Prefix

VALID_CONTINENTS = (
    "Europe",
    "North America",
    "South America",
    "Asia",
    "Oceania",
    "Africa",
)


@dataclass(frozen=True)
class PoP:
    """One point of presence in the CDN."""

    code: str
    city: str
    continent: str
    location: GeoPoint
    prefix: Prefix
    server_count: int = 2

    def __post_init__(self) -> None:
        if not self.code:
            raise ValueError("PoP code must be non-empty")
        if self.continent not in VALID_CONTINENTS:
            raise ValueError(
                f"unknown continent {self.continent!r}; expected one of "
                f"{', '.join(VALID_CONTINENTS)}"
            )
        if self.server_count < 1:
            raise ValueError(f"server_count must be >= 1, got {self.server_count}")
        if self.prefix.num_addresses < self.server_count + 1:
            raise ValueError(
                f"prefix {self.prefix} too small for {self.server_count} servers"
            )

    def server_addresses(self) -> list[IPv4Address]:
        """The addresses of this PoP's servers (network base + 1, +2, ...)."""
        base = self.prefix.network.value
        return [IPv4Address(base + 1 + i) for i in range(self.server_count)]

    def __str__(self) -> str:
        return f"{self.code} ({self.city}, {self.continent})"
