"""The CDN substrate: PoPs, geography, workloads and transfers.

Synthesises the environment the paper evaluates in — a 34-PoP global CDN
(Table II) with wide-area RTTs whose median exceeds 125 ms (Figure 5), a
production-like file-size distribution (Figure 2), diagnostic probes of
10/50/100 KB (Section IV-A), and organic background traffic.
"""

from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.cdn.filesizes import FileSizeDistribution
from repro.cdn.fluidtraffic import FluidTraffic
from repro.cdn.geo import GeoPoint, haversine_km, rtt_between
from repro.cdn.pop import PoP
from repro.cdn.probes import ProbeFleet, ProbeResult
from repro.cdn.topology import Topology, build_paper_topology
from repro.cdn.transfer import TransferClient, TransferServer, TransferResult
from repro.cdn.workload import OrganicWorkload

__all__ = [
    "CdnCluster",
    "ClusterConfig",
    "FileSizeDistribution",
    "FluidTraffic",
    "GeoPoint",
    "OrganicWorkload",
    "PoP",
    "ProbeFleet",
    "ProbeResult",
    "Topology",
    "TransferClient",
    "TransferResult",
    "TransferServer",
    "build_paper_topology",
    "haversine_km",
    "rtt_between",
]
