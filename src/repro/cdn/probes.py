"""The diagnostic probe infrastructure (Section IV-A).

"Every hour, each machine in each PoP requests a small probe object from
every other PoP ... We use three versions of probes of sizes 10, 50 and
100KB, simultaneously."  Probes reuse idle connections when available,
otherwise open new ones — so they measure exactly the cold-start path
Riptide accelerates.  Simulated time is compressed (default: one round
per ``interval`` seconds) without affecting per-transfer timings.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.cdn.pop import PoP
from repro.cdn.transfer import (
    RTT_BUCKETS,
    TransferClient,
    TransferResult,
    rtt_bucket,
)
from repro.net.addresses import IPv4Address
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicProcess

__all__ = [
    "PAPER_PROBE_SIZES",
    "ProbeFleet",
    "ProbeResult",
    "ProbeResultSet",
    "RTT_BUCKETS",
    "filter_probe_results",
    "rtt_bucket",
]

#: The paper's probe sizes, in bytes.
PAPER_PROBE_SIZES = (10_000, 50_000, 100_000)


@dataclass
class ProbeResult:
    """One probe measurement."""

    source_pop: str
    destination_pop: str
    size_bytes: int
    path_rtt: float
    transfer: TransferResult

    @property
    def bucket(self) -> str:
        return rtt_bucket(self.path_rtt)

    @property
    def completed(self) -> bool:
        return self.transfer.completed

    @property
    def total_time(self) -> float:
        return self.transfer.total_time

    @property
    def new_connection(self) -> bool:
        return self.transfer.new_connection


def filter_probe_results(
    results: list[ProbeResult],
    size_bytes: int | None = None,
    bucket: str | None = None,
    source_pop: str | None = None,
    new_connections_only: bool = False,
) -> list[ProbeResult]:
    """Completed probes filtered by size / RTT bucket / source."""
    selected = []
    for probe in results:
        if not probe.completed:
            continue
        if size_bytes is not None and probe.size_bytes != size_bytes:
            continue
        if bucket is not None and probe.bucket != bucket:
            continue
        if source_pop is not None and probe.source_pop != source_pop:
            continue
        if new_connections_only and not probe.new_connection:
            continue
        selected.append(probe)
    return selected


@dataclass
class ProbeResultSet:
    """A detached, picklable batch of probe measurements.

    Exposes the same analysis accessors as a live :class:`ProbeFleet`
    (``completed_results``, ``completion_times``), so the figure
    harnesses work identically on a live fleet and on results shipped
    back from a parallel worker process (:mod:`repro.parallel`).
    """

    results: list[ProbeResult]
    rounds_issued: int = 0

    def completed_results(self, **filters) -> list[ProbeResult]:
        """Completed probes filtered by size / RTT bucket / source."""
        return filter_probe_results(self.results, **filters)

    def completion_times(self, **filters) -> list[float]:
        """Total transfer times of the matching completed probes."""
        return [probe.total_time for probe in self.completed_results(**filters)]

    def __len__(self) -> int:
        return len(self.results)


@dataclass
class _ProbeSource:
    pop: PoP
    client: TransferClient


class ProbeFleet:
    """Issues probe rounds from a set of source clients to target PoPs."""

    def __init__(
        self,
        sim: Simulator,
        rtt_lookup: Callable[[str, str], float],
        interval: float = 10.0,
        sizes: tuple[int, ...] = PAPER_PROBE_SIZES,
        close_before_round: bool = False,
        churn_probability: float = 0.0,
        rng=None,
        arm: str = "",
    ) -> None:
        if not sizes:
            raise ValueError("probe fleet needs at least one probe size")
        if not 0.0 <= churn_probability <= 1.0:
            raise ValueError(
                f"churn_probability must be in [0, 1], got {churn_probability}"
            )
        if churn_probability > 0.0 and rng is None:
            raise ValueError("churn_probability requires an rng")
        self._sim = sim
        self._rtt_lookup = rtt_lookup
        self._sizes = sizes
        #: Fraction of idle probe connections independently closed before
        #: each round.  Models the paper's population mix: most probes
        #: reuse an existing idle connection, the rest open fresh ones —
        #: the cold-start path Riptide adjusts.
        self.churn_probability = churn_probability
        self._rng = rng
        #: When True, each round first closes the sources' idle pooled
        #: connections — modelling the paper's hourly cadence, where
        #: connections rarely survive between rounds, so most probes
        #: exercise the freshly-opened-connection path Riptide adjusts.
        self.close_before_round = close_before_round
        #: When set, idle probe connections are also closed this many
        #: seconds after each round fires (a server/client idle timeout,
        #: far shorter than the paper's hourly probe gap).
        self.idle_close_delay: float | None = None
        self._sources: list[_ProbeSource] = []
        self._targets: list[tuple[PoP, IPv4Address]] = []
        self._process = PeriodicProcess(sim, interval, self._round, name="probes")
        self.results: list[ProbeResult] = []
        self.rounds_issued = 0
        #: Experiment-arm tag stamped on probe spans ("control"/"riptide"
        #: in paired studies) so the attribution report can compute per-arm
        #: tail thresholds.
        self.arm = arm
        self._metrics = sim.obs.metrics
        self._m_issued = self._metrics.counter("probe_transfers_issued")
        self._m_failed = self._metrics.counter("probe_failures")
        self._obs_on = sim.obs.enabled
        self._spans = sim.obs.spans
        self._tsdb = sim.obs.tsdb
        #: Arm-qualified tsdb source for the probe_latency SLO signal.
        self._tsdb_source = f"{arm}:probes" if arm else "probes"

    @property
    def sizes(self) -> tuple[int, ...]:
        return self._sizes

    def add_source(self, pop: PoP, client: TransferClient) -> None:
        """Register a probing machine belonging to ``pop``."""
        self._sources.append(_ProbeSource(pop, client))

    def add_target(self, pop: PoP, address: IPv4Address) -> None:
        """Register a probe destination.

        The base path RTT used for bucketing (Figures 12-14) is resolved
        per (source, destination) pair through ``rtt_lookup``; measured
        times come from the simulation itself.
        """
        self._targets.append((pop, address))

    def start(self, initial_delay: float | None = None) -> None:
        if not self._sources or not self._targets:
            raise ValueError("probe fleet needs sources and targets before starting")
        self._process.start(initial_delay=initial_delay)

    def stop(self) -> None:
        self._process.stop()

    def _round(self) -> None:
        self.rounds_issued += 1
        if self.close_before_round:
            for source in self._sources:
                source.client.close_idle_connections()
        elif self.churn_probability > 0.0:
            for source in self._sources:
                source.client.close_idle_connections(
                    probability=self.churn_probability, rng=self._rng
                )
        if self.idle_close_delay is not None:
            self._sim.schedule(self.idle_close_delay, self._close_idle)
        for source in self._sources:
            for target_pop, address in self._targets:
                if target_pop.code == source.pop.code:
                    continue
                path_rtt = self._rtt_lookup(source.pop.code, target_pop.code)
                for size in self._sizes:
                    self._issue(source, target_pop, address, path_rtt, size)

    def _issue(
        self,
        source: _ProbeSource,
        target_pop: PoP,
        address: IPv4Address,
        path_rtt: float,
        size: int,
    ) -> None:
        probe = ProbeResult(
            source_pop=source.pop.code,
            destination_pop=target_pop.code,
            size_bytes=size,
            path_rtt=path_rtt,
            transfer=None,  # type: ignore[arg-type] - set immediately below
        )
        self._m_issued.inc()
        histogram = self._metrics.histogram(
            "probe_completion_time",
            bucket=rtt_bucket(path_rtt),
            size=f"{size // 1000}KB",
        )
        span = self._spans.begin(
            self._sim.now,
            f"probe {source.pop.code}->{target_pop.code} {size // 1000}KB",
            "probe",
            source.client.host.name,
            arm=self.arm,
            src_pop=source.pop.code,
            dst_pop=target_pop.code,
            size=size,
            client=str(source.client.host.address),
            dest=str(address),
            bucket=rtt_bucket(path_rtt),
        ) if self._obs_on else None

        def on_complete(result: TransferResult) -> None:
            if result.completed:
                histogram.observe(result.total_time, t=result.completed_at)
                if self._obs_on:
                    # SLO tap: fleet-wide completion latency, windowed by
                    # the probe_latency_p90 signal.
                    self._tsdb.record(
                        result.completed_at,
                        self._tsdb_source,
                        "probe_latency",
                        result.total_time,
                    )
            else:
                self._m_failed.inc()
            if span is not None:
                closing: dict[str, object] = {
                    "completed": result.completed,
                    "new_connection": result.new_connection,
                    "initial_cwnd": result.initial_cwnd,
                    "cwnd_source": result.cwnd_source,
                    "client_port": result.local_port,
                }
                if not result.completed:
                    closing["failed"] = result.failed_reason
                self._spans.end(span, self._sim.now, **closing)

        probe.transfer = source.client.fetch(address, size, on_complete=on_complete)
        self.results.append(probe)

    def _close_idle(self) -> None:
        for source in self._sources:
            source.client.close_idle_connections()

    # ------------------------------------------------------------------
    # analysis accessors
    # ------------------------------------------------------------------

    def completed_results(self, **filters) -> list[ProbeResult]:
        """Completed probes filtered by size / RTT bucket / source."""
        return filter_probe_results(self.results, **filters)

    def completion_times(self, **filters) -> list[float]:
        """Total transfer times of the matching completed probes."""
        return [probe.total_time for probe in self.completed_results(**filters)]

    def result_set(self) -> ProbeResultSet:
        """Detach the measurements into a picklable result set."""
        return ProbeResultSet(
            results=list(self.results), rounds_issued=self.rounds_issued
        )

    def __repr__(self) -> str:
        return (
            f"<ProbeFleet sources={len(self._sources)} targets={len(self._targets)} "
            f"results={len(self.results)}>"
        )
