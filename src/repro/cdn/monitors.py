"""Measurement instrumentation for the evaluation.

The paper's Figure 10/11 methodology: "we sample the sizes of outgoing
connections each minute using the ss tool.  We further consider only
connections that were created after Riptide was started."
:class:`CwndSampler` reproduces that sampler over any set of hosts.

:class:`TimelineSampler` is the Figure 7/8 companion: it snapshots each
agent's learned windows and installed-route count (plus the cluster-wide
active-fault gauge) into the run's :class:`~repro.obs.timeline.Timeline`
on a sim-time cadence, giving the report and the CSV export a
windows-over-time view.  It also feeds the windowed time-series store
(:mod:`repro.obs.tsdb`) with the SLO engine's sampler-side signals
(per-agent route staleness, cluster fault count), arm-qualified so a
serial two-arm capture never mixes arms.

:class:`SloEvaluator` drives :class:`~repro.obs.slo.SloEngine` on the
same deterministic cadence.  Both are read-only: enabling them never
perturbs protocol behaviour or the seeded random streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.linux.host import Host
from repro.obs.slo import SloEngine
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicProcess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cdn.cluster import CdnCluster


@dataclass(frozen=True)
class CwndSample:
    """One sampled congestion window."""

    time: float
    host_name: str
    remote_address: str
    cwnd: int
    bytes_acked: int


class CwndSampler:
    """Periodically snapshots congestion windows across hosts."""

    def __init__(
        self,
        sim: Simulator,
        hosts: list[Host],
        interval: float = 60.0,
        created_after: float | None = None,
        data_bearing_only: bool = True,
    ) -> None:
        if not hosts:
            raise ValueError("sampler needs at least one host")
        self._sim = sim
        self._hosts = list(hosts)
        self._created_after = created_after
        self._data_bearing_only = data_bearing_only
        self._process = PeriodicProcess(sim, interval, self._sample, name="cwnd-sampler")
        self.samples: list[CwndSample] = []

    @property
    def running(self) -> bool:
        return self._process.running

    def start(self, initial_delay: float | None = None) -> None:
        self._process.start(initial_delay=initial_delay)

    def stop(self) -> None:
        self._process.stop()

    def set_created_after(self, threshold: float) -> None:
        """Only sample connections created at or after ``threshold``."""
        self._created_after = threshold

    def cwnd_values(self) -> list[int]:
        """All sampled window sizes (the Figure 10/11 population)."""
        return [sample.cwnd for sample in self.samples]

    def _sample(self) -> None:
        now = self._sim.now
        for host in self._hosts:
            infos = host.ss.tcp_info(
                established_only=True,
                created_after=self._created_after,
            )
            for info in infos:
                if self._data_bearing_only and info.bytes_acked == 0:
                    continue
                self.samples.append(
                    CwndSample(
                        time=now,
                        host_name=host.name,
                        remote_address=str(info.remote_address),
                        cwnd=info.cwnd,
                        bytes_acked=info.bytes_acked,
                    )
                )

    def __repr__(self) -> str:
        return f"<CwndSampler hosts={len(self._hosts)} samples={len(self.samples)}>"


class TimelineSampler:
    """Periodically snapshots cluster state into the run's timeline.

    Per agent host: ``installed_routes`` (route-table size) and one
    ``learned_cwnd:<prefix>`` series per learned destination.  Cluster
    wide: ``faults_active`` (the fault injector's gauge).  Sampling only
    reads state, so enabling it never perturbs protocol behaviour or the
    seeded random streams — the per-run results stay identical.
    """

    def __init__(self, cluster: "CdnCluster", interval: float | None = None) -> None:
        if interval is None:
            interval = cluster.config.riptide.timeline_sample_interval
        self._cluster = cluster
        self._sim = cluster.sim
        self._timeline = cluster.sim.obs.timeline
        self._tsdb = cluster.sim.obs.tsdb
        label = cluster.config.label
        self._cluster_source = f"{label}:cluster" if label else "cluster"
        self._g_faults = cluster.sim.obs.metrics.gauge("faults_active")
        self._process = PeriodicProcess(
            cluster.sim, interval, self._sample, name="timeline-sampler"
        )

    @property
    def running(self) -> bool:
        return self._process.running

    def start(self, initial_delay: float | None = None) -> None:
        self._process.start(initial_delay=initial_delay)

    def stop(self) -> None:
        self._process.stop()

    def _sample(self) -> None:
        now = self._sim.now
        timeline = self._timeline
        tsdb = self._tsdb
        timeline.record(now, "cluster", "faults_active", self._g_faults.value)
        tsdb.record(now, self._cluster_source, "faults_active", self._g_faults.value)
        fluid = self._cluster.fluid
        if fluid is not None:
            timeline.record(now, "cluster", "fluid_flows_open", fluid.total_flows())
            timeline.record(now, "cluster", "fluid_mean_cwnd", fluid.mean_window())
        for agent in self._cluster.all_agents():
            host = agent.host
            timeline.record(
                now, host.name, "installed_routes", float(len(host.route_table))
            )
            entries = sorted(
                agent.learned_table().entries(),
                key=lambda entry: str(entry.destination),
            )
            # Route staleness: seconds since the least-recently refreshed
            # learned entry was updated (0 with an empty table) — the
            # "route_staleness" SLO's signal.
            staleness = 0.0
            for entry in entries:
                staleness = max(staleness, now - entry.updated_at)
                timeline.record(
                    now,
                    host.name,
                    f"learned_cwnd:{entry.destination}",
                    float(entry.window),
                )
            tsdb.record(now, host.name, "route_staleness", staleness)

    def __repr__(self) -> str:
        return (
            f"<TimelineSampler hosts={len(self._cluster.all_hosts())} "
            f"running={self.running}>"
        )


class SloEvaluator:
    """Drives an :class:`~repro.obs.slo.SloEngine` on a sim-time cadence.

    A read-only companion to :class:`TimelineSampler`: every ``interval``
    simulated seconds it asks the engine to re-derive burn rates from the
    windowed store and walk the alert lifecycle.  Protocol behaviour and
    the seeded random streams are untouched.
    """

    def __init__(
        self,
        cluster: "CdnCluster",
        engine: SloEngine,
        interval: float | None = None,
    ) -> None:
        if interval is None:
            interval = cluster.config.riptide.timeline_sample_interval
        self._sim = cluster.sim
        self.engine = engine
        self._process = PeriodicProcess(
            cluster.sim, interval, self._evaluate, name="slo-evaluator"
        )

    @property
    def running(self) -> bool:
        return self._process.running

    def start(self, initial_delay: float | None = None) -> None:
        self._process.start(initial_delay=initial_delay)

    def stop(self) -> None:
        self._process.stop()

    def _evaluate(self) -> None:
        self.engine.evaluate(self._sim.now)

    def __repr__(self) -> str:
        return (
            f"<SloEvaluator running={self.running} "
            f"specs={len(self.engine.specs)} rules={len(self.engine.rules)}>"
        )
