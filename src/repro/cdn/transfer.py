"""The inter-PoP transfer service: request/response over TCP.

Servers listen on a well-known port and answer ``("get", n)`` requests
with ``n`` bytes.  Clients manage a per-destination connection pool with
the semantics the paper's probes describe: *"If there is an existing and
idle connection ... the connection is reused, otherwise a new connection
is made."*
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.linux.host import Host
from repro.net.addresses import IPv4Address
from repro.tcp.socket import TcpSocket

#: Well-known port of the transfer service.
TRANSFER_PORT = 8080

#: Wire size charged for a request message.
REQUEST_BYTES = 200

#: The paper's RTT buckets for Figures 12-14 (upper bounds, seconds).
RTT_BUCKETS = (
    ("<50ms", 0.050),
    ("51-100ms", 0.100),
    ("101-150ms", 0.150),
    (">150ms", float("inf")),
)


def rtt_bucket(rtt: float) -> str:
    """The Figure 12-14 bucket label for a path RTT."""
    for label, upper in RTT_BUCKETS:
        if rtt <= upper:
            return label
    raise AssertionError("unreachable: last bucket is unbounded")


_transfer_ids = itertools.count(1)


@dataclass
class TransferResult:
    """Outcome of one transfer (one probe, one organic fetch)."""

    transfer_id: int
    destination: IPv4Address
    size_bytes: int
    started_at: float
    established_at: float | None = None
    completed_at: float | None = None
    failed_reason: str | None = None
    new_connection: bool = True
    initial_cwnd: int = 0
    #: Client-side ephemeral port and initcwnd provenance of the
    #: connection that carried this transfer — the join keys the
    #: attribution report uses to find the matching flow records.
    local_port: int = 0
    cwnd_source: str = "default"

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def total_time(self) -> float:
        """Wall time from request issue (incl. any handshake) to last byte."""
        if self.completed_at is None:
            raise ValueError(f"transfer #{self.transfer_id} did not complete")
        return self.completed_at - self.started_at


class TransferServer:
    """The serving side: listens and answers get-requests."""

    def __init__(self, host: Host, port: int = TRANSFER_PORT) -> None:
        self.host = host
        self.port = port
        self.requests_served = 0
        self.bytes_served = 0
        host.listen(port, on_accept=self._on_accept)

    def _on_accept(self, sock: TcpSocket) -> None:
        sock.on_message = self._on_message
        sock.close_on_peer_fin = True

    def _on_message(self, sock: TcpSocket, payload: Any, size: int) -> None:
        if not (isinstance(payload, tuple) and len(payload) == 3 and payload[0] == "get"):
            return
        _, transfer_id, response_bytes = payload
        self.requests_served += 1
        self.bytes_served += response_bytes
        sock.send_message(("data", transfer_id, response_bytes), response_bytes)

    def __repr__(self) -> str:
        return f"<TransferServer {self.host.address}:{self.port} served={self.requests_served}>"


@dataclass
class _PooledConnection:
    socket: TcpSocket
    busy: bool = False
    pending: "list[tuple[TransferResult, Callable | None]]" = field(default_factory=list)


class TransferClient:
    """The requesting side: a connection pool plus fetch API."""

    def __init__(self, host: Host, port: int = TRANSFER_PORT) -> None:
        self.host = host
        self.port = port
        self._pool: dict[IPv4Address, list[_PooledConnection]] = {}
        self._inflight: dict[int, tuple[TransferResult, Callable | None, _PooledConnection]] = {}
        self.transfers_started = 0
        self.transfers_completed = 0
        self.transfers_failed = 0
        self.connections_opened = 0
        self.connections_reused = 0
        self._metrics = host.sim.obs.metrics
        self._m_opened = self._metrics.counter("transfer_connections_opened")
        self._m_reused = self._metrics.counter("transfer_connections_reused")
        self._m_completed = self._metrics.counter("transfer_completions")
        self._m_failed = self._metrics.counter("transfer_failures")

    def fetch(
        self,
        destination: "IPv4Address | str",
        size_bytes: int,
        on_complete: Callable[[TransferResult], None] | None = None,
    ) -> TransferResult:
        """Request ``size_bytes`` from ``destination``.

        Reuses an idle pooled connection when one exists; otherwise opens
        a new one (paying the handshake RTT, and starting from whatever
        initcwnd the destination's route table prescribes for us).
        """
        destination = IPv4Address(destination)
        transfer_id = next(_transfer_ids)
        result = TransferResult(
            transfer_id=transfer_id,
            destination=destination,
            size_bytes=size_bytes,
            started_at=self.host.sim.now,
        )
        self.transfers_started += 1

        conn = self._idle_connection(destination)
        if conn is not None:
            result.new_connection = False
            result.established_at = result.started_at
            result.initial_cwnd = conn.socket.cc.initial_cwnd
            result.local_port = conn.socket.local_port
            result.cwnd_source = conn.socket.cwnd_source
            self.connections_reused += 1
            self._m_reused.inc()
            self._issue(conn, result, on_complete)
        else:
            self._open_and_issue(destination, result, on_complete)
        return result

    def close_idle_connections(
        self,
        destination: "IPv4Address | None" = None,
        probability: float = 1.0,
        rng=None,
    ) -> int:
        """Close idle pooled connections (all destinations by default).

        ``probability`` < 1 closes each idle connection independently at
        that rate (connection churn); pass an ``rng`` for reproducibility.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if probability < 1.0 and rng is None:
            raise ValueError("probabilistic close requires an rng")
        closed = 0
        targets = (
            [IPv4Address(destination)] if destination is not None else list(self._pool)
        )
        for dest in targets:
            for conn in list(self._pool.get(dest, [])):
                if not conn.busy and conn.socket.is_established:
                    if probability < 1.0 and rng.random() >= probability:
                        continue
                    conn.socket.close()
                    closed += 1
        return closed

    def pool_size(self, destination: "IPv4Address | str") -> int:
        return len(self._pool.get(IPv4Address(destination), []))

    # ------------------------------------------------------------------

    def _idle_connection(self, destination: IPv4Address) -> _PooledConnection | None:
        for conn in self._pool.get(destination, []):
            if not conn.busy and conn.socket.is_idle:
                return conn
        return None

    def _open_and_issue(
        self,
        destination: IPv4Address,
        result: TransferResult,
        on_complete: Callable[[TransferResult], None] | None,
    ) -> None:
        conn = _PooledConnection(socket=None)  # type: ignore[arg-type]
        self.connections_opened += 1
        self._m_opened.inc()

        def on_established(sock: TcpSocket) -> None:
            result.established_at = self.host.sim.now
            result.initial_cwnd = sock.cc.initial_cwnd
            result.local_port = sock.local_port
            result.cwnd_source = sock.cwnd_source
            self._issue(conn, result, on_complete)

        sock = self.host.connect(
            destination,
            self.port,
            on_established=on_established,
            on_message=self._on_message,
            on_closed=self._on_closed,
            on_error=self._on_error,
        )
        conn.socket = sock
        self._pool.setdefault(destination, []).append(conn)

    def _issue(
        self,
        conn: _PooledConnection,
        result: TransferResult,
        on_complete: Callable[[TransferResult], None] | None,
    ) -> None:
        conn.busy = True
        self._inflight[result.transfer_id] = (result, on_complete, conn)
        conn.socket.send_message(
            ("get", result.transfer_id, result.size_bytes), REQUEST_BYTES
        )

    def _on_message(self, sock: TcpSocket, payload: Any, size: int) -> None:
        if not (isinstance(payload, tuple) and len(payload) == 3 and payload[0] == "data"):
            return
        _, transfer_id, _ = payload
        entry = self._inflight.pop(transfer_id, None)
        if entry is None:
            return
        result, on_complete, conn = entry
        result.completed_at = self.host.sim.now
        conn.busy = False
        self.transfers_completed += 1
        self._m_completed.inc()
        # Completion-time histogram, bucketed by the connection's measured
        # RTT (the Figure 12-14 axis).  srtt is set by the time any
        # response has arrived.
        srtt = conn.socket.srtt
        bucket = rtt_bucket(srtt) if srtt is not None else "unknown"
        self._metrics.histogram("transfer_completion_time", bucket=bucket).observe(
            result.total_time, t=result.completed_at
        )
        if on_complete is not None:
            on_complete(result)

    def _on_closed(self, sock: TcpSocket) -> None:
        self._drop_socket(sock, reason=None)

    def _on_error(self, sock: TcpSocket, reason: str) -> None:
        self._drop_socket(sock, reason=reason)

    def _drop_socket(self, sock: TcpSocket, reason: str | None) -> None:
        conns = self._pool.get(sock.remote_address, [])
        for conn in list(conns):
            if conn.socket is sock:
                conns.remove(conn)
        # Fail any transfer that was in flight on this socket.
        for transfer_id, (result, on_complete, conn) in list(self._inflight.items()):
            if conn.socket is sock:
                del self._inflight[transfer_id]
                result.failed_reason = reason or "connection closed"
                self.transfers_failed += 1
                self._m_failed.inc()
                if on_complete is not None:
                    on_complete(result)

    def __repr__(self) -> str:
        return (
            f"<TransferClient {self.host.address} started={self.transfers_started} "
            f"completed={self.transfers_completed}>"
        )
