"""Geography: great-circle distances and RTT synthesis.

The paper's Figure 5 shows the RTT distribution between its globally
deployed datacenters (median above 125 ms).  We reproduce that
distribution from first principles: PoPs get real city coordinates,
distances come from the haversine formula, and RTTs follow from the speed
of light in fibre times a route-inflation factor (real paths are not
great circles; published measurements put inflation around 1.5-2.5x).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Speed of light in fibre, km/s (roughly 2/3 of c).
FIBRE_KM_PER_SECOND = 200_000.0

#: Default path-inflation factor over the great circle.  Calibrated so
#: the 34-PoP topology satisfies both Figure 5 (median pairwise RTT just
#: above 125 ms) and Figure 6 (median IW10 penalty above 280 ms).
DEFAULT_PATH_INFLATION = 1.65

#: Floor for very close PoPs (metro interconnect, equipment latency).
MIN_RTT_SECONDS = 0.002


@dataclass(frozen=True)
class GeoPoint:
    """A latitude/longitude pair in degrees."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * (
        math.sin(dlon / 2.0) ** 2
    )
    earth_radius_km = 6371.0
    return 2.0 * earth_radius_km * math.asin(math.sqrt(h))


def rtt_between(
    a: GeoPoint,
    b: GeoPoint,
    inflation: float = DEFAULT_PATH_INFLATION,
    min_rtt: float = MIN_RTT_SECONDS,
) -> float:
    """Round-trip time in seconds between two locations.

    ``distance * inflation`` out and back at fibre speed, floored at
    ``min_rtt`` for co-located or metro-distance pairs.
    """
    if inflation <= 0:
        raise ValueError(f"inflation must be positive, got {inflation}")
    distance_km = haversine_km(a, b)
    one_way = distance_km * inflation / FIBRE_KM_PER_SECOND
    return max(2.0 * one_way, min_rtt)
