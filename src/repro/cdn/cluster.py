"""Cluster assembly: topology + fabric + hosts + services + Riptide.

:class:`CdnCluster` turns a :class:`~repro.cdn.topology.Topology` into a
running deployment: one network zone and trunk mesh, ``server_count``
hosts per PoP each running a transfer server, a transfer client and
(optionally) a Riptide agent — the full system the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cdn.filesizes import FileSizeDistribution
from repro.cdn.fluidtraffic import FluidTraffic
from repro.cdn.monitors import CwndSampler, SloEvaluator, TimelineSampler
from repro.cdn.pop import PoP
from repro.cdn.probes import ProbeFleet
from repro.cdn.topology import Topology
from repro.cdn.transfer import TransferClient, TransferServer
from repro.cdn.workload import OrganicWorkload, OrganicWorkloadConfig
from repro.core.agent import RiptideAgent
from repro.core.config import RiptideConfig
from repro.linux.host import Host
from repro.net.addresses import IPv4Address
from repro.net.loss import BernoulliLoss, LossModel, NoLoss
from repro.net.network import Network, PathSpec
from repro.obs import Auditor, Instrumentation
from repro.obs.slo import BurnRateRule, SloEngine, SloSpec
from repro.sim.fluid import FluidConfig
from repro.sim.kernel import Simulator
from repro.sim.rand import RandomStreams
from repro.tcp.constants import TcpConfig


@dataclass(frozen=True)
class ClusterConfig:
    """Deployment-wide parameters."""

    seed: int = 42
    #: Optional deployment tag ("control"/"riptide" in paired studies).
    #: Prefixes host names (``label:CODE-i``) so flow records and spans
    #: from two same-topology clusters under one capture stay separable.
    label: str = ""
    #: Trunk bandwidth between PoPs ("well provisioned links").
    bandwidth_bps: float = 1e9
    queue_limit_packets: int = 2048
    #: Light random WAN loss on every trunk.
    loss_probability: float = 0.0001
    #: Host TCP configuration.  The deployment raises the default initial
    #: receive window so it covers Riptide's c_max (Section III-C).
    tcp: TcpConfig = field(
        default_factory=lambda: TcpConfig(default_initrwnd=300)
    )
    #: Riptide configuration for agents (agents are created per host but
    #: only start when :meth:`CdnCluster.start_riptide` is called).
    riptide: RiptideConfig = field(default_factory=RiptideConfig)


@dataclass
class _PopDeployment:
    pop: PoP
    hosts: list[Host]
    servers: list[TransferServer]
    clients: list[TransferClient]
    agents: list[RiptideAgent]
    auditors: list[Auditor]


class CdnCluster:
    """A running CDN deployment on one simulator."""

    def __init__(
        self,
        topology: Topology,
        config: ClusterConfig | None = None,
    ) -> None:
        self.topology = topology
        self.config = config if config is not None else ClusterConfig()
        self.sim = Simulator()
        self.streams = RandomStreams(self.config.seed)
        self.network = Network(self.sim, self.streams)
        self._pops: dict[str, _PopDeployment] = {}
        self._workloads: list[OrganicWorkload] = []
        self._fluid: FluidTraffic | None = None
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        for pop in self.topology.pops:
            self.network.add_zone(pop.prefix)
        for a, b in self.topology.pairs():
            rtt = self.topology.rtt(a, b)
            self.network.connect_zones(
                a.prefix,
                b.prefix,
                PathSpec(
                    bandwidth_bps=self.config.bandwidth_bps,
                    propagation_delay=rtt / 2.0,
                    queue_limit_packets=self.config.queue_limit_packets,
                    loss_model=self._loss_model(),
                ),
            )
        for pop in self.topology.pops:
            self._deploy_pop(pop)

    def _loss_model(self) -> LossModel:
        if self.config.loss_probability <= 0.0:
            return NoLoss()
        return BernoulliLoss(self.config.loss_probability)

    def _deploy_pop(self, pop: PoP) -> None:
        hosts, servers, clients, agents, auditors = [], [], [], [], []
        label = self.config.label
        for index, address in enumerate(pop.server_addresses()):
            name = f"{pop.code}-{index}"
            host = Host(
                self.sim,
                self.network,
                address,
                config=self.config.tcp,
                name=f"{label}:{name}" if label else name,
            )
            hosts.append(host)
            servers.append(TransferServer(host))
            clients.append(TransferClient(host))
            agent = RiptideAgent(host, self.config.riptide)
            # Every agent audits its learned table against the route table
            # at the start of each poll tick (see repro.obs.audit).
            auditor = Auditor(agent)
            agent.attach_auditor(auditor)
            agents.append(agent)
            auditors.append(auditor)
        self._pops[pop.code] = _PopDeployment(
            pop, hosts, servers, clients, agents, auditors
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def pop_codes(self) -> list[str]:
        return list(self._pops)

    def pop(self, code: str) -> PoP:
        return self._deployment(code).pop

    def hosts(self, code: str) -> list[Host]:
        return self._deployment(code).hosts

    def all_hosts(self) -> list[Host]:
        return [host for dep in self._pops.values() for host in dep.hosts]

    def client(self, code: str, index: int = 0) -> TransferClient:
        return self._deployment(code).clients[index]

    def agents(self, code: str) -> list[RiptideAgent]:
        return self._deployment(code).agents

    def all_agents(self) -> list[RiptideAgent]:
        return [agent for dep in self._pops.values() for agent in dep.agents]

    def all_auditors(self) -> list[Auditor]:
        return [auditor for dep in self._pops.values() for auditor in dep.auditors]

    @property
    def instrumentation(self) -> Instrumentation:
        """This deployment's metrics registry and trace log."""
        return self.sim.obs

    def server_address(self, code: str, index: int = 0) -> IPv4Address:
        return self._deployment(code).pop.server_addresses()[index]

    def _deployment(self, code: str) -> _PopDeployment:
        try:
            return self._pops[code]
        except KeyError:
            raise KeyError(f"no PoP {code!r} in this cluster") from None

    # ------------------------------------------------------------------
    # Riptide control
    # ------------------------------------------------------------------

    def start_riptide(self, pop_codes: list[str] | None = None) -> float:
        """Start agents (all PoPs by default).  Returns the start time —
        pass it to samplers as ``created_after`` per the paper's method."""
        started_at = self.sim.now
        for code in pop_codes if pop_codes is not None else self.pop_codes:
            for agent in self._deployment(code).agents:
                agent.start()
        return started_at

    def stop_riptide(self) -> None:
        for agent in self.all_agents():
            if agent.running:
                agent.stop()

    # ------------------------------------------------------------------
    # workloads and measurement
    # ------------------------------------------------------------------

    def add_organic_workload(
        self,
        source_pop: str,
        destination_pops: list[str],
        workload_config: OrganicWorkloadConfig | None = None,
        sizes: FileSizeDistribution | None = None,
        host_index: int = 0,
    ) -> OrganicWorkload:
        """Attach (and start) organic traffic from one host of a PoP."""
        deployment = self._deployment(source_pop)
        destinations = []
        for code in destination_pops:
            if code == source_pop:
                continue
            destinations.extend(
                self._deployment(code).pop.server_addresses()
            )
        workload = OrganicWorkload(
            sim=self.sim,
            client=deployment.clients[host_index],
            destinations=destinations,
            sizes=sizes if sizes is not None else FileSizeDistribution.production_cdn(),
            rng=self.streams.stream(f"organic:{source_pop}:{host_index}"),
            config=workload_config,
            name=f"organic:{source_pop}",
        )
        workload.start()
        self._workloads.append(workload)
        return workload

    @property
    def fluid(self) -> FluidTraffic | None:
        """The mean-field background engine, if one was attached."""
        return self._fluid

    def fluid_traffic(self, config: FluidConfig | None = None) -> FluidTraffic:
        """The cluster's fluid engine, created (and started) on first use."""
        if self._fluid is None:
            self._fluid = FluidTraffic(self.sim, self.network, config)
            self._fluid.start()
        return self._fluid

    def add_fluid_traffic(
        self,
        source_pop: str,
        destination_pops: list[str],
        flows_per_destination: float,
        growth_segments_per_sec: float | None = None,
        send_segments_per_flow_per_sec: float | None = None,
        churn_per_flow_per_sec: float = 0.0,
        host_index: int = 0,
        is_client: bool = False,
        config: FluidConfig | None = None,
    ) -> FluidTraffic:
        """Attach mean-field background cohorts from one host of a PoP.

        The hybrid-mode sibling of :meth:`add_organic_workload`: one
        :class:`~repro.sim.fluid.FluidPopulation` per destination PoP
        (``flows_per_destination`` open flows each) registers on the
        host, shows up in its ``ss`` polls, and presses on the trunks
        its traffic crosses.  Register *after* ``start_riptide`` when a
        no-churn cohort must pass the sampler's created-after filter.
        """
        engine = self.fluid_traffic(config)
        deployment = self._deployment(source_pop)
        host = deployment.hosts[host_index]
        for code in destination_pops:
            if code == source_pop:
                continue
            engine.add_population(
                host,
                self.server_address(code),
                target_flows=flows_per_destination,
                growth_segments_per_sec=growth_segments_per_sec,
                send_segments_per_flow_per_sec=send_segments_per_flow_per_sec,
                churn_per_flow_per_sec=churn_per_flow_per_sec,
                is_client=is_client,
            )
        return engine

    def make_probe_fleet(
        self,
        source_pops: list[str],
        target_pops: list[str] | None = None,
        interval: float = 10.0,
        sizes: tuple[int, ...] | None = None,
        host_indices: list[int] | None = None,
        close_before_round: bool = False,
        churn_probability: float = 0.0,
    ) -> ProbeFleet:
        """Build the Section IV-A probe infrastructure.

        Sources are the hosts at ``host_indices`` (default: host 0) in
        each listed PoP; targets default to every PoP in the cluster
        (one server each).
        """
        def rtt_lookup(src_code: str, dst_code: str) -> float:
            return self.topology.rtt(self.pop(src_code), self.pop(dst_code))

        kwargs = {} if sizes is None else {"sizes": sizes}
        fleet = ProbeFleet(
            self.sim,
            rtt_lookup,
            interval=interval,
            close_before_round=close_before_round,
            churn_probability=churn_probability,
            rng=self.streams.stream("probe-churn"),
            arm=self.config.label,
            **kwargs,
        )
        for code in source_pops:
            deployment = self._deployment(code)
            for index in host_indices if host_indices is not None else [0]:
                fleet.add_source(deployment.pop, deployment.clients[index])
        for code in target_pops if target_pops is not None else self.pop_codes:
            fleet.add_target(self.pop(code), self.server_address(code))
        return fleet

    def make_cwnd_sampler(
        self,
        interval: float = 60.0,
        created_after: float | None = None,
        pop_codes: list[str] | None = None,
    ) -> CwndSampler:
        """The Figure 10/11 per-minute window sampler."""
        hosts = (
            self.all_hosts()
            if pop_codes is None
            else [h for code in pop_codes for h in self.hosts(code)]
        )
        return CwndSampler(
            self.sim, hosts, interval=interval, created_after=created_after
        )

    def start_timeline_sampler(
        self, interval: float | None = None
    ) -> "TimelineSampler | None":
        """Start the Figure 7/8 timeline sampler (no-op when obs is off).

        The cadence defaults to ``riptide.timeline_sample_interval`` so
        experiments align sampling and SLO windows from one config knob.
        """
        if not self.sim.obs.enabled:
            return None
        sampler = TimelineSampler(self, interval=interval)
        sampler.start(initial_delay=0.0)
        return sampler

    def start_slo(
        self,
        specs: "tuple[SloSpec, ...] | None" = None,
        rules: "tuple[BurnRateRule, ...] | None" = None,
        interval: float | None = None,
    ) -> "SloEvaluator | None":
        """Start the burn-rate SLO engine (no-op when obs is off).

        Builds an :class:`~repro.obs.slo.SloEngine` over this run's
        windowed store, scoped to this cluster's arm label, and evaluates
        it on the timeline-sampler cadence (overridable via ``interval``).
        """
        if not self.sim.obs.enabled:
            return None
        obs = self.sim.obs
        engine = SloEngine(
            obs.tsdb,
            obs.metrics,
            obs.trace,
            obs.spans,
            obs.alerts,
            specs=specs,
            rules=rules,
            arm=self.config.label,
        )
        evaluator = SloEvaluator(self, engine, interval=interval)
        evaluator.start(initial_delay=0.0)
        return evaluator

    def sync_flows(self) -> None:
        """Flush live socket counters into their flow records.

        Teardown does this for closed connections; call this at the end
        of a run so flows still open report counters as of the final
        instant instead of zeros.
        """
        for host in self.all_hosts():
            for sock in host.sockets():
                sock.sync_flow()

    def run(self, duration: float) -> float:
        """Advance the whole deployment by ``duration`` simulated seconds."""
        return self.sim.run(until=self.sim.now + duration)

    def __repr__(self) -> str:
        return (
            f"<CdnCluster pops={len(self._pops)} "
            f"hosts={sum(len(d.hosts) for d in self._pops.values())} "
            f"t={self.sim.now:.1f}s>"
        )


def with_riptide_config(config: ClusterConfig, **overrides) -> ClusterConfig:
    """A copy of ``config`` with fields of its Riptide config replaced."""
    return replace(config, riptide=replace(config.riptide, **overrides))
