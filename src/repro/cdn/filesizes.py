"""The production file-size distribution (Figure 2).

The paper reports that 54 % of files on the production CDN exceed the
15 KB that fit in the default 10-segment initial window, and Figure 3
implies two further CDF anchors: with an initial window of 50 segments
roughly 31 % *more* files complete in one RTT, and with 100 segments all
but ~15 % do.  A single log-normal hits all three anchors:

    P(size <= 15 KB)  ~ 0.46          (54 % larger than IW10)
    P(size <= 73 KB)  ~ 0.77          (+31 % at IW50)
    P(size <= 146 KB) ~ 0.85          (15 % larger than IW100)

Solving the first and third for the log-normal parameters gives
``mu = 9.817`` (median ~18.3 KB) and ``sigma = 2.002``; the middle anchor
then lands at 0.755, within ~1.5 % of the paper.  Sizes are clamped to a
realistic CDN object range.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from statistics import NormalDist

_STANDARD_NORMAL = NormalDist()

#: Calibrated against the Figure 2/3 anchors (see module docstring).
PAPER_MU = 9.817
PAPER_SIGMA = 2.002

#: Clamp bounds for sampled object sizes.
MIN_OBJECT_BYTES = 100
MAX_OBJECT_BYTES = 2 * 1024**3


@dataclass(frozen=True)
class FileSizeDistribution:
    """A clamped log-normal over object sizes in bytes."""

    mu: float = PAPER_MU
    sigma: float = PAPER_SIGMA
    min_bytes: int = MIN_OBJECT_BYTES
    max_bytes: int = MAX_OBJECT_BYTES

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if not 0 < self.min_bytes < self.max_bytes:
            raise ValueError("require 0 < min_bytes < max_bytes")

    @classmethod
    def production_cdn(cls) -> "FileSizeDistribution":
        """The distribution calibrated to the paper's Figure 2."""
        return cls()

    @property
    def median_bytes(self) -> float:
        return math.exp(self.mu)

    def sample(self, rng: random.Random) -> int:
        """Draw one object size."""
        size = rng.lognormvariate(self.mu, self.sigma)
        return int(min(max(size, self.min_bytes), self.max_bytes))

    def sample_many(self, rng: random.Random, count: int) -> list[int]:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.sample(rng) for _ in range(count)]

    def cdf(self, size_bytes: float) -> float:
        """P(object size <= size_bytes) for the unclamped log-normal."""
        if size_bytes <= 0:
            return 0.0
        z = (math.log(size_bytes) - self.mu) / self.sigma
        return _STANDARD_NORMAL.cdf(z)

    def quantile(self, p: float) -> float:
        """The size at CDF value ``p`` (0 < p < 1)."""
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        z = _STANDARD_NORMAL.inv_cdf(p)
        return math.exp(self.mu + self.sigma * z)

    def fraction_exceeding(self, size_bytes: float) -> float:
        """P(object size > size_bytes) — e.g. the paper's 54 % above 15 KB."""
        return 1.0 - self.cdf(size_bytes)
