"""Deterministic discrete-event simulation kernel.

This package provides the execution substrate for every other subsystem in
the reproduction: a simulation clock, an event heap with stable ordering,
periodic-process helpers, and named seeded random streams so that every
experiment is reproducible from a single integer seed.
"""

from repro.sim.errors import SchedulingError, SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.fluid import CwndDistribution, FluidConfig, FluidPopulation
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rand import RandomStreams

__all__ = [
    "CwndDistribution",
    "Event",
    "EventQueue",
    "FluidConfig",
    "FluidPopulation",
    "PeriodicProcess",
    "RandomStreams",
    "SchedulingError",
    "SimulationError",
    "Simulator",
]
