"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled at an invalid time.

    The kernel refuses to schedule events in the past: doing so would
    silently violate causality and make results depend on handler order.
    """
