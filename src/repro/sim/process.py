"""Periodic processes.

Riptide itself, the ``ss`` samplers, and the workload generators are all
"every N seconds" loops.  :class:`PeriodicProcess` packages that pattern:
a tick callback re-scheduled at a fixed interval until stopped.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.sim.errors import SchedulingError
from repro.sim.events import Event
from repro.sim.kernel import Simulator


class PeriodicProcess:
    """Invoke a callback every ``interval`` seconds of simulated time.

    The first tick fires ``initial_delay`` seconds after :meth:`start`
    (default: one full interval).  The callback may call :meth:`stop` to
    terminate the loop from inside a tick.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        name: str = "periodic",
    ) -> None:
        if interval <= 0:
            raise SchedulingError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._name = name
        self._pending: Event | None = None
        self._ticks = 0
        self._jitter: Callable[[], float] | None = None

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def running(self) -> bool:
        return self._pending is not None

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    def start(self, initial_delay: float | None = None) -> None:
        """Begin ticking.  No-op if already running."""
        if self._pending is not None:
            return
        delay = self._interval if initial_delay is None else initial_delay
        self._pending = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Stop ticking.  Safe to call from inside the callback."""
        if self._pending is not None:
            self._sim.cancel(self._pending)
            self._pending = None

    def set_jitter(self, jitter: Callable[[], float] | None) -> None:
        """Add ``jitter()`` seconds to every subsequent re-arm delay.

        Models a loaded host whose "every N seconds" loop drifts (the
        fault-injection poll-jitter schedule).  The callable is invoked
        once per tick; negative returns are clamped so the loop never
        schedules into the past.  Pass ``None`` to restore exact ticks.
        """
        self._jitter = jitter

    def _tick(self) -> None:
        # Re-arm before invoking the callback so that a callback calling
        # stop() cancels the *next* tick rather than racing with it.
        delay = self._interval
        if self._jitter is not None:
            delay = max(0.0, delay + self._jitter())
        self._pending = self._sim.schedule(delay, self._tick)
        self._ticks += 1
        self._callback()

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"<PeriodicProcess {self._name!r} every {self._interval}s {state}>"
