"""Events and the event queue.

Events are ordered by ``(time, sequence_number)``.  The sequence number is a
monotonically increasing tie-breaker: two events scheduled for the same
instant fire in the order they were scheduled, which keeps simulations
deterministic regardless of heap internals.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any


class Event:
    """A single scheduled callback.

    Instances are handles: holding one allows the owner to :meth:`cancel`
    the event before it fires.  Cancelled events stay in the heap (removal
    from the middle of a heap is O(n)) and are skipped on pop.  ``fired``
    marks an event that was already popped for execution, so a late
    ``cancel()`` on a stale handle cannot corrupt the live-event count.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} seq={self.seq} {name}{state}>"


class EventQueue:
    """A min-heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)
        self._live += 1

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`IndexError` when no live events remain.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            event = pop(heap)
            if event.cancelled:
                continue
            event.fired = True
            self._live -= 1
            return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> float:
        """Return the firing time of the earliest live event.

        Raises :class:`IndexError` when no live events remain.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            raise IndexError("peek on empty event queue")
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Record that one live event in the heap was cancelled.

        Called by the kernel so ``len(queue)`` stays an accurate count of
        events that will actually fire.
        """
        if self._live > 0:
            self._live -= 1
