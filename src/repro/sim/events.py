"""Events and the event queue.

Events are ordered by ``(time, sequence_number)``.  The sequence number is a
monotonically increasing tie-breaker: two events scheduled for the same
instant fire in the order they were scheduled, which keeps simulations
deterministic regardless of heap internals.

The queue is an array-backed binary heap of *key-based entries* — plain
``(time, seq, event, callback, args)`` tuples — rather than a heap of
:class:`Event` objects.  Tuple entries are compared element-wise in C on
``(time, seq)`` (``seq`` is unique per simulator, so comparison never
reaches the payload slots), where a heap of ``Event`` objects would call
``Event.__lt__`` per comparison and allocate two key tuples per call.
Carrying ``callback``/``args`` in the entry lets the kernel's run loop
dispatch without touching the ``Event`` handle at all; the ``event`` slot
is ``None`` for handle-free entries (:meth:`EventQueue.push_entry`), the
fast path used by fire-and-forget timers that are never cancelled.

Cancellation stays lazy — a cancelled event's entry remains in the heap as
a *tombstone* and is skipped on pop — but the queue now counts tombstones
and compacts the heap in place once they pass
:data:`EventQueue.COMPACT_MIN_TOMBSTONES` **and** outnumber half the heap.
Cancel-heavy workloads (a TCP socket re-arms its RTO on every ACK) would
otherwise grow the heap without bound between pops.  Compaction rebuilds
the same list object (``heap[:] = ...``) so a run loop holding a reference
to the heap stays valid across a mid-callback cancel burst.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any

#: A heap entry: ``(time, seq, event-or-None, callback, args)``.  The
#: ``event`` slot is ``None`` for handle-free entries, which cannot be
#: cancelled and therefore need no tombstone check on pop.
Entry = tuple[float, int, "Event | None", Callable[..., None], tuple[Any, ...]]


class Event:
    """A single scheduled callback.

    Instances are handles: holding one allows the owner to :meth:`cancel`
    the event before it fires.  Cancelled events stay in the heap (removal
    from the middle of a heap is O(n)) and are skipped on pop.  ``fired``
    marks an event that was already popped for execution, so a late
    ``cancel()`` on a stale handle cannot corrupt the live-event count.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} seq={self.seq} {name}{state}>"


class EventQueue:
    """An array-backed min-heap of key-ordered entries with lazy
    cancellation and tombstone compaction.

    ``len(queue)`` counts *live* events only: entries in the heap minus
    recorded tombstones.  The kernel's run loop reaches into ``_heap`` and
    ``_tombstones`` directly (they are kernel-private, enforced by lint
    rule SIM001); everything else goes through the methods below.
    """

    #: Compact only once this many tombstones have accumulated — below
    #: this the rebuild costs more than the dead entries do.
    COMPACT_MIN_TOMBSTONES = 64

    __slots__ = ("_heap", "_tombstones")

    def __init__(self) -> None:
        self._heap: list[Entry] = []
        #: Cancelled-but-not-yet-popped entries still sitting in the heap.
        self._tombstones = 0

    def __len__(self) -> int:
        return len(self._heap) - self._tombstones

    def __bool__(self) -> bool:
        return len(self._heap) > self._tombstones

    def push(self, event: Event) -> None:
        """Insert an event that has a live, cancellable handle."""
        heapq.heappush(
            self._heap, (event.time, event.seq, event, event.callback, event.args)
        )

    def push_entry(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        """Insert a handle-free entry (fire-and-forget, never cancelled).

        Skips the :class:`Event` allocation entirely — the fast path for
        hot timers that no caller ever holds onto, such as a link's
        serialization and propagation timers.
        """
        heapq.heappush(self._heap, (time, seq, None, callback, args))

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Handle-free entries are materialized into an :class:`Event` on the
        way out so the return type is uniform; the kernel's run loop
        bypasses this method and dispatches straight from the entry.

        Raises :class:`IndexError` when no live events remain.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, seq, event, callback, args = pop(heap)
            if event is None:
                event = Event(time, seq, callback, args)
            elif event.cancelled:
                self._tombstones -= 1
                continue
            event.fired = True
            return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> float:
        """Return the firing time of the earliest live event.

        Raises :class:`IndexError` when no live events remain.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
                self._tombstones -= 1
                continue
            return head[0]
        raise IndexError("peek on empty event queue")

    def note_cancelled(self) -> None:
        """Record that one live event in the heap was cancelled.

        Called by the kernel so ``len(queue)`` stays an accurate count of
        events that will actually fire.  When tombstones pass the
        compaction threshold *and* make up at least half the heap, the
        heap is rebuilt in place without them — rebinding is avoided so a
        run loop holding the heap list stays coherent.
        """
        tombstones = self._tombstones + 1
        heap = self._heap
        if (
            tombstones >= self.COMPACT_MIN_TOMBSTONES
            and tombstones * 2 >= len(heap)
        ):
            heap[:] = [
                entry
                for entry in heap
                if entry[2] is None or not entry[2].cancelled
            ]
            heapq.heapify(heap)
            self._tombstones = 0
        else:
            self._tombstones = tombstones

    @property
    def tombstones(self) -> int:
        """Cancelled entries currently awaiting compaction (diagnostic)."""
        return self._tombstones

    @property
    def heap_size(self) -> int:
        """Physical heap length including tombstones (diagnostic)."""
        return len(self._heap)
