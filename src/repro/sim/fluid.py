"""Mean-field fluid model of a background TCP population.

Riptide's learning loop only ever consumes *aggregates*: the per-poll
mean congestion window toward each destination, the retransmit fraction
the safety guard watches, the smoothed RTT.  None of those need every
background flow simulated packet by packet — following McDonald &
Reynier's mean-field analysis of many TCP connections through a shared
buffer, the *distribution* of congestion windows in a large population
can be evolved analytically instead.

:class:`CwndDistribution` is that state: a discretized histogram of
expected flow counts per congestion-window bin.  One coarse step applies

* **additive drift** — every surviving flow's window grows at a
  configurable rate (1 segment per RTT for canonical AIMD; workload
  harnesses derive the rate from their fetch schedule instead),
* **loss-driven halving** — each flow sees loss events at rate
  ``p * w / rtt`` (windows send proportionally more packets, so large
  windows are hit proportionally more often); the lost fraction of each
  bin moves to the ``w/2`` bin, and
* **a cap** — mass cannot drift past the top bin (the receive-window
  clamp a real peer would impose).

:class:`FluidPopulation` wraps one distribution with connection churn
(departures at a per-flow rate, arrivals re-entering at the *currently
routed* initial window, which is how a Riptide-installed route feeds
back into the fluid cohort) and the cumulative counters — segments
sent, segments retransmitted, bytes acked — that the ``ss`` synthesis
layer turns into socket snapshots.

Everything here is closed-form float arithmetic: no random streams, no
wall clock.  Two populations stepped with the same inputs produce
bit-identical state, which is what keeps hybrid runs reproducible under
``--workers N``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "FluidConfig",
    "CwndDistribution",
    "FluidPopulation",
]


@dataclass(frozen=True)
class FluidConfig:
    """Discretization and stepping knobs shared by a fluid engine."""

    #: Simulated seconds between fluid steps (the coarse cadence).
    cadence: float = 0.25
    #: Largest representable congestion window (the receive-window cap).
    max_window: int = 320
    #: Histogram bin width in segments (1 = exact integer windows).
    bin_width: int = 1
    #: EWMA weight of the newest per-link loss estimate (stability of the
    #: congestion feedback loop; 1.0 = no smoothing).
    loss_smoothing: float = 0.5
    #: Synthetic ``ss`` snapshots generated per population per poll.
    ss_samples: int = 8

    def __post_init__(self) -> None:
        if self.cadence <= 0:
            raise ValueError(f"cadence must be positive, got {self.cadence}")
        if self.max_window < 2:
            raise ValueError(f"max_window must be >= 2, got {self.max_window}")
        if self.bin_width < 1:
            raise ValueError(f"bin_width must be >= 1, got {self.bin_width}")
        if not 0.0 < self.loss_smoothing <= 1.0:
            raise ValueError(
                f"loss_smoothing must be in (0, 1], got {self.loss_smoothing}"
            )
        if self.ss_samples < 1:
            raise ValueError(f"ss_samples must be >= 1, got {self.ss_samples}")


#: Bin masses below this are trimmed when the active range is updated.
_MASS_EPSILON = 1e-12


class CwndDistribution:
    """A discretized congestion-window histogram for one flow cohort.

    Bin ``b`` represents windows ``[b * bin_width + 1, (b + 1) *
    bin_width]``; its representative window (used for send rates and
    sampling) is the lower edge ``b * bin_width + 1``, so ``bin_width=1``
    tracks exact integer windows.  The histogram keeps an active
    ``[lo, hi]`` bin range so stepping costs O(spread), not O(bins) —
    AIMD populations concentrate, so the spread stays narrow.
    """

    __slots__ = ("bin_width", "nbins", "_bin_mass", "_lo_bin", "_hi_bin", "flows")

    def __init__(self, max_window: int = 320, bin_width: int = 1) -> None:
        if max_window < 2:
            raise ValueError(f"max_window must be >= 2, got {max_window}")
        if bin_width < 1:
            raise ValueError(f"bin_width must be >= 1, got {bin_width}")
        self.bin_width = bin_width
        self.nbins = (max_window + bin_width - 1) // bin_width
        self._bin_mass = [0.0] * self.nbins
        self._lo_bin = 0
        self._hi_bin = -1  # empty
        self.flows = 0.0

    # ------------------------------------------------------------------
    # bin/window mapping
    # ------------------------------------------------------------------

    def window_to_bin(self, window: int) -> int:
        bin_index = (window - 1) // self.bin_width
        if bin_index < 0:
            return 0
        if bin_index >= self.nbins:
            return self.nbins - 1
        return bin_index

    def bin_to_window(self, bin_index: int) -> int:
        return bin_index * self.bin_width + 1

    @property
    def max_window(self) -> int:
        return self.bin_to_window(self.nbins - 1)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add_mass(self, window: int, mass: float) -> None:
        """Inject ``mass`` flows whose window is ``window``."""
        if mass <= 0.0:
            return
        bin_index = self.window_to_bin(window)
        self._bin_mass[bin_index] += mass
        self.flows += mass
        if self._hi_bin < 0:
            self._lo_bin = self._hi_bin = bin_index
        else:
            if bin_index < self._lo_bin:
                self._lo_bin = bin_index
            if bin_index > self._hi_bin:
                self._hi_bin = bin_index

    def remove_fraction(self, fraction: float) -> float:
        """Remove a uniform fraction of every bin; returns mass removed."""
        if fraction <= 0.0 or self._hi_bin < 0:
            return 0.0
        if fraction >= 1.0:
            removed = self.flows
            mass = self._bin_mass
            for b in range(self._lo_bin, self._hi_bin + 1):
                mass[b] = 0.0
            self._lo_bin, self._hi_bin = 0, -1
            self.flows = 0.0
            return removed
        keep = 1.0 - fraction
        removed = self.flows * fraction
        mass = self._bin_mass
        for b in range(self._lo_bin, self._hi_bin + 1):
            mass[b] *= keep
        self.flows *= keep
        return removed

    def step(
        self,
        dt: float,
        rtt: float,
        loss_rate: float,
        drift_segments_per_sec: float,
        send_rate_cap: float | None = None,
    ) -> float:
        """Advance the cohort by ``dt`` seconds.

        ``loss_rate`` is the per-segment drop probability of the path;
        ``drift_segments_per_sec`` the additive window growth of a
        surviving flow.  A flow's loss exposure scales with what it
        actually *sends*: one window per RTT for a bulk flow, capped at
        ``send_rate_cap`` segments/s for request/response flows that sit
        idle between fetches (exposure far below ``w/rtt``).  Returns
        the expected number of loss (halving) events this step — the
        retransmission mass the counters track.
        """
        if dt <= 0.0 or self._hi_bin < 0:
            return 0.0
        bin_width = self.bin_width
        nbins = self.nbins
        top = nbins - 1
        mass = self._bin_mass
        new = [0.0] * nbins
        shift = drift_segments_per_sec * dt / bin_width
        whole = int(shift)
        frac = shift - whole
        loss_scale = loss_rate * dt / rtt
        cap_q = (
            loss_rate * send_rate_cap * dt if send_rate_cap is not None else None
        )
        loss_events = 0.0
        for b in range(self._lo_bin, self._hi_bin + 1):
            m = mass[b]
            if m <= 0.0:
                continue
            w = b * bin_width + 1
            q = loss_scale * w
            if cap_q is not None and q > cap_q:
                q = cap_q
            if q >= 1.0:
                q = 1.0
            if q > 0.0:
                halved = m * q
                loss_events += halved
                m -= halved
                half_bin = (max(1, w >> 1) - 1) // bin_width
                new[half_bin] += halved
            if m <= 0.0:
                continue
            target = b + whole
            if target >= top:
                new[top] += m
            else:
                new[target] += m * (1.0 - frac)
                new[target + 1] += m * frac
        self._bin_mass = new
        self._retighten()
        return loss_events

    def _retighten(self) -> None:
        """Recompute the active range and total after a rebuild."""
        mass = self._bin_mass
        lo, hi, total = 0, -1, 0.0
        for b in range(self.nbins):
            m = mass[b]
            if m > _MASS_EPSILON:
                if hi < 0:
                    lo = b
                hi = b
                total += m
            elif m > 0.0:
                mass[b] = 0.0
        self._lo_bin, self._hi_bin = lo, hi
        self.flows = total

    # ------------------------------------------------------------------
    # read-out
    # ------------------------------------------------------------------

    def total_window_segments(self) -> float:
        """Sum of every flow's window — the cohort's one-RTT footprint."""
        if self._hi_bin < 0:
            return 0.0
        bin_width = self.bin_width
        mass = self._bin_mass
        return sum(
            mass[b] * (b * bin_width + 1)
            for b in range(self._lo_bin, self._hi_bin + 1)
        )

    def total_send_segments_per_sec(
        self, rtt: float, send_rate_cap: float | None = None
    ) -> float:
        """Aggregate send rate: each flow ships ``min(w/rtt, cap)`` seg/s."""
        if self._hi_bin < 0:
            return 0.0
        if send_rate_cap is None:
            return self.total_window_segments() / rtt
        bin_width = self.bin_width
        mass = self._bin_mass
        total = 0.0
        for b in range(self._lo_bin, self._hi_bin + 1):
            rate = (b * bin_width + 1) / rtt
            if rate > send_rate_cap:
                rate = send_rate_cap
            total += mass[b] * rate
        return total

    def mean(self) -> float:
        """Mean congestion window of the cohort (0 when empty)."""
        if self.flows <= 0.0:
            return 0.0
        return self.total_window_segments() / self.flows

    def quantile(self, q: float) -> int:
        """The window at cumulative fraction ``q`` of the cohort."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return self.sample_windows(1)[0] if q == 0.5 else self._at_fraction(q)

    def _at_fraction(self, q: float) -> int:
        if self._hi_bin < 0:
            return 1
        target = q * self.flows
        cum = 0.0
        mass = self._bin_mass
        for b in range(self._lo_bin, self._hi_bin + 1):
            cum += mass[b]
            if cum >= target:
                return self.bin_to_window(b)
        return self.bin_to_window(self._hi_bin)

    def sample_windows(self, count: int) -> list[int]:
        """``count`` representative windows at evenly spaced quantiles.

        Deterministic (mid-quantile rule): sample ``i`` sits at fraction
        ``(i + 0.5) / count`` of the mass, so the samples' mean tracks
        the distribution mean and repeated calls are bit-identical.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if self._hi_bin < 0:
            return [1] * count
        samples: list[int] = []
        mass = self._bin_mass
        total = self.flows
        cum = 0.0
        b = self._lo_bin
        cum = mass[b]
        for i in range(count):
            target = (i + 0.5) / count * total
            while cum < target and b < self._hi_bin:
                b += 1
                cum += mass[b]
            samples.append(self.bin_to_window(b))
        return samples

    def __repr__(self) -> str:
        return (
            f"<CwndDistribution flows={self.flows:.1f} "
            f"mean={self.mean():.1f} bins={self.nbins}x{self.bin_width}>"
        )


class FluidPopulation:
    """One destination pair's fluid cohort plus its lifecycle bookkeeping.

    The population holds ``target_flows`` open connections: departures
    leave at ``churn_per_flow_per_sec`` (a per-flow hazard rate, like the
    packet workload's close-after-fetch probability times its fetch
    rate) and are immediately replaced by fresh connections entering at
    ``entry_window`` — the initial window the host's route table
    currently resolves for the destination, so an installed Riptide
    route jump-starts the fluid cohort exactly like it jump-starts a
    packet connection.

    Cumulative counters accumulate the aggregate the cohort *would* have
    produced: ``segments_sent_total`` from the send rate ``w/rtt`` per
    flow, ``segments_retx_total`` from the halving events, and
    ``bytes_acked_total`` from delivered segments.  They only ever grow,
    so consumers that difference successive polls (the safety guard's
    retransmit ratio) see the right marginal rates.
    """

    __slots__ = (
        "name",
        "rtt",
        "mss",
        "distribution",
        "target_flows",
        "growth_segments_per_sec",
        "send_segments_per_flow_per_sec",
        "churn_per_flow_per_sec",
        "created_at",
        "is_client",
        "segments_sent_total",
        "segments_retx_total",
        "bytes_acked_total",
        "loss_events_total",
        "steps",
    )

    def __init__(
        self,
        name: str,
        rtt: float,
        target_flows: float,
        entry_window: int,
        max_window: int = 320,
        bin_width: int = 1,
        growth_segments_per_sec: float | None = None,
        send_segments_per_flow_per_sec: float | None = None,
        churn_per_flow_per_sec: float = 0.0,
        mss: int = 1460,
        created_at: float = 0.0,
        is_client: bool = False,
    ) -> None:
        if rtt <= 0:
            raise ValueError(f"rtt must be positive, got {rtt}")
        if target_flows <= 0:
            raise ValueError(f"target_flows must be positive, got {target_flows}")
        if churn_per_flow_per_sec < 0:
            raise ValueError(
                f"churn must be >= 0, got {churn_per_flow_per_sec}"
            )
        self.name = name
        self.rtt = float(rtt)
        self.mss = int(mss)
        self.distribution = CwndDistribution(max_window, bin_width)
        self.target_flows = float(target_flows)
        # Canonical AIMD: one segment per RTT.
        self.growth_segments_per_sec = (
            growth_segments_per_sec
            if growth_segments_per_sec is not None
            else 1.0 / self.rtt
        )
        # Bulk flows (None) send a full window per RTT; request/response
        # flows mostly idle, so their loss exposure and offered load are
        # capped at the workload's actual per-flow send rate.
        self.send_segments_per_flow_per_sec = (
            float(send_segments_per_flow_per_sec)
            if send_segments_per_flow_per_sec is not None
            else None
        )
        self.churn_per_flow_per_sec = float(churn_per_flow_per_sec)
        self.created_at = float(created_at)
        self.is_client = bool(is_client)
        self.segments_sent_total = 0.0
        self.segments_retx_total = 0.0
        self.bytes_acked_total = 0.0
        self.loss_events_total = 0.0
        self.steps = 0
        self.distribution.add_mass(entry_window, self.target_flows)

    @property
    def flows(self) -> float:
        return self.distribution.flows

    def mean_window(self) -> float:
        return self.distribution.mean()

    def offered_bps(self) -> float:
        """Aggregate send rate in bits/s (window-limited or rate-capped)."""
        rate = self.distribution.total_send_segments_per_sec(
            self.rtt, self.send_segments_per_flow_per_sec
        )
        return rate * self.mss * 8.0

    def step(self, dt: float, loss_rate: float, entry_window: int) -> None:
        """Advance the cohort: drift/halve, churn out, refill at entry."""
        dist = self.distribution
        loss_events = dist.step(
            dt,
            self.rtt,
            loss_rate,
            self.growth_segments_per_sec,
            self.send_segments_per_flow_per_sec,
        )
        if self.churn_per_flow_per_sec > 0.0:
            departing = 1.0 - math.exp(-self.churn_per_flow_per_sec * dt)
            dist.remove_fraction(departing)
        deficit = self.target_flows - dist.flows
        if deficit > 0.0:
            dist.add_mass(entry_window, deficit)
        sent = (
            dist.total_send_segments_per_sec(
                self.rtt, self.send_segments_per_flow_per_sec
            )
            * dt
        )
        retx = loss_events
        self.segments_sent_total += sent + retx
        self.segments_retx_total += retx
        self.loss_events_total += loss_events
        self.bytes_acked_total += sent * self.mss
        self.steps += 1

    def mean_flow_age(self, now: float) -> float:
        """Expected age of an open flow (exponential churn, capped)."""
        lifetime = now - self.created_at
        if self.churn_per_flow_per_sec <= 0.0:
            return lifetime
        return min(lifetime, 1.0 / self.churn_per_flow_per_sec)

    def sample_ages(self, count: int, now: float) -> list[float]:
        """Deterministic flow ages at mid-quantiles of the churn process.

        With churn the age distribution is exponential with rate equal
        to the per-flow hazard; without churn every flow is as old as
        the population.  Ages are capped at the population's own age.
        """
        lifetime = max(0.0, now - self.created_at)
        rate = self.churn_per_flow_per_sec
        if rate <= 0.0:
            return [lifetime] * count
        ages: list[float] = []
        for i in range(count):
            q = (i + 0.5) / count
            ages.append(min(lifetime, -math.log(1.0 - q) / rate))
        return ages

    def __repr__(self) -> str:
        return (
            f"<FluidPopulation {self.name!r} flows={self.flows:.1f} "
            f"mean_cwnd={self.mean_window():.1f} rtt={self.rtt * 1e3:.0f}ms>"
        )
