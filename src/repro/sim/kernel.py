"""The simulation kernel.

A :class:`Simulator` owns the clock and the event queue.  All other
components (links, sockets, agents) hold a reference to the simulator and
interact with time exclusively through :meth:`Simulator.schedule` — nothing
in the reproduction reads a wall clock, so a run is a pure function of its
seed and parameters.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.obs.instrument import Instrumentation, instrumentation_for_new_simulator
from repro.sim.errors import SchedulingError
from repro.sim.events import Event, EventQueue


class Simulator:
    """Discrete-event simulator with a float-seconds clock."""

    #: The queue-depth gauge is sampled every N executed events (plus once
    #: at loop exit) rather than per event — the gauge is diagnostic, and
    #: per-event updates dominated the inner-loop instrumentation cost.
    QUEUE_DEPTH_SAMPLE_STRIDE = 64

    def __init__(
        self,
        start_time: float = 0.0,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._seq = 0
        self._running = False
        self._events_processed = 0
        #: Metrics registry + trace log.  Inside a ``repro.obs.capture()``
        #: block this is the shared aggregate; otherwise private per run.
        self.obs = (
            instrumentation
            if instrumentation is not None
            else instrumentation_for_new_simulator()
        )
        #: Cached so the run loop and cancel path can skip instrumentation
        #: entirely (a true no-op) when it is disabled for this run.
        self._obs_enabled = self.obs.enabled
        self._m_processed = self.obs.metrics.counter("sim_events_processed")
        self._m_cancelled = self.obs.metrics.counter("sim_events_cancelled")
        self._g_queue_depth = self.obs.metrics.gauge("sim_queue_depth")

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events awaiting execution."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns an :class:`Event` handle whose ``cancel()`` prevents the
        callback from firing.  ``delay`` must be non-negative.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}"
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        self._queue.push(event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.  Idempotent.

        Cancelling an event that already fired (was popped and executed)
        is a no-op: the handle is stale, and decrementing the live count
        for it would make ``pending_events`` drift below the true count.
        """
        if event.cancelled or event.fired:
            return
        event.cancel()
        self._queue.note_cancelled()
        if self._obs_enabled:
            self._m_cancelled.inc()

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events in time order.

        Runs until the queue drains, until the clock would pass ``until``
        (the clock is then advanced to exactly ``until``), or until
        ``max_events`` events have been executed in this call — whichever
        comes first.  Returns the simulation time at exit.
        """
        if self._running:
            raise SchedulingError("run() called re-entrantly from an event handler")
        self._running = True
        executed = 0
        # Hot loop: queue methods and instrument handles are hoisted into
        # locals, the processed counter is batched (one add per run() call
        # instead of one per event) and the queue-depth gauge is sampled
        # every QUEUE_DEPTH_SAMPLE_STRIDE events.  With instrumentation
        # disabled the loop does no metric work at all.
        queue = self._queue
        peek_time = queue.peek_time
        pop = queue.pop
        obs_enabled = self._obs_enabled
        gauge_set = self._g_queue_depth.set
        stride = self.QUEUE_DEPTH_SAMPLE_STRIDE
        until_gauge = stride
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                next_time = peek_time()
                if until is not None and next_time > until:
                    break
                event = pop()
                self._now = event.time
                event.callback(*event.args)
                executed += 1
                if obs_enabled:
                    until_gauge -= 1
                    if not until_gauge:
                        gauge_set(len(queue))
                        until_gauge = stride
        finally:
            self._running = False
            self._events_processed += executed
            if obs_enabled:
                self._m_processed.inc(executed)
                gauge_set(len(queue))
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_idle(self) -> float:
        """Run until no events remain.  Returns the final clock value."""
        return self.run()

    def __repr__(self) -> str:
        return (
            f"<Simulator t={self._now:.6f} pending={self.pending_events} "
            f"processed={self._events_processed}>"
        )
