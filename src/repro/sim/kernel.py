"""The simulation kernel.

A :class:`Simulator` owns the clock and the event queue.  All other
components (links, sockets, agents) hold a reference to the simulator and
interact with time exclusively through :meth:`Simulator.schedule` — nothing
in the reproduction reads a wall clock, so a run is a pure function of its
seed and parameters.

The :meth:`Simulator.run` loop is the hottest code in the repository: every
packet, timer, probe and agent tick passes through it.  It therefore works
directly on the queue's heap entries — plain ``(time, seq, event, callback,
args)`` tuples ordered by C-level tuple comparison — peeking at ``heap[0]``
and dispatching from the entry without intermediate method calls or
:class:`~repro.sim.events.Event` attribute loads.  Handle-free timers
(:meth:`schedule_fire`) skip the ``Event`` allocation entirely.  Firing
order is exactly ``(time, seq)`` with ``seq`` assigned per schedule call,
so the rewrite is bit-identical to the previous heap-of-events kernel.
"""

from __future__ import annotations

from collections.abc import Callable
from heapq import heappop, heappush
from typing import Any

from repro.obs.instrument import Instrumentation, instrumentation_for_new_simulator
from repro.sim.errors import SchedulingError
from repro.sim.events import Event, EventQueue

#: ``Event.__new__`` bound once: the schedule fast paths allocate the
#: handle and fill its slots inline, skipping the ``__init__`` frame —
#: worth ~150 ns per event on the scheduling hot path.
_new_event = Event.__new__


class Simulator:
    """Discrete-event simulator with a float-seconds clock."""

    # Dict-free instances: ``_now``/``_seq``/``_qheap`` are touched once
    # or more per scheduled event, and slot access beats a dict lookup.
    __slots__ = (
        "_now", "_queue", "_qheap", "_seq", "_running", "_events_processed",
        "obs", "_obs_enabled", "_m_processed", "_m_cancelled",
        "_g_queue_depth",
    )

    #: The queue-depth gauge is sampled every N executed events (plus once
    #: at loop exit) rather than per event — the gauge is diagnostic, and
    #: per-event updates dominated the inner-loop instrumentation cost.
    QUEUE_DEPTH_SAMPLE_STRIDE = 64

    def __init__(
        self,
        start_time: float = 0.0,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        #: The queue's entry heap, cached for the schedule fast paths.
        #: Safe to hold across the whole run: compaction rebuilds the
        #: heap *in place*, so the list identity never changes.
        self._qheap = self._queue._heap
        self._seq = 0
        self._running = False
        self._events_processed = 0
        #: Metrics registry + trace log.  Inside a ``repro.obs.capture()``
        #: block this is the shared aggregate; otherwise private per run.
        self.obs = (
            instrumentation
            if instrumentation is not None
            else instrumentation_for_new_simulator()
        )
        #: Cached so the run loop and cancel path can skip instrumentation
        #: entirely (a true no-op) when it is disabled for this run.
        self._obs_enabled = self.obs.enabled
        self._m_processed = self.obs.metrics.counter("sim_events_processed")
        self._m_cancelled = self.obs.metrics.counter("sim_events_cancelled")
        self._g_queue_depth = self.obs.metrics.gauge("sim_queue_depth")

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events awaiting execution."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns an :class:`Event` handle whose ``cancel()`` prevents the
        callback from firing.  ``delay`` must be non-negative.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay:.6f}s in the past")
        seq = self._seq
        self._seq = seq + 1
        time = self._now + delay
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.fired = False
        heappush(self._qheap, (time, seq, event, callback, args))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.fired = False
        heappush(self._qheap, (time, seq, event, callback, args))
        return event

    def schedule_fire(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        """Schedule a fire-and-forget ``callback(*args)`` with no handle.

        Identical firing order to :meth:`schedule` (one ``seq`` is
        consumed per call, whichever path scheduled it), but no
        :class:`Event` is allocated, so the timer cannot be cancelled.
        Use for hot-path timers no caller ever cancels — a link's
        serialization and propagation timers fire three times per packet
        and never need a handle.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay:.6f}s in the past")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._qheap, (self._now + delay, seq, None, callback, args))

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.  Idempotent.

        Cancelling an event that already fired (was popped and executed)
        is a no-op: the handle is stale, and decrementing the live count
        for it would make ``pending_events`` drift below the true count.
        """
        if event.cancelled or event.fired:
            return
        event.cancel()
        self._queue.note_cancelled()
        if self._obs_enabled:
            self._m_cancelled.inc()

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events in time order.

        Runs until the queue drains, until the clock would pass ``until``
        (the clock is then advanced to exactly ``until``), or until
        ``max_events`` events have been executed in this call — whichever
        comes first.  Returns the simulation time at exit.

        The clock is only fast-forwarded to ``until`` when no live event
        at or before ``until`` remains: a run that stops on ``max_events``
        leaves the clock at the last executed event, so a later ``run()``
        resumes the still-queued earlier events without the clock ever
        moving backwards.
        """
        if self._running:
            raise SchedulingError("run() called re-entrantly from an event handler")
        self._running = True
        executed = 0
        # Hot loop: it works directly on the queue's entry heap — one
        # ``heap[0]`` peek and one C-level heappop per event, dispatching
        # ``callback(*args)`` straight from the entry tuple.  Tombstones
        # (cancelled handles) are popped and uncounted inline; compaction
        # (triggered from cancel()) rebuilds the heap *in place*, so the
        # ``heap`` local stays coherent across mid-callback cancel bursts.
        # The processed counter is batched (one add per run() call instead
        # of one per event) and the queue-depth gauge is sampled every
        # QUEUE_DEPTH_SAMPLE_STRIDE events.  With instrumentation disabled
        # the loop does no metric work at all.
        queue = self._queue
        heap = queue._heap
        limit = -1 if max_events is None else max_events
        obs_enabled = self._obs_enabled
        gauge_set = self._g_queue_depth.set
        stride = self.QUEUE_DEPTH_SAMPLE_STRIDE
        until_gauge = stride
        try:
            if until is None:
                # Unbounded variant (run_until_idle, the common case):
                # pop straight off the heap with no per-event peek or
                # time comparison.
                while heap:
                    if executed == limit:
                        break
                    entry = heappop(heap)
                    event = entry[2]
                    if event is not None:
                        if event.cancelled:
                            queue._tombstones -= 1
                            continue
                        event.fired = True
                    self._now = entry[0]
                    entry[3](*entry[4])
                    executed += 1
                    if obs_enabled:
                        until_gauge -= 1
                        if not until_gauge:
                            gauge_set(len(queue))
                            until_gauge = stride
            else:
                # Bounded variant: peek before popping so an event past
                # the bound stays queued for the next run() call.
                while heap:
                    if executed == limit:
                        break
                    entry = heap[0]
                    event = entry[2]
                    if event is not None and event.cancelled:
                        heappop(heap)
                        queue._tombstones -= 1
                        continue
                    time = entry[0]
                    if time > until:
                        break
                    heappop(heap)
                    if event is not None:
                        event.fired = True
                    self._now = time
                    entry[3](*entry[4])
                    executed += 1
                    if obs_enabled:
                        until_gauge -= 1
                        if not until_gauge:
                            gauge_set(len(queue))
                            until_gauge = stride
        finally:
            self._running = False
            self._events_processed += executed
            if obs_enabled:
                self._m_processed.inc(executed)
                gauge_set(len(queue))
        if until is not None and self._now < until:
            # Fast-forward only when nothing live remains at or before
            # the bound — a max_events stop with earlier events still
            # queued must leave the clock where it is, or the next run()
            # would execute those events with ``now`` past them.
            try:
                next_time = queue.peek_time()
            except IndexError:
                next_time = None
            if next_time is None or next_time > until:
                self._now = until
        return self._now

    def run_until_idle(self) -> float:
        """Run until no events remain.  Returns the final clock value."""
        return self.run()

    def __repr__(self) -> str:
        return (
            f"<Simulator t={self._now:.6f} pending={self.pending_events} "
            f"processed={self._events_processed}>"
        )
