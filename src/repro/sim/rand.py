"""Named, seeded random streams.

Every stochastic component (loss model, workload generator, file-size
sampler, ...) draws from its own named stream derived from a single master
seed.  Adding a new component therefore never perturbs the draws of existing
ones, and any experiment is reproducible from one integer.
"""

from __future__ import annotations

import random
import zlib


class RandomStreams:
    """A factory of independent ``random.Random`` instances.

    Child streams are derived from ``(master_seed, name)`` through a stable
    hash (CRC32 — Python's ``hash()`` is salted per process and must not be
    used for reproducibility).
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so consumption of randomness is shared within a name.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived = self._derive_seed(name)
        stream = random.Random(derived)
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Return a new :class:`RandomStreams` rooted at a derived seed.

        Useful when a subsystem (e.g. one host among hundreds) wants its
        own namespace of streams.
        """
        return RandomStreams(self._derive_seed(name))

    def _derive_seed(self, name: str) -> int:
        tag = zlib.crc32(name.encode("utf-8"))
        # Mix with splitmix64-style constants so nearby seeds diverge.
        mixed = (self._master_seed * 0x9E3779B97F4A7C15 + tag) & 0xFFFFFFFFFFFFFFFF
        mixed ^= mixed >> 31
        mixed = (mixed * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        mixed ^= mixed >> 27
        return mixed

    def __repr__(self) -> str:
        return (
            f"<RandomStreams master_seed={self._master_seed} "
            f"streams={sorted(self._streams)}>"
        )
