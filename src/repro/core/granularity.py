"""Destination grouping (Section III-B, "Destinations as Routes").

Riptide may treat each remote *host* as a destination (installing ``/32``
routes) or aggregate whole *prefixes* — "connections between machines in
each datacenter are subject to similar constraints", so one route per
remote PoP prefix costs fewer routes and pools more observations.
"""

from __future__ import annotations

from repro.net.addresses import IPv4Address, Prefix


class DestinationGrouper:
    """Maps remote addresses to route-table destination prefixes."""

    def __init__(self, granularity: str = "host", prefix_length: int = 16) -> None:
        if granularity not in ("host", "prefix"):
            raise ValueError(
                f"granularity must be 'host' or 'prefix', got {granularity!r}"
            )
        if not 0 <= prefix_length <= 32:
            raise ValueError(f"prefix_length out of range: {prefix_length}")
        self.granularity = granularity
        self.prefix_length = prefix_length

    def key_for(self, remote: IPv4Address) -> Prefix:
        """The destination prefix a connection to ``remote`` belongs to."""
        if self.granularity == "host":
            return Prefix.host(remote)
        return Prefix.containing(remote, self.prefix_length)

    def __repr__(self) -> str:
        if self.granularity == "host":
            return "<DestinationGrouper /32 host routes>"
        return f"<DestinationGrouper /{self.prefix_length} prefix routes>"
