"""The Riptide agent (Algorithm 1).

One agent runs per host, exactly as the paper's single Python script runs
per server:

.. code-block:: text

    while Running do
        observed table   <- current CWND for all connections      (ss)
        grouped windows  <- observed table grouped by destination
        for group in grouped windows do
            average <- average of all current windows             (combiner)
            final   <- moving average with history                (history)
            Init_CWND to destination <- final                     (ip route)
        wait for i_u seconds

plus the TTL sweep: entries that go unrefreshed for ``t`` seconds lose
their route, restoring the kernel default of 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.advisory import Advisory, AdvisoryController
from repro.core.combiners import Observation, make_combiner
from repro.core.config import RiptideConfig
from repro.core.granularity import DestinationGrouper
from repro.core.history import make_history_policy
from repro.core.observed import LearnedTable
from repro.core.trend import TrendDetector
from repro.linux.host import Host
from repro.net.addresses import Prefix
from repro.obs.trace import EventType
from repro.sim.process import PeriodicProcess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.audit import Auditor


@dataclass
class AgentStats:
    """Operational counters for one agent."""

    polls: int = 0
    connections_observed: int = 0
    routes_installed: int = 0
    routes_withdrawn: int = 0
    routes_expired: int = 0
    window_history: list[tuple[float, int]] = field(default_factory=list)


class RiptideAgent:
    """One host's Riptide process."""

    def __init__(
        self,
        host: Host,
        config: RiptideConfig | None = None,
        record_window_history: bool = False,
    ) -> None:
        self.host = host
        self.config = config if config is not None else RiptideConfig()
        self._combiner = make_combiner(self.config.combiner)
        self._history = make_history_policy(
            self.config.history, self.config.alpha, self.config.history_window
        )
        self._grouper = DestinationGrouper(
            self.config.granularity, self.config.prefix_length
        )
        self._learned = LearnedTable(self.config.ttl)
        self._advisories = AdvisoryController()
        self._trend: TrendDetector | None = None
        if self.config.trend_detection:
            self._trend = TrendDetector(
                drop_threshold=self.config.trend_drop_threshold,
                penalty=self.config.trend_penalty,
                hold=self.config.trend_hold,
            )
        self._process = PeriodicProcess(
            host.sim, self.config.update_interval, self._tick, name="riptide"
        )
        self._record_window_history = record_window_history
        self.stats = AgentStats()
        self.started_at: float | None = None
        #: Optional consistency auditor, run at the start of every tick.
        self.auditor: "Auditor | None" = None
        self._last_advisory_scale = 1.0

        obs = host.sim.obs
        self._trace = obs.trace
        metrics = obs.metrics
        self._m_polls = metrics.counter("riptide_polls")
        self._m_observed = metrics.counter("riptide_connections_observed")
        self._m_installed = metrics.counter("riptide_routes_installed")
        self._m_withdrawn = metrics.counter("riptide_routes_withdrawn")
        self._m_expired = metrics.counter("riptide_routes_expired")
        self._m_clamp_min = metrics.counter("riptide_clamp_hits", bound="c_min")
        self._m_clamp_max = metrics.counter("riptide_clamp_hits", bound="c_max")
        self._g_learned = metrics.gauge("riptide_learned_entries", host=host.name)
        self._h_poll_cost = metrics.histogram("riptide_poll_cost")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._process.running

    def start(self, initial_delay: float | None = None) -> None:
        """Begin the poll loop."""
        if self.started_at is None:
            self.started_at = self.host.sim.now
        self._process.start(initial_delay=initial_delay)

    def stop(self, remove_routes: bool = True) -> None:
        """Stop polling; optionally withdraw all installed routes.

        With ``remove_routes`` the learned table, history and trend state
        are cleared along with the routes: a stopped agent no longer has
        anything installed, so remembering the old windows would make a
        restarted agent skip reinstalling them (the learned table would
        claim the windows are already in effect while the route table has
        none of them).
        """
        self._process.stop()
        if remove_routes:
            now = self.host.sim.now
            for entry in self._learned.entries():
                self._withdraw(entry.destination)
                self.stats.routes_withdrawn += 1
                self._m_withdrawn.inc()
                self._trace.record(
                    now,
                    EventType.ROUTE_WITHDRAWN,
                    self.host.name,
                    destination=str(entry.destination),
                    window=entry.window,
                    reason="stop",
                )
                if self._trend is not None:
                    self._trend.forget(entry.destination)
            for destination in list(self._history.tracked_keys()):
                self._history.forget(destination)
            self._learned.clear()
            self._g_learned.set(0)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def learned_table(self) -> LearnedTable:
        return self._learned

    def learned_window_for(self, destination: Prefix) -> int | None:
        entry = self._learned.get(destination)
        return entry.window if entry is not None else None

    def installed_window(self, destination: Prefix) -> int | None:
        """The window *actually in effect* for ``destination`` right now.

        Reads the host's installation state (the route table here; the
        kernel hook's map in :class:`~repro.core.kernel_mode.
        KernelModeAgent`), not the learned table — the two can diverge,
        which is exactly what :class:`~repro.obs.audit.Auditor` checks.
        """
        entry = self.host.route_table.get(destination)
        return entry.initcwnd if entry is not None else None

    def attach_auditor(self, auditor: "Auditor") -> None:
        """Run ``auditor.check()`` at the start of every poll tick."""
        self.auditor = auditor

    @property
    def trend_detector(self) -> TrendDetector | None:
        return self._trend

    # ------------------------------------------------------------------
    # operational advisories (Section V)
    # ------------------------------------------------------------------

    def advise_conservative(
        self, scale: float, duration: float, reason: str = ""
    ) -> Advisory:
        """Scale all computed windows by ``scale`` for ``duration`` seconds.

        The hook the paper proposes for higher-level signals such as an
        imminent load-balancing shift: new connections enter the network
        more cautiously while the advisory holds.
        """
        now = self.host.sim.now
        advisory = self._advisories.advise(scale, duration, now=now, reason=reason)
        self._trace.record(
            now,
            EventType.ADVISORY_START,
            self.host.name,
            scale=scale,
            until=advisory.until,
            reason=reason,
        )
        return advisory

    def clear_advisories(self) -> None:
        now = self.host.sim.now
        if self._advisories.scale_at(now) < 1.0:
            self._trace.record(
                now, EventType.ADVISORY_END, self.host.name, reason="cleared"
            )
            self._last_advisory_scale = 1.0
        self._advisories.clear()

    def current_advisory_scale(self) -> float:
        return self._advisories.scale_at(self.host.sim.now)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        now = self.host.sim.now
        self.stats.polls += 1
        self._m_polls.inc()
        if self.auditor is not None:
            # Audit *before* the install pass: a divergence is observed
            # here once, then healed by this very tick's reinstall.
            self.auditor.check(now)
        advisory_scale = self._advisories.scale_at(now)
        if advisory_scale == 1.0 and self._last_advisory_scale < 1.0:
            self._trace.record(
                now, EventType.ADVISORY_END, self.host.name, reason="expired"
            )
        self._last_advisory_scale = advisory_scale
        routes_touched_before = self.stats.routes_installed
        grouped = self._observe_and_group()
        observed = sum(len(observations) for observations in grouped.values())
        for destination, observations in grouped.items():
            candidate = self._combiner.combine(observations)
            final = self._history.update(destination, candidate)
            if self._trend is not None:
                final *= self._trend.observe(destination, candidate, now)
            if final > self.config.c_max:
                self._m_clamp_max.inc()
            elif final < self.config.c_min:
                self._m_clamp_min.inc()
            window = self.config.clamp(final)
            if advisory_scale < 1.0:
                # Advisories scale the *installed* window so an operator
                # halving windows actually halves them even when the raw
                # value sits above c_max.
                window = max(self.config.c_min, round(window * advisory_scale))
            self._install(destination, window, now)
        self._expire(now)
        self._g_learned.set(len(self._learned))
        # Poll cost: the work this tick performed — connections scanned
        # plus route commands issued — the in-simulation analogue of the
        # paper's "external program monitoring all open connections" load.
        self._h_poll_cost.observe(
            observed + (self.stats.routes_installed - routes_touched_before), t=now
        )

    def _observe_and_group(self) -> dict[Prefix, list[Observation]]:
        """Poll ``ss`` and group current windows by destination key."""
        snapshots = self.host.ss.tcp_info(
            established_only=True,
            outgoing_only=self.config.outgoing_only,
        )
        grouped: dict[Prefix, list[Observation]] = {}
        for info in snapshots:
            key = self._grouper.key_for(info.remote_address)
            grouped.setdefault(key, []).append(
                Observation(cwnd=info.cwnd, bytes_acked=info.bytes_acked)
            )
            self.stats.connections_observed += 1
            self._m_observed.inc()
        return grouped

    def _install(self, destination: Prefix, window: int, now: float) -> None:
        previous = self._learned.get(destination)
        self._learned.record(destination, window, now)
        # Apply when the window changed — or when the remembered window
        # does not match what is actually installed (a route deleted out
        # from under us, a host reboot): trusting the learned table alone
        # would strand the divergence forever, since an unchanged window
        # skips this branch on every subsequent tick.
        if (
            previous is None
            or previous.window != window
            or self.installed_window(destination) != window
        ):
            self._apply_window(destination, window)
            self.stats.routes_installed += 1
            self._m_installed.inc()
            self._trace.record(
                now,
                EventType.ROUTE_INSTALLED,
                self.host.name,
                destination=str(destination),
                window=window,
                previous=previous.window if previous is not None else None,
            )
        if self._record_window_history:
            self.stats.window_history.append((now, window))

    def _apply_window(self, destination: Prefix, window: int) -> None:
        """Make ``window`` effective for new connections to ``destination``.

        The user-space implementation (this class) programs a route, the
        mechanism the paper deploys; :class:`~repro.core.kernel_mode.
        KernelModeAgent` overrides this with an in-kernel hook.
        """
        initrwnd = self.config.c_max if self.config.set_initrwnd else None
        self.host.ip.route_replace(destination, initcwnd=window, initrwnd=initrwnd)

    def _expire(self, now: float) -> None:
        for entry in self._learned.pop_expired(now):
            self._withdraw(entry.destination)
            self._history.forget(entry.destination)
            if self._trend is not None:
                self._trend.forget(entry.destination)
            self.stats.routes_expired += 1
            self._m_expired.inc()
            self._trace.record(
                now,
                EventType.ROUTE_EXPIRED,
                self.host.name,
                destination=str(entry.destination),
                window=entry.window,
            )

    def _withdraw(self, destination: Prefix) -> None:
        """Remove the effect of :meth:`_apply_window` (TTL expiry)."""
        try:
            self.host.ip.route_del(destination)
        except KeyError:
            # The route was removed out from under us (e.g. an operator
            # cleaned the table); nothing left to withdraw.
            pass

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"<RiptideAgent host={self.host.address} {state} "
            f"learned={len(self._learned)}>"
        )
