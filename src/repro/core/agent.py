"""The Riptide agent (Algorithm 1).

One agent runs per host, exactly as the paper's single Python script runs
per server:

.. code-block:: text

    while Running do
        observed table   <- current CWND for all connections      (ss)
        grouped windows  <- observed table grouped by destination
        for group in grouped windows do
            average <- average of all current windows             (combiner)
            final   <- moving average with history                (history)
            Init_CWND to destination <- final                     (ip route)
        wait for i_u seconds

plus the TTL sweep: entries that go unrefreshed for ``t`` seconds lose
their route, restoring the kernel default of 10.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable, MutableSequence
from typing import TYPE_CHECKING

from repro.core.advisory import Advisory, AdvisoryController
from repro.core.combiners import Observation
from repro.core.config import RiptideConfig
from repro.core.granularity import DestinationGrouper
from repro.core.guard import PathHealth, SafetyGuard
from repro.core.observed import LearnedTable
from repro.core.trend import TrendDetector
from repro.linux.errors import ToolError
from repro.linux.host import Host
from repro.net.addresses import Prefix
from repro.obs.span import Span
from repro.policy import EwmaPolicy, WindowPolicy, finalize_window, make_policy
from repro.obs.trace import EventType
from repro.sim.process import PeriodicProcess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.audit import Auditor


@dataclass
class AgentStats:
    """Operational counters for one agent."""

    polls: int = 0
    connections_observed: int = 0
    routes_installed: int = 0
    routes_withdrawn: int = 0
    routes_expired: int = 0
    #: Resilience counters: ``ss`` polls that failed outright, ``ip``
    #: commands that errored, scheduled retries of those commands,
    #: safety-guard withdrawals and process crashes.
    poll_failures: int = 0
    tool_errors: int = 0
    tool_retries: int = 0
    guard_trips: int = 0
    crashes: int = 0
    #: ``(time, window)`` per install when recording is enabled.  A
    #: bounded deque when the agent was given ``window_history_limit``.
    window_history: MutableSequence[tuple[float, int]] = field(default_factory=list)


class RiptideAgent:
    """One host's Riptide process."""

    def __init__(
        self,
        host: Host,
        config: RiptideConfig | None = None,
        record_window_history: bool = False,
        window_history_limit: int | None = None,
    ) -> None:
        self.host = host
        self.config = config if config is not None else RiptideConfig()
        self._policy: WindowPolicy = make_policy(self.config.policy, self.config)
        self._grouper = DestinationGrouper(
            self.config.granularity, self.config.prefix_length
        )
        self._learned = LearnedTable(self.config.ttl)
        self._advisories = AdvisoryController()
        self._guard: SafetyGuard | None = None
        if self.config.safety_guard:
            self._guard = SafetyGuard(
                loss_threshold=self.config.guard_loss_threshold,
                rtt_factor=self.config.guard_rtt_factor,
                min_segments=self.config.guard_min_segments,
                hold=self.config.guard_hold,
            )
        self._process = PeriodicProcess(
            host.sim, self.config.update_interval, self._tick, name="riptide"
        )
        self._record_window_history = record_window_history
        self.stats = AgentStats()
        if window_history_limit is not None:
            if window_history_limit < 1:
                raise ValueError(
                    f"window_history_limit must be >= 1, got {window_history_limit}"
                )
            self.stats.window_history = deque(maxlen=window_history_limit)
        self.started_at: float | None = None
        #: Optional consistency auditor, run at the start of every tick.
        self.auditor: "Auditor | None" = None
        self._last_advisory_scale = 1.0

        obs = host.sim.obs
        self._trace = obs.trace
        self._obs_on = obs.enabled
        self._spans = obs.spans
        self._tsdb = obs.tsdb
        #: Per-destination (sent, retransmitted) cumulative baselines for
        #: the SLO tap — deltas per tick feed the windowed store.
        self._tap_prev: dict[Prefix, tuple[int, int]] = {}
        #: Open guard-hold spans by destination (begun at trip, ended at
        #: release/crash/stop) and the span of the poll tick in progress.
        self._guard_spans: dict[Prefix, Span] = {}
        self._poll_span: Span | None = None
        metrics = obs.metrics
        self._m_polls = metrics.counter("riptide_polls")
        self._m_observed = metrics.counter("riptide_connections_observed")
        self._m_installed = metrics.counter("riptide_routes_installed")
        self._m_withdrawn = metrics.counter("riptide_routes_withdrawn")
        self._m_expired = metrics.counter("riptide_routes_expired")
        self._m_clamp_min = metrics.counter("riptide_clamp_hits", bound="c_min")
        self._m_clamp_max = metrics.counter("riptide_clamp_hits", bound="c_max")
        self._m_poll_failures = metrics.counter("riptide_poll_failures")
        self._m_tool_errors = metrics.counter("riptide_tool_errors")
        self._m_tool_retries = metrics.counter("riptide_tool_retries")
        self._m_guard_trips = metrics.counter("riptide_guard_trips")
        self._m_crashes = metrics.counter("riptide_crashes")
        self._m_policy_decisions = metrics.counter(
            "riptide_policy_decisions", policy=self._policy.name
        )
        self._g_learned = metrics.gauge("riptide_learned_entries", host=host.name)
        self._h_poll_cost = metrics.histogram("riptide_poll_cost")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._process.running

    def start(self, initial_delay: float | None = None) -> None:
        """Begin the poll loop."""
        if self.started_at is None:
            self.started_at = self.host.sim.now
        self._process.start(initial_delay=initial_delay)

    def stop(self, remove_routes: bool = True) -> None:
        """Stop polling; optionally withdraw all installed routes.

        With ``remove_routes`` the learned table and the policy's state
        are cleared along with the routes: a stopped agent no longer has
        anything installed, so remembering the old windows would make a
        restarted agent skip reinstalling them (the learned table would
        claim the windows are already in effect while the route table has
        none of them).
        """
        self._process.stop()
        if remove_routes:
            now = self.host.sim.now
            for entry in self._learned.entries():
                if self._withdraw(entry.destination):
                    self.stats.routes_withdrawn += 1
                    self._m_withdrawn.inc()
                    self._trace.record(
                        now,
                        EventType.ROUTE_WITHDRAWN,
                        self.host.name,
                        destination=str(entry.destination),
                        window=entry.window,
                        reason="stop",
                    )
            self._policy.reset()
            self._learned.clear()
            if self._guard is not None:
                self._guard.reset()
            self._close_guard_spans(now, "stop")
            self._g_learned.set(0)

    def crash(self) -> None:
        """Kill the agent process abruptly — no cleanup, no goodbyes.

        Everything the *process* held in memory is gone: the learned
        table, history, trend state, advisories and guard holds.  The
        routes it installed SURVIVE — they live in the kernel FIB, not
        the process — so until a restarted agent relearns the paths, new
        connections keep using windows nobody is maintaining.  The
        restarted agent self-heals: :meth:`_install` reinstalls whenever
        the actual route diverges from what it computes, and the TTL
        sweep eventually collects destinations that never reappear.
        """
        was_running = self.running
        self._process.stop()
        now = self.host.sim.now
        self.stats.crashes += 1
        self._m_crashes.inc()
        self._trace.record(
            now,
            EventType.AGENT_CRASHED,
            self.host.name,
            learned=len(self._learned),
            was_running=was_running,
        )
        self._learned.clear()
        self._policy.reset()
        self._advisories = AdvisoryController()
        self._last_advisory_scale = 1.0
        if self._guard is not None:
            self._guard.reset()
        self._close_guard_spans(now, "crash")
        self._g_learned.set(0)

    def _close_guard_spans(self, now: float, ended_by: str) -> None:
        for span in self._guard_spans.values():
            self._spans.end(span, now, released=False, ended_by=ended_by)
        self._guard_spans.clear()

    def set_poll_jitter(self, jitter: Callable[[], float] | None) -> None:
        """Fault injection: add per-tick drift to the poll loop."""
        self._process.set_jitter(jitter)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def learned_table(self) -> LearnedTable:
        return self._learned

    def learned_window_for(self, destination: Prefix) -> int | None:
        entry = self._learned.get(destination)
        return entry.window if entry is not None else None

    def installed_window(self, destination: Prefix) -> int | None:
        """The window *actually in effect* for ``destination`` right now.

        Reads the host's installation state (the route table here; the
        kernel hook's map in :class:`~repro.core.kernel_mode.
        KernelModeAgent`), not the learned table — the two can diverge,
        which is exactly what :class:`~repro.obs.audit.Auditor` checks.
        """
        entry = self.host.route_table.get(destination)
        return entry.initcwnd if entry is not None else None

    def attach_auditor(self, auditor: "Auditor") -> None:
        """Run ``auditor.check()`` at the start of every poll tick."""
        self.auditor = auditor

    @property
    def window_policy(self) -> WindowPolicy:
        return self._policy

    @property
    def trend_detector(self) -> TrendDetector | None:
        policy = self._policy
        return policy.trend if isinstance(policy, EwmaPolicy) else None

    @property
    def safety_guard(self) -> SafetyGuard | None:
        return self._guard

    # ------------------------------------------------------------------
    # operational advisories (Section V)
    # ------------------------------------------------------------------

    def advise_conservative(
        self, scale: float, duration: float, reason: str = ""
    ) -> Advisory:
        """Scale all computed windows by ``scale`` for ``duration`` seconds.

        The hook the paper proposes for higher-level signals such as an
        imminent load-balancing shift: new connections enter the network
        more cautiously while the advisory holds.
        """
        now = self.host.sim.now
        advisory = self._advisories.advise(scale, duration, now=now, reason=reason)
        self._trace.record(
            now,
            EventType.ADVISORY_START,
            self.host.name,
            scale=scale,
            until=advisory.until,
            reason=reason,
        )
        return advisory

    def clear_advisories(self) -> None:
        now = self.host.sim.now
        if self._advisories.scale_at(now) < 1.0:
            self._trace.record(
                now, EventType.ADVISORY_END, self.host.name, reason="cleared"
            )
            self._last_advisory_scale = 1.0
        self._advisories.clear()

    def current_advisory_scale(self) -> float:
        return self._advisories.scale_at(self.host.sim.now)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        now = self.host.sim.now
        self.stats.polls += 1
        self._m_polls.inc()
        self._poll_span = self._spans.begin(
            now, "agent poll", "agent", self.host.name
        ) if self._obs_on else None
        if self.auditor is not None:
            # Audit *before* the install pass: a divergence is observed
            # here once, then healed by this very tick's reinstall.
            self.auditor.check(now)
        advisory_scale = self._advisories.scale_at(now)
        if advisory_scale == 1.0 and self._last_advisory_scale < 1.0:
            self._trace.record(
                now, EventType.ADVISORY_END, self.host.name, reason="expired"
            )
        self._last_advisory_scale = advisory_scale
        if self._guard is not None:
            for destination in self._guard.release_expired(now):
                self._trace.record(
                    now,
                    EventType.GUARD_RELEASED,
                    self.host.name,
                    destination=str(destination),
                )
                self._spans.end(
                    self._guard_spans.pop(destination, None), now, released=True
                )
        routes_touched_before = self.stats.routes_installed
        grouped, health = self._observe_and_group()
        observed = sum(len(observations) for observations in grouped.values())
        if self._obs_on and health:
            self._tap_health(health, now)
        # Deterministic despite the dict view: ``grouped`` preserves the
        # ss-snapshot row order, which is itself a pure function of the
        # run.  The project index proves it — ``_observe_and_group``
        # resolves with an untainted return, so DET002 accepts the loop
        # without an ignore.  Sorting here would reorder installs/trace
        # emission and change pinned outputs for no correctness gain.
        for destination, observations in grouped.items():
            if self._guard is not None:
                reason = self._guard.observe(destination, health[destination], now)
                if reason is not None:
                    self._guard_trip(destination, reason, now)
                    continue
                if self._guard.holding(destination, now):
                    # Tripped earlier this hold: the destination stays at
                    # the kernel default; no learning until release.
                    continue
            final = self._policy.decide(destination, observations, now)
            window, bound = finalize_window(self.config, final, advisory_scale)
            if bound == "c_max":
                self._m_clamp_max.inc()
            elif bound == "c_min":
                self._m_clamp_min.inc()
            self._m_policy_decisions.inc()
            self._install(destination, window, now)
        self._expire(now)
        self._g_learned.set(len(self._learned))
        # Poll cost: the work this tick performed — connections scanned
        # plus route commands issued — the in-simulation analogue of the
        # paper's "external program monitoring all open connections" load.
        self._h_poll_cost.observe(
            observed + (self.stats.routes_installed - routes_touched_before), t=now
        )
        if self._poll_span is not None:
            self._spans.end(
                self._poll_span,
                self.host.sim.now,
                observed=observed,
                installed=self.stats.routes_installed - routes_touched_before,
            )
            self._poll_span = None

    def _tap_health(self, health: dict[Prefix, PathHealth], now: float) -> None:
        """Feed per-destination traffic deltas to the windowed store.

        The SLO engine's ``retransmit_ratio`` signal: per poll tick, the
        change in cumulative segments sent/retransmitted toward each
        destination.  Socket churn can shrink the cumulative totals (a
        closed connection leaves the snapshot); such ticks only re-baseline
        — the same reset the SafetyGuard applies.  Read-only: recording
        never perturbs protocol behaviour or the seeded streams.
        """
        host_name = self.host.name
        # Snapshot-row order, a pure function of the run (see the decide
        # loop above).  Unlike that loop, ``health`` arrives here as a
        # parameter, so the per-file rule cannot see its provenance; the
        # index proves the only call site passes ``_observe_and_group``'s
        # untainted return, and this ignore records that proof.
        for destination, path in health.items():  # lint: ignore[DET002]
            sent = path.segments_sent
            retransmitted = path.segments_retransmitted
            previous = self._tap_prev.get(destination)
            self._tap_prev[destination] = (sent, retransmitted)
            if previous is None:
                continue
            delta_sent = sent - previous[0]
            delta_rexmit = retransmitted - previous[1]
            if delta_sent < 0 or delta_rexmit < 0:
                continue
            source = f"{host_name}|{destination}"
            self._tsdb.record(now, source, "dest_segments_sent", float(delta_sent))
            self._tsdb.record(
                now, source, "dest_segments_retransmitted", float(delta_rexmit)
            )

    def _observe_and_group(
        self,
    ) -> tuple[dict[Prefix, list[Observation]], dict[Prefix, PathHealth]]:
        """Poll ``ss``; group windows and path health by destination key.

        Resilience: a failed poll (``ss`` erroring outright) yields an
        empty observation set and the agent carries on — learned entries
        are simply not refreshed this tick, and the TTL sweep remains
        the backstop if the tool never recovers.  Partial output needs
        no special handling: whatever sockets *did* make it into the
        snapshot are used, the rest age toward their TTL.
        """
        try:
            snapshots = self.host.ss.tcp_info(
                established_only=True,
                outgoing_only=self.config.outgoing_only,
            )
        except ToolError as error:
            self.stats.poll_failures += 1
            self._m_poll_failures.inc()
            self._trace.record(
                self.host.sim.now,
                EventType.TOOL_ERROR,
                self.host.name,
                tool="ss",
                error=str(error),
            )
            return {}, {}
        grouped: dict[Prefix, list[Observation]] = {}
        health: dict[Prefix, PathHealth] = {}
        track_health = self._guard is not None
        for info in snapshots:
            key = self._grouper.key_for(info.remote_address)
            grouped.setdefault(key, []).append(
                Observation(
                    cwnd=info.cwnd,
                    bytes_acked=info.bytes_acked,
                    srtt=info.srtt,
                )
            )
            if track_health:
                entry = health.get(key)
                if entry is None:
                    entry = health[key] = PathHealth()
                entry.add(
                    info.segments_sent, info.segments_retransmitted, info.srtt
                )
            self.stats.connections_observed += 1
            self._m_observed.inc()
        return grouped, health

    def _install(self, destination: Prefix, window: int, now: float) -> None:
        previous = self._learned.get(destination)
        self._learned.record(destination, window, now)
        # Apply when the window changed — or when the remembered window
        # does not match what is actually installed (a route deleted out
        # from under us, a host reboot): trusting the learned table alone
        # would strand the divergence forever, since an unchanged window
        # skips this branch on every subsequent tick.
        if (
            previous is None
            or previous.window != window
            or self.installed_window(destination) != window
        ):
            if self._attempt_apply(destination, window):
                self.stats.routes_installed += 1
                self._m_installed.inc()
                self._trace.record(
                    now,
                    EventType.ROUTE_INSTALLED,
                    self.host.name,
                    destination=str(destination),
                    window=window,
                    previous=previous.window if previous is not None else None,
                )
        if self._record_window_history:
            self.stats.window_history.append((now, window))

    # ------------------------------------------------------------------
    # resilience: bounded retry-with-backoff on tool errors
    # ------------------------------------------------------------------

    def _attempt_apply(self, destination: Prefix, window: int) -> bool:
        """Apply a window; on tool failure, start the retry ladder."""
        try:
            self._apply_window(destination, window)
            return True
        except ToolError as error:
            self._note_tool_error("replace", destination, error)
            if self.config.tool_retry_limit > 0:
                self.host.sim.schedule(
                    self.config.tool_retry_backoff,
                    self._retry_install,
                    destination,
                    window,
                    1,
                )
            return False

    def _retry_install(self, destination: Prefix, window: int, attempt: int) -> None:
        """One rung of the install retry ladder (backoff doubles)."""
        entry = self._learned.get(destination)
        if entry is None or entry.window != window or not self.running:
            return  # superseded, expired, or the agent is gone
        if self.installed_window(destination) == window:
            return  # a later tick already healed it
        now = self.host.sim.now
        self.stats.tool_retries += 1
        self._m_tool_retries.inc()
        try:
            self._apply_window(destination, window)
        except ToolError as error:
            self._note_tool_error("replace", destination, error)
            if attempt < self.config.tool_retry_limit:
                self.host.sim.schedule(
                    self.config.tool_retry_backoff * (2.0 ** attempt),
                    self._retry_install,
                    destination,
                    window,
                    attempt + 1,
                )
            return
        self.stats.routes_installed += 1
        self._m_installed.inc()
        self._trace.record(
            now,
            EventType.ROUTE_INSTALLED,
            self.host.name,
            destination=str(destination),
            window=window,
            retry=attempt,
        )

    def _retry_withdraw(self, destination: Prefix, attempt: int) -> None:
        """One rung of the withdraw retry ladder."""
        if self._learned.get(destination) is not None:
            return  # re-learned meanwhile; the install path owns it again
        now = self.host.sim.now
        self.stats.tool_retries += 1
        self._m_tool_retries.inc()
        try:
            self.host.ip.route_del(destination)
        except KeyError:
            return  # nothing left to withdraw
        except ToolError as error:
            self._note_tool_error("del", destination, error)
            if attempt < self.config.tool_retry_limit:
                self.host.sim.schedule(
                    self.config.tool_retry_backoff * (2.0 ** attempt),
                    self._retry_withdraw,
                    destination,
                    attempt + 1,
                )
            return
        self.stats.routes_withdrawn += 1
        self._m_withdrawn.inc()
        self._trace.record(
            now,
            EventType.ROUTE_WITHDRAWN,
            self.host.name,
            destination=str(destination),
            reason="retry",
        )

    def _note_tool_error(
        self, verb: str, destination: Prefix, error: ToolError
    ) -> None:
        self.stats.tool_errors += 1
        self._m_tool_errors.inc()
        self._trace.record(
            self.host.sim.now,
            EventType.TOOL_ERROR,
            self.host.name,
            tool="ip",
            verb=verb,
            destination=str(destination),
            error=str(error),
        )

    # ------------------------------------------------------------------
    # resilience: the safety guard
    # ------------------------------------------------------------------

    def _guard_trip(self, destination: Prefix, reason: str, now: float) -> None:
        """Revert a hostile destination to the kernel default (IW10)."""
        assert self._guard is not None
        self.stats.guard_trips += 1
        self._m_guard_trips.inc()
        if self._obs_on:
            # SLO tap: one withdrawal event sample, summed per window by
            # the guard_withdrawal_rate signal.
            self._tsdb.record(now, self.host.name, "guard_trips", 1.0)
        entry = self._learned.remove(destination)
        self._policy.on_guard_trip(destination, reason, now)
        self._trace.record(
            now,
            EventType.GUARD_TRIPPED,
            self.host.name,
            destination=str(destination),
            reason=reason,
            window=entry.window if entry is not None else None,
            hold=self._guard.hold,
        )
        if self._obs_on:
            self._spans.end(self._guard_spans.pop(destination, None), now)
            span = self._spans.begin(
                now,
                f"guard-hold {destination}",
                "guard",
                self.host.name,
                parent=self._poll_span,
                destination=str(destination),
                reason=reason,
                window=entry.window if entry is not None else None,
                hold=self._guard.hold,
            )
            if span is not None:
                self._guard_spans[destination] = span
        # Withdraw whatever is actually installed — the learned entry
        # when there is one, but also a stale post-crash route the agent
        # no longer remembers learning.
        if entry is not None or self.installed_window(destination) is not None:
            if self._withdraw(destination):
                self.stats.routes_withdrawn += 1
                self._m_withdrawn.inc()
                self._trace.record(
                    now,
                    EventType.ROUTE_WITHDRAWN,
                    self.host.name,
                    destination=str(destination),
                    window=entry.window if entry is not None else None,
                    reason="guard",
                )

    def _apply_window(self, destination: Prefix, window: int) -> None:
        """Make ``window`` effective for new connections to ``destination``.

        The user-space implementation (this class) programs a route, the
        mechanism the paper deploys; :class:`~repro.core.kernel_mode.
        KernelModeAgent` overrides this with an in-kernel hook.
        """
        initrwnd = self.config.c_max if self.config.set_initrwnd else None
        self.host.ip.route_replace(destination, initcwnd=window, initrwnd=initrwnd)

    def _expire(self, now: float) -> None:
        for entry in self._learned.pop_expired(now):
            self._withdraw(entry.destination)
            self._policy.forget(entry.destination)
            if self._guard is not None:
                self._guard.forget(entry.destination)
            self.stats.routes_expired += 1
            self._m_expired.inc()
            self._trace.record(
                now,
                EventType.ROUTE_EXPIRED,
                self.host.name,
                destination=str(entry.destination),
                window=entry.window,
            )

    def _withdraw(self, destination: Prefix) -> bool:
        """Remove the effect of :meth:`_apply_window` (TTL expiry).

        Returns True when the route is gone (deleted, or already absent);
        False when the tool failed and a retry ladder was started.
        """
        try:
            self.host.ip.route_del(destination)
        except KeyError:
            # The route was removed out from under us (e.g. an operator
            # cleaned the table); nothing left to withdraw.
            pass
        except ToolError as error:
            self._note_tool_error("del", destination, error)
            if self.config.tool_retry_limit > 0:
                self.host.sim.schedule(
                    self.config.tool_retry_backoff,
                    self._retry_withdraw,
                    destination,
                    1,
                )
            return False
        return True

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"<RiptideAgent host={self.host.address} {state} "
            f"learned={len(self._learned)}>"
        )
