"""Riptide's tunable parameters (the paper's Table I).

| Parameter | Use                                      | Paper value   |
|-----------|------------------------------------------|---------------|
| alpha     | Weight applied to historical data        | (tunable)     |
| i_u       | Update interval to poll current windows  | 1 second      |
| t         | Time-to-live of a stored window          | 90 seconds    |
| c_max     | Maximum allowed window                   | 100 (chosen)  |
| c_min     | Minimum allowed window                   | 10 (default)  |
"""

from __future__ import annotations

from dataclasses import dataclass

VALID_COMBINERS = ("average", "max", "traffic_weighted")
VALID_HISTORY = ("ewma", "windowed", "none")
VALID_GRANULARITY = ("host", "prefix")
#: Window-decision policies (the zoo in ``repro.policy``).  Duplicated
#: from ``repro.policy.registry`` — importing it here would be a cycle;
#: a test pins the two lists together.
VALID_POLICIES = (
    "ewma",
    "hostclass",
    "iw10",
    "iw16",
    "iw32",
    "iw46",
    "p75",
    "p90",
    "rtt_cmax",
    "tunable",
)


@dataclass(frozen=True)
class RiptideConfig:
    """Parameters controlling one Riptide agent."""

    #: Weight applied to the historical value in the EWMA (Table I alpha).
    alpha: float = 0.7
    #: Seconds between ``ss`` polls (Table I i_u; 1 s in the evaluation).
    update_interval: float = 1.0
    #: Seconds before an unrefreshed entry expires (Table I t; 90 s).
    ttl: float = 90.0
    #: Window clamp (Table I c_max; the evaluation selects 100).
    c_max: int = 100
    #: Window clamp (Table I c_min; the Linux default of 10).
    c_min: int = 10
    #: Window-decision policy (``repro.policy``); "ewma" is the paper's.
    policy: str = "ewma"
    #: How simultaneous observations to one destination are combined.
    combiner: str = "average"
    #: How new values fold into per-destination history.
    history: str = "ewma"
    #: Window size for the "windowed" history policy.
    history_window: int = 10
    #: Route granularity: per-host /32 routes or broader prefixes.
    granularity: str = "host"
    #: Prefix length used when granularity is "prefix".
    prefix_length: int = 16
    #: Also set initrwnd on installed routes (Section III-C suggests the
    #: receive window must cover c_max; deployments may do this once,
    #: host-wide, instead).
    set_initrwnd: bool = False
    #: Only learn from outgoing (client) connections when True; the paper
    #: observes all open connections.
    outgoing_only: bool = False
    #: Section V extension: when a destination's combined window collapses
    #: suddenly, penalise its initial window beyond what the smoothing
    #: would do ("aggressively decrease the initial windows").
    trend_detection: bool = False
    #: Fractional single-tick drop that counts as a collapse.
    trend_drop_threshold: float = 0.5
    #: Multiplier applied to the final window while the penalty holds.
    trend_penalty: float = 0.5
    #: Seconds the penalty stays in force after a trigger.
    trend_hold: float = 10.0
    #: Resilience: bounded retries when a tool command (``ip route``)
    #: fails.  0 disables retries; the next poll tick still self-heals.
    tool_retry_limit: int = 3
    #: Base backoff before the first retry; doubles per attempt.
    tool_retry_backoff: float = 0.5
    #: Resilience: the safety guard withdraws the learned route of any
    #: destination whose observed loss or RTT spikes, restoring the
    #: kernel default IW10 until the path looks healthy again.
    safety_guard: bool = False
    #: Retransmit fraction (per poll window) that trips the guard.
    guard_loss_threshold: float = 0.15
    #: Multiple of the destination's smoothed-RTT baseline that trips it.
    guard_rtt_factor: float = 3.0
    #: Minimum segments sent in the poll window before loss is judged.
    guard_min_segments: int = 20
    #: Seconds a tripped destination stays at the kernel default.
    guard_hold: float = 30.0
    #: Observability: seconds between :class:`~repro.cdn.monitors.
    #: TimelineSampler` snapshots (and the default SLO evaluation
    #: cadence), so SLO windows and sampling align per-experiment.
    timeline_sample_interval: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {self.alpha}")
        if self.update_interval <= 0:
            raise ValueError(
                f"update_interval must be positive, got {self.update_interval}"
            )
        if self.ttl <= 0:
            raise ValueError(f"ttl must be positive, got {self.ttl}")
        if self.c_min < 1:
            raise ValueError(f"c_min must be >= 1, got {self.c_min}")
        if self.c_max < self.c_min:
            raise ValueError(
                f"c_max ({self.c_max}) must be >= c_min ({self.c_min})"
            )
        if self.policy not in VALID_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{', '.join(VALID_POLICIES)}"
            )
        if self.combiner not in VALID_COMBINERS:
            raise ValueError(
                f"unknown combiner {self.combiner!r}; expected one of "
                f"{', '.join(VALID_COMBINERS)}"
            )
        if self.history not in VALID_HISTORY:
            raise ValueError(
                f"unknown history policy {self.history!r}; expected one of "
                f"{', '.join(VALID_HISTORY)}"
            )
        if self.history_window < 1:
            raise ValueError(
                f"history_window must be >= 1, got {self.history_window}"
            )
        if self.granularity not in VALID_GRANULARITY:
            raise ValueError(
                f"unknown granularity {self.granularity!r}; expected one of "
                f"{', '.join(VALID_GRANULARITY)}"
            )
        if not 0 <= self.prefix_length <= 32:
            raise ValueError(
                f"prefix_length out of range: {self.prefix_length}"
            )
        if not 0.0 < self.trend_drop_threshold < 1.0:
            raise ValueError(
                f"trend_drop_threshold must be in (0, 1), got "
                f"{self.trend_drop_threshold}"
            )
        if not 0.0 < self.trend_penalty <= 1.0:
            raise ValueError(
                f"trend_penalty must be in (0, 1], got {self.trend_penalty}"
            )
        if self.trend_hold <= 0:
            raise ValueError(
                f"trend_hold must be positive, got {self.trend_hold}"
            )
        if self.tool_retry_limit < 0:
            raise ValueError(
                f"tool_retry_limit must be >= 0, got {self.tool_retry_limit}"
            )
        if self.tool_retry_backoff <= 0:
            raise ValueError(
                f"tool_retry_backoff must be positive, got "
                f"{self.tool_retry_backoff}"
            )
        if not 0.0 < self.guard_loss_threshold < 1.0:
            raise ValueError(
                f"guard_loss_threshold must be in (0, 1), got "
                f"{self.guard_loss_threshold}"
            )
        if self.guard_rtt_factor <= 1.0:
            raise ValueError(
                f"guard_rtt_factor must be > 1, got {self.guard_rtt_factor}"
            )
        if self.guard_min_segments < 1:
            raise ValueError(
                f"guard_min_segments must be >= 1, got {self.guard_min_segments}"
            )
        if self.guard_hold <= 0:
            raise ValueError(
                f"guard_hold must be positive, got {self.guard_hold}"
            )
        if self.timeline_sample_interval <= 0:
            raise ValueError(
                f"timeline_sample_interval must be positive, got "
                f"{self.timeline_sample_interval}"
            )

    def clamp(self, window: float) -> int:
        """Bound a computed window to ``[c_min, c_max]`` (Algorithm 1)."""
        return int(round(min(max(window, float(self.c_min)), float(self.c_max))))
