"""The learned-window table with TTL expiry (Algorithm 1's output side).

Each destination Riptide has decided a window for is tracked here, with
the time it was last refreshed.  "Final values are further stored with a
time-to-live value t ... If the time-to-live expires, the entry is
removed from the table, and the corresponding route is removed, restoring
the default initial congestion window."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import Prefix


@dataclass
class LearnedEntry:
    """One destination's learned state."""

    destination: Prefix
    window: int
    updated_at: float
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class LearnedTable:
    """Learned windows keyed by destination prefix."""

    def __init__(self, ttl: float) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.ttl = ttl
        self._entries: dict[Prefix, LearnedEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, destination: Prefix) -> bool:
        return destination in self._entries

    def get(self, destination: Prefix) -> LearnedEntry | None:
        return self._entries.get(destination)

    def record(self, destination: Prefix, window: int, now: float) -> LearnedEntry:
        """Store (or refresh) a learned window, resetting its TTL."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        entry = LearnedEntry(
            destination=destination,
            window=window,
            updated_at=now,
            expires_at=now + self.ttl,
        )
        self._entries[destination] = entry
        return entry

    def clear(self) -> None:
        """Drop every entry (agent stop with route removal)."""
        self._entries.clear()

    def remove(self, destination: Prefix) -> LearnedEntry | None:
        """Drop one entry (safety-guard withdrawal); None when absent."""
        return self._entries.pop(destination, None)

    def pop_expired(self, now: float) -> list[LearnedEntry]:
        """Remove and return every entry whose TTL has lapsed."""
        expired = [e for e in self._entries.values() if e.expired(now)]
        for entry in expired:
            del self._entries[entry.destination]
        return expired

    def entries(self) -> list[LearnedEntry]:
        """All live entries, most recently updated first."""
        return sorted(
            self._entries.values(), key=lambda e: e.updated_at, reverse=True
        )

    def windows(self) -> dict[Prefix, int]:
        """Destination -> learned window, for quick inspection."""
        return {dest: entry.window for dest, entry in self._entries.items()}

    def __repr__(self) -> str:
        return f"<LearnedTable entries={len(self._entries)} ttl={self.ttl}s>"
