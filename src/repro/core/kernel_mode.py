"""The kernel-mode Riptide variant (Section V, "Kernel Implementation").

"Riptide could further be implemented directly in the Linux kernel.
Such an implementation would likely reduce load, as an external program
no longer has to monitor all open connections, and potentially enable
higher granularity computations.  It could further allow setting of
initial congestion windows on a per connection basis, rather than per
route."

:class:`KernelModeAgent` runs the exact same Algorithm 1 control loop as
the user-space agent, but instead of programming routes through ``ip``,
it registers an in-kernel resolver hook that new connections consult at
establishment time.  Consequences the paper predicts, reproduced here:

* zero route-table churn (``host.ip`` is never touched), and
* per-connection resolution: the hook sees the exact destination of each
  connect/accept, so no route aggregation artefacts arise.
"""

from __future__ import annotations

from repro.core.agent import RiptideAgent
from repro.core.config import RiptideConfig
from repro.linux.host import Host
from repro.net.addresses import IPv4Address, Prefix


class KernelModeAgent(RiptideAgent):
    """Algorithm 1 driving a kernel hook instead of the route table."""

    def __init__(
        self,
        host: Host,
        config: RiptideConfig | None = None,
        record_window_history: bool = False,
        window_history_limit: int | None = None,
    ) -> None:
        super().__init__(
            host,
            config,
            record_window_history,
            window_history_limit=window_history_limit,
        )
        self._windows: dict[Prefix, int] = {}
        # Bind once: Python creates a fresh bound-method object on every
        # attribute access, so identity checks need a stable reference.
        self._hook = self._resolve

    # ------------------------------------------------------------------
    # lifecycle: claim and release the kernel hook
    # ------------------------------------------------------------------

    def start(self, initial_delay: float | None = None) -> None:
        if self.host.initcwnd_hook is not None and (
            self.host.initcwnd_hook is not self._hook
        ):
            raise RuntimeError(
                f"host {self.host.address} already has an initcwnd hook"
            )
        self.host.initcwnd_hook = self._hook
        super().start(initial_delay=initial_delay)

    def stop(self, remove_routes: bool = True) -> None:
        super().stop(remove_routes=remove_routes)
        if self.host.initcwnd_hook is self._hook:
            self.host.initcwnd_hook = None

    # ------------------------------------------------------------------
    # the in-kernel resolver
    # ------------------------------------------------------------------

    def _resolve(self, destination: IPv4Address) -> int | None:
        """Per-connection initial-window resolution (the kernel path)."""
        key = self._grouper.key_for(destination)
        return self._windows.get(key)

    def _apply_window(self, destination: Prefix, window: int) -> None:
        self._windows[destination] = window

    def _withdraw(self, destination: Prefix) -> bool:
        self._windows.pop(destination, None)
        return True

    def installed_window(self, destination: Prefix) -> int | None:
        """Kernel mode installs into the hook map, not the route table."""
        return self._windows.get(destination)

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"<KernelModeAgent host={self.host.address} {state} "
            f"windows={len(self._windows)}>"
        )
