"""History policies (Section III-B, "The use of history is also flexible").

A history policy folds each tick's freshly combined value into the
destination's past.  The paper's deployment uses an exponentially
weighted moving average: "assigning alpha weight to the historical value,
and 1 - alpha to the newly seen value", which "prevents the congestion
window from enacting dangerous increases, and likewise prevents the
window from plummeting" on connection churn.  Alternatives from the
discussion: a longer-view windowed mean, or no history at all.

Policies are stateful per destination key; :meth:`HistoryPolicy.forget`
drops a destination's state when its TTL expires.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Hashable


class HistoryPolicy(ABC):
    """Per-destination temporal smoothing."""

    name = "abstract"

    @abstractmethod
    def update(self, key: Hashable, new_value: float) -> float:
        """Fold ``new_value`` into ``key``'s history; return the result."""

    @abstractmethod
    def forget(self, key: Hashable) -> None:
        """Drop all state for ``key`` (TTL expiry)."""

    @abstractmethod
    def tracked_keys(self) -> set[Hashable]:
        """Keys with live history state."""


class EwmaHistory(HistoryPolicy):
    """The paper's policy: ``alpha * previous + (1 - alpha) * new``."""

    name = "ewma"

    def __init__(self, alpha: float) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self._state: dict[Hashable, float] = {}

    def update(self, key: Hashable, new_value: float) -> float:
        previous = self._state.get(key)
        if previous is None:
            result = new_value
        else:
            result = self.alpha * previous + (1.0 - self.alpha) * new_value
        self._state[key] = result
        return result

    def forget(self, key: Hashable) -> None:
        self._state.pop(key, None)

    def tracked_keys(self) -> set[Hashable]:
        return set(self._state)


class WindowedHistory(HistoryPolicy):
    """Longer-view smoothing: the mean of the last ``window`` values."""

    name = "windowed"

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._state: dict[Hashable, deque[float]] = {}

    def update(self, key: Hashable, new_value: float) -> float:
        values = self._state.get(key)
        if values is None:
            values = deque(maxlen=self.window)
            self._state[key] = values
        values.append(new_value)
        return sum(values) / len(values)

    def forget(self, key: Hashable) -> None:
        self._state.pop(key, None)

    def tracked_keys(self) -> set[Hashable]:
        return set(self._state)


class NoHistory(HistoryPolicy):
    """React instantly: the newest observation wins outright."""

    name = "none"

    def __init__(self) -> None:
        self._seen: set[Hashable] = set()

    def update(self, key: Hashable, new_value: float) -> float:
        self._seen.add(key)
        return new_value

    def forget(self, key: Hashable) -> None:
        self._seen.discard(key)

    def tracked_keys(self) -> set[Hashable]:
        return set(self._seen)


_POLICIES = {
    EwmaHistory.name: lambda alpha, window: EwmaHistory(alpha),
    WindowedHistory.name: lambda alpha, window: WindowedHistory(window),
    NoHistory.name: lambda alpha, window: NoHistory(),
}


def make_history_policy(name: str, alpha: float, window: int) -> HistoryPolicy:
    """Instantiate a history policy by its registered name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        # A config typo is a plain ValueError; the internal KeyError is
        # an implementation detail and would only muddy the traceback.
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(
            f"unknown history policy {name!r} (known: {known})"
        ) from None
    return factory(alpha, window)
