"""Operational advisories (Section V, "Additional Algorithms").

"If a cloud system were able to provide it with higher level information
(e.g., the need to perform immediate load balancing), it could be used
to set more conservative congestion windows to avoid sudden crowding."

An advisory is a time-bounded multiplicative scale applied to every
window Riptide computes, *after* clamping: the agent scales the
clamped window (flooring at ``c_min``) so that an operator halving
windows actually halves the installed values even when the raw computed
window sits above ``c_max`` — see ``RiptideAgent._tick``.  Overlapping
advisories compose by taking the most conservative (smallest) active
scale.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Advisory:
    """One active conservatism window."""

    scale: float
    until: float
    reason: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"advisory scale must be in (0, 1], got {self.scale}")

    def active(self, now: float) -> bool:
        return now < self.until


class AdvisoryController:
    """Tracks active advisories and produces the current scale."""

    def __init__(self) -> None:
        self._advisories: list[Advisory] = []

    def advise(
        self,
        scale: float,
        duration: float,
        now: float,
        reason: str = "",
    ) -> Advisory:
        """Register a conservatism advisory for ``duration`` seconds.

        Expired advisories are pruned as a side effect: a controller
        that only ever calls ``advise()`` (never ``scale_at``, e.g. on
        an agent whose poll loop is stopped) must not accumulate dead
        entries without bound.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self._advisories = [a for a in self._advisories if a.active(now)]
        advisory = Advisory(scale=scale, until=now + duration, reason=reason)
        self._advisories.append(advisory)
        return advisory

    def clear(self) -> None:
        """Drop all advisories immediately."""
        self._advisories.clear()

    def scale_at(self, now: float) -> float:
        """The most conservative active scale (1.0 when none active).

        Expired advisories are pruned as a side effect.
        """
        self._advisories = [a for a in self._advisories if a.active(now)]
        if not self._advisories:
            return 1.0
        return min(a.scale for a in self._advisories)

    def active_advisories(self, now: float) -> list[Advisory]:
        return [a for a in self._advisories if a.active(now)]

    def __repr__(self) -> str:
        return f"<AdvisoryController advisories={len(self._advisories)}>"
