"""Combination algorithms (Section III-B, "Combination Algorithm").

Each ``ss`` poll yields several concurrent observations toward one
destination; a combiner reduces them to a single candidate window.

* :class:`AverageCombiner` — the paper's deployed choice: "for each
  destination ... it computes the average congestion window over the
  observed values".
* :class:`MaxCombiner` — "a more aggressive system might use the maximum
  congestion window observed on a path ... the most the link is capable
  of handling".
* :class:`TrafficWeightedCombiner` — "a more conservative system might
  instead weight the value of an observed window by the amount of
  traffic that has passed through the link".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class Observation:
    """One connection's contribution to a destination group."""

    cwnd: int
    bytes_acked: int = 0
    #: Smoothed RTT of the connection, when the snapshot carried one.
    #: Combiners ignore it; RTT-aware policies (``repro.policy``) read it.
    srtt: float | None = None

    def __post_init__(self) -> None:
        if self.cwnd < 1:
            raise ValueError(f"cwnd must be >= 1, got {self.cwnd}")
        if self.bytes_acked < 0:
            raise ValueError(f"bytes_acked must be >= 0, got {self.bytes_acked}")
        if self.srtt is not None and self.srtt < 0:
            raise ValueError(f"srtt must be >= 0, got {self.srtt}")


class Combiner(ABC):
    """Reduces a non-empty group of observations to a candidate window."""

    name = "abstract"

    @abstractmethod
    def combine(self, observations: list[Observation]) -> float:
        """Return the combined window.  ``observations`` is non-empty."""

    def _require_observations(self, observations: list[Observation]) -> None:
        if not observations:
            raise ValueError("combine() requires at least one observation")


class AverageCombiner(Combiner):
    """The paper's deployed combiner: plain mean of current windows."""

    name = "average"

    def combine(self, observations: list[Observation]) -> float:
        self._require_observations(observations)
        return sum(obs.cwnd for obs in observations) / len(observations)


class MaxCombiner(Combiner):
    """Aggressive: the largest window any connection achieved."""

    name = "max"

    def combine(self, observations: list[Observation]) -> float:
        self._require_observations(observations)
        return float(max(obs.cwnd for obs in observations))


class TrafficWeightedCombiner(Combiner):
    """Conservative: weight each window by the traffic it carried.

    Idle connections (zero bytes acked) contribute with a small floor
    weight so a group of entirely idle connections still combines.
    """

    name = "traffic_weighted"

    #: Weight given to a connection that has carried no traffic yet.
    IDLE_FLOOR_BYTES = 1.0

    def combine(self, observations: list[Observation]) -> float:
        self._require_observations(observations)
        total_weight = 0.0
        weighted_sum = 0.0
        for obs in observations:
            weight = max(float(obs.bytes_acked), self.IDLE_FLOOR_BYTES)
            total_weight += weight
            weighted_sum += weight * obs.cwnd
        return weighted_sum / total_weight


_COMBINERS = {
    AverageCombiner.name: AverageCombiner,
    MaxCombiner.name: MaxCombiner,
    TrafficWeightedCombiner.name: TrafficWeightedCombiner,
}


def make_combiner(name: str) -> Combiner:
    """Instantiate a combiner by its registered name."""
    try:
        return _COMBINERS[name]()
    except KeyError:
        # A config typo is a plain ValueError; the internal KeyError is
        # an implementation detail and would only muddy the traceback.
        known = ", ".join(sorted(_COMBINERS))
        raise ValueError(f"unknown combiner {name!r} (known: {known})") from None
