"""The safety guard: revert hostile paths to the kernel default.

Rüth & Hohlfeld's CDN initial-window study makes the stakes of learned
initcwnds concrete: an aggressive first flight is only safe while the
path can absorb it.  Riptide learns large windows from *healthy*
history; when the network turns hostile (a loss storm, a rerouted path
with triple the RTT), continuing to jump-start new connections at the
learned window amplifies the damage — every fresh connection slams a
degraded path with a burst sized for the old one.

:class:`SafetyGuard` watches the same ``ss`` snapshots the agent already
polls.  Per destination it judges two signals:

* **loss** — the fraction of segments retransmitted, accumulated across
  poll windows until at least ``min_segments`` segments have flowed (a
  path collapsed by the very loss being hunted may trickle only a
  segment or two per poll, so single-window judgement would never fire);
* **RTT** — each poll window's mean smoothed RTT against an EWMA
  baseline learned while the path was healthy.

Either signal past its threshold *trips* the guard: the agent withdraws
the learned route (new connections fall back to the kernel default
IW10) and holds the destination at the default for ``hold`` seconds
before allowing relearning.  State is plain per-destination bookkeeping;
everything is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import Prefix

#: Weight of the existing baseline when folding in a new healthy RTT.
_RTT_BASELINE_ALPHA = 0.8

#: Samples above this multiple of the baseline are *elevated*: not yet a
#: trip, but not folded into the baseline either.  Without this gate a
#: slow-building storm ratchets the baseline upward poll by poll and the
#: spike never clears ``rtt_factor`` times the (creeping) baseline.
_RTT_HEALTHY_FACTOR = 1.5


@dataclass
class PathHealth:
    """Per-destination aggregates of one ``ss`` poll."""

    segments_sent: int = 0
    segments_retransmitted: int = 0
    srtt_sum: float = 0.0
    srtt_count: int = 0

    def add(self, sent: int, retransmitted: int, srtt: float | None) -> None:
        self.segments_sent += sent
        self.segments_retransmitted += retransmitted
        if srtt is not None:
            self.srtt_sum += srtt
            self.srtt_count += 1

    @property
    def srtt_mean(self) -> float | None:
        if self.srtt_count == 0:
            return None
        return self.srtt_sum / self.srtt_count


@dataclass
class _DestinationState:
    prev_sent: int = 0
    prev_retransmitted: int = 0
    #: Deltas accumulated across polls until ``min_segments`` is reached
    #: — a collapsed path trickles so few segments per poll that a
    #: single-window judgement would never fire.
    acc_sent: int = 0
    acc_retransmitted: int = 0
    rtt_baseline: float | None = None
    held_until: float | None = None

    def reset_accumulators(self) -> None:
        self.acc_sent = 0
        self.acc_retransmitted = 0


@dataclass
class GuardStats:
    """Counters for one guard instance."""

    trips_loss: int = 0
    trips_rtt: int = 0
    releases: int = 0

    @property
    def trips(self) -> int:
        return self.trips_loss + self.trips_rtt


class SafetyGuard:
    """Per-destination loss/RTT watchdog over the agent's poll stream."""

    def __init__(
        self,
        loss_threshold: float = 0.15,
        rtt_factor: float = 3.0,
        min_segments: int = 20,
        hold: float = 30.0,
    ) -> None:
        if not 0.0 < loss_threshold < 1.0:
            raise ValueError(
                f"loss_threshold must be in (0, 1), got {loss_threshold}"
            )
        if rtt_factor <= 1.0:
            raise ValueError(f"rtt_factor must be > 1, got {rtt_factor}")
        if min_segments < 1:
            raise ValueError(f"min_segments must be >= 1, got {min_segments}")
        if hold <= 0:
            raise ValueError(f"hold must be positive, got {hold}")
        self.loss_threshold = float(loss_threshold)
        self.rtt_factor = float(rtt_factor)
        self.min_segments = int(min_segments)
        self.hold = float(hold)
        self.stats = GuardStats()
        self._state: dict[Prefix, _DestinationState] = {}

    # ------------------------------------------------------------------
    # hold bookkeeping
    # ------------------------------------------------------------------

    def holding(self, destination: Prefix, now: float) -> bool:
        """True while ``destination`` is pinned at the kernel default."""
        state = self._state.get(destination)
        return (
            state is not None
            and state.held_until is not None
            and now < state.held_until
        )

    def release_expired(self, now: float) -> list[Prefix]:
        """Pop and return destinations whose hold just lapsed."""
        released = []
        for destination, state in self._state.items():
            if state.held_until is not None and now >= state.held_until:
                state.held_until = None
                # The path may still be slow; relearn the baseline fresh
                # rather than spike-comparing against pre-fault history,
                # and judge loss on post-hold traffic only.
                state.rtt_baseline = None
                state.reset_accumulators()
                self.stats.releases += 1
                released.append(destination)
        return released

    def held_destinations(self) -> list[Prefix]:
        return [
            destination
            for destination, state in self._state.items()
            if state.held_until is not None
        ]

    # ------------------------------------------------------------------
    # the verdict
    # ------------------------------------------------------------------

    def observe(
        self, destination: Prefix, health: PathHealth, now: float
    ) -> str | None:
        """Fold one poll window in; returns a trip reason or ``None``.

        A returned reason (``"loss_spike"`` / ``"rtt_spike"``) means the
        caller must withdraw the destination's learned route; the guard
        has already started the hold timer.
        """
        state = self._state.get(destination)
        if state is None:
            state = self._state[destination] = _DestinationState()
        if state.held_until is not None:
            # Already tripped; don't re-trip (and don't poison the
            # baseline with fault-window samples).
            self._rebaseline_counters(state, health)
            return None

        delta_sent = health.segments_sent - state.prev_sent
        delta_rexmit = health.segments_retransmitted - state.prev_retransmitted
        self._rebaseline_counters(state, health)
        if delta_sent < 0 or delta_rexmit < 0:
            # Socket churn shrank the totals; these deltas (and whatever
            # was accumulating) are unjudgeable.
            state.reset_accumulators()
            return None

        # Accumulate until enough segments have flowed to judge loss —
        # a path collapsed by the very loss we are hunting may move only
        # a segment or two per poll.
        state.acc_sent += delta_sent
        state.acc_retransmitted += delta_rexmit
        if state.acc_sent >= self.min_segments:
            loss = state.acc_retransmitted / state.acc_sent
            state.reset_accumulators()
            if loss > self.loss_threshold:
                state.held_until = now + self.hold
                self.stats.trips_loss += 1
                return "loss_spike"

        srtt = health.srtt_mean
        if srtt is not None:
            baseline = state.rtt_baseline
            if baseline is None:
                state.rtt_baseline = srtt
            elif srtt > self.rtt_factor * baseline:
                state.held_until = now + self.hold
                self.stats.trips_rtt += 1
                return "rtt_spike"
            elif srtt <= _RTT_HEALTHY_FACTOR * baseline:
                state.rtt_baseline = (
                    _RTT_BASELINE_ALPHA * baseline
                    + (1.0 - _RTT_BASELINE_ALPHA) * srtt
                )
            # else: elevated but below the trip factor — hold the
            # baseline steady rather than learning the degradation.
        return None

    @staticmethod
    def _rebaseline_counters(state: _DestinationState, health: PathHealth) -> None:
        state.prev_sent = health.segments_sent
        state.prev_retransmitted = health.segments_retransmitted

    def forget(self, destination: Prefix) -> None:
        """Drop all state for a destination (TTL expiry, agent stop)."""
        self._state.pop(destination, None)

    def reset(self) -> None:
        """Forget everything (agent crash: in-memory state is gone)."""
        self._state.clear()

    def __repr__(self) -> str:
        return (
            f"<SafetyGuard tracked={len(self._state)} "
            f"held={len(self.held_destinations())} trips={self.stats.trips}>"
        )
