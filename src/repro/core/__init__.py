"""Riptide: the paper's contribution.

A user-space agent that periodically polls the congestion windows of a
host's open connections (via the ``ss`` surface), groups them by
destination, combines each group into a candidate window, folds it into
per-destination history, clamps it to ``[c_min, c_max]`` and installs it
as the initial congestion window of a route (via the ``ip`` surface).
Entries expire after a TTL, restoring the kernel default.

The pluggable pieces mirror Section III-B's design discussion:

* **combiners** — average (paper default), max (aggressive),
  traffic-weighted (conservative);
* **history policies** — EWMA (paper default), windowed mean, none;
* **granularity** — per-host ``/32`` routes or broader prefix routes.
"""

from repro.core.advisory import Advisory, AdvisoryController
from repro.core.agent import AgentStats, RiptideAgent
from repro.core.combiners import (
    AverageCombiner,
    Combiner,
    MaxCombiner,
    Observation,
    TrafficWeightedCombiner,
    make_combiner,
)
from repro.core.config import RiptideConfig
from repro.core.granularity import DestinationGrouper
from repro.core.guard import GuardStats, PathHealth, SafetyGuard
from repro.core.history import (
    EwmaHistory,
    HistoryPolicy,
    NoHistory,
    WindowedHistory,
    make_history_policy,
)
from repro.core.kernel_mode import KernelModeAgent
from repro.core.observed import LearnedEntry, LearnedTable
from repro.core.trend import TrendDetector

__all__ = [
    "Advisory",
    "AdvisoryController",
    "AgentStats",
    "AverageCombiner",
    "Combiner",
    "DestinationGrouper",
    "EwmaHistory",
    "GuardStats",
    "HistoryPolicy",
    "KernelModeAgent",
    "PathHealth",
    "LearnedEntry",
    "LearnedTable",
    "MaxCombiner",
    "NoHistory",
    "Observation",
    "RiptideAgent",
    "RiptideConfig",
    "SafetyGuard",
    "TrafficWeightedCombiner",
    "TrendDetector",
    "WindowedHistory",
    "make_combiner",
    "make_history_policy",
]
