"""Trend detection (Section V, "Additional Algorithms").

"A significant decrease in congestion window over a short time may
indicate the need to aggressively decrease the initial windows, beyond
what is happening to existing connections."

The detector compares each tick's freshly combined value against the
previous one per destination.  A drop steeper than ``drop_threshold``
triggers a penalty: for the next ``hold`` seconds the destination's
final window is additionally multiplied by ``penalty`` — shrinking the
initial window *faster* than the EWMA alone would.
"""

from __future__ import annotations

from collections.abc import Hashable


class TrendDetector:
    """Per-destination sudden-collapse detection."""

    def __init__(
        self,
        drop_threshold: float = 0.5,
        penalty: float = 0.5,
        hold: float = 10.0,
    ) -> None:
        if not 0.0 < drop_threshold < 1.0:
            raise ValueError(
                f"drop_threshold must be in (0, 1), got {drop_threshold}"
            )
        if not 0.0 < penalty <= 1.0:
            raise ValueError(f"penalty must be in (0, 1], got {penalty}")
        if hold <= 0:
            raise ValueError(f"hold must be positive, got {hold}")
        self.drop_threshold = drop_threshold
        self.penalty = penalty
        self.hold = hold
        self._previous: dict[Hashable, float] = {}
        self._held_until: dict[Hashable, float] = {}
        self.triggers = 0

    def observe(self, key: Hashable, candidate: float, now: float) -> float:
        """Record this tick's combined value; return the multiplier to
        apply to the destination's final window (1.0 or ``penalty``)."""
        previous = self._previous.get(key)
        self._previous[key] = candidate
        if previous is not None and candidate < previous * (1.0 - self.drop_threshold):
            self._held_until[key] = now + self.hold
            self.triggers += 1
        if self._held_until.get(key, 0.0) > now:
            return self.penalty
        self._held_until.pop(key, None)
        return 1.0

    def in_penalty(self, key: Hashable, now: float) -> bool:
        return self._held_until.get(key, 0.0) > now

    def forget(self, key: Hashable) -> None:
        self._previous.pop(key, None)
        self._held_until.pop(key, None)

    def __repr__(self) -> str:
        return (
            f"<TrendDetector drop>{self.drop_threshold:.0%} "
            f"penalty={self.penalty} triggers={self.triggers}>"
        )
