"""TCP CUBIC congestion control (RFC 8312 flavour).

CUBIC is the Linux default and therefore the algorithm running underneath
Riptide in the paper's deployment.  The implementation follows the RFC's
window function with the TCP-friendly region; HyStart is omitted (standard
slow start until ``ssthresh``), which matches the paper's Section II-B
model of start-up behaviour.
"""

from __future__ import annotations

from repro.tcp.cc.base import MIN_CWND, CongestionControl

#: CUBIC scaling constant (RFC 8312 recommends 0.4).
CUBIC_C = 0.4

#: Multiplicative decrease factor.
CUBIC_BETA = 0.7


class Cubic(CongestionControl):
    """CUBIC window growth with fast-convergence and a Reno-friendly floor."""

    name = "cubic"

    def __init__(self, initial_cwnd: int, mss: int) -> None:
        super().__init__(initial_cwnd=initial_cwnd, mss=mss)
        self._w_max: float = 0.0
        self._k: float = 0.0
        self._epoch_start: float | None = None
        self._w_tcp: float = 0.0
        self._acked_in_epoch: float = 0.0

    def _avoid_congestion(
        self, now: float, acked_segments: float, rtt: float | None
    ) -> None:
        if self._epoch_start is None:
            self._begin_epoch(now)
        t = now - self._epoch_start
        rtt = rtt if rtt is not None else 0.0
        target = self._w_cubic(t + rtt)
        if target > self.cwnd:
            # Standard per-ACK approach toward the cubic target.
            self.cwnd += (target - self.cwnd) / max(self.cwnd, 1.0) * acked_segments
        else:
            # Plateau region: creep so the window is not frozen forever.
            self.cwnd += 0.01 * acked_segments / max(self.cwnd, 1.0)
        # TCP-friendly region: never be slower than Reno-equivalent growth.
        self._acked_in_epoch += acked_segments
        self._w_tcp += (3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)) * (
            acked_segments / max(self.cwnd, 1.0)
        )
        if self._w_tcp > self.cwnd:
            self.cwnd = self._w_tcp

    def on_loss_event(self, now: float) -> None:
        # Fast convergence: if the window never regained the previous
        # maximum, assume capacity shrank and remember an even lower peak.
        if self.cwnd < self._w_max:
            self._w_max = self.cwnd * (1.0 + CUBIC_BETA) / 2.0
        else:
            self._w_max = self.cwnd
        self.ssthresh = max(self.cwnd * CUBIC_BETA, MIN_CWND)
        self._epoch_start = None

    def _begin_epoch(self, now: float) -> None:
        self._epoch_start = now
        if self._w_max == 0.0:
            # No loss yet (came out of slow start via explicit ssthresh):
            # treat the current window as the previous maximum.
            self._w_max = max(self.cwnd, 1.0)
        if self.cwnd < self._w_max:
            self._k = ((self._w_max - self.cwnd) / CUBIC_C) ** (1.0 / 3.0)
        else:
            self._k = 0.0
        self._w_tcp = self.cwnd
        self._acked_in_epoch = 0.0

    def _w_cubic(self, t: float) -> float:
        return CUBIC_C * (t - self._k) ** 3 + self._w_max
