"""The congestion-control interface.

Windows are held in *segments* (as Linux does).  ``cwnd`` is kept as a
float internally so sub-segment growth in congestion avoidance accumulates;
the socket uses :attr:`cwnd_segments` (the floor, never below 1) when
deciding whether it may transmit.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

#: ssthresh starts effectively unbounded (slow start until first loss).
INITIAL_SSTHRESH = float("inf")

#: Loss events never push the window below this (RFC 5681).
MIN_CWND = 2.0


class CongestionControl(ABC):
    """Base class for congestion-control algorithms."""

    name = "abstract"

    def __init__(self, initial_cwnd: int, mss: int) -> None:
        if initial_cwnd < 1:
            raise ValueError(f"initial cwnd must be >= 1, got {initial_cwnd}")
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        self.mss = mss
        self.initial_cwnd = int(initial_cwnd)
        self.cwnd: float = float(initial_cwnd)
        self.ssthresh: float = INITIAL_SSTHRESH

    @property
    def cwnd_segments(self) -> int:
        """Usable window in whole segments (>= 1)."""
        return max(1, math.floor(self.cwnd))

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, now: float, acked_bytes: int, rtt: float | None) -> None:
        """Grow the window for ``acked_bytes`` of newly acknowledged data."""
        acked_segments = acked_bytes / self.mss
        if acked_segments <= 0:
            return
        if self.in_slow_start:
            # Appropriate byte counting: one segment of growth per
            # segment-worth of acked data, capped at the slow-start exit.
            self.cwnd = min(self.cwnd + acked_segments, max(self.ssthresh, self.cwnd))
        else:
            self._avoid_congestion(now, acked_segments, rtt)

    @abstractmethod
    def _avoid_congestion(
        self, now: float, acked_segments: float, rtt: float | None
    ) -> None:
        """Grow the window while in congestion avoidance."""

    @abstractmethod
    def on_loss_event(self, now: float) -> None:
        """React to a fast-retransmit loss event (multiplicative decrease).

        Implementations must set ``ssthresh`` (and any internal epoch
        state); the socket sets ``cwnd = ssthresh`` when recovery exits.
        """

    def on_retransmit_timeout(self, now: float) -> None:
        """An RTO fired: collapse to one segment and re-enter slow start."""
        self.on_loss_event(now)
        self.cwnd = 1.0

    def after_recovery(self) -> None:
        """Called when NewReno fast recovery completes."""
        self.cwnd = max(self.ssthresh, MIN_CWND)

    def __repr__(self) -> str:
        ssthresh = "inf" if math.isinf(self.ssthresh) else f"{self.ssthresh:.1f}"
        return f"<{type(self).__name__} cwnd={self.cwnd:.2f} ssthresh={ssthresh}>"
