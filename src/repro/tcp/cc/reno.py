"""TCP Reno (RFC 5681) congestion control."""

from __future__ import annotations

from repro.tcp.cc.base import MIN_CWND, CongestionControl


class Reno(CongestionControl):
    """Classic AIMD: +1 segment per RTT in avoidance, halve on loss."""

    name = "reno"

    def _avoid_congestion(
        self, now: float, acked_segments: float, rtt: float | None
    ) -> None:
        # cwnd += 1/cwnd per acked segment => +1 segment per RTT.
        self.cwnd += acked_segments / max(self.cwnd, 1.0)

    def on_loss_event(self, now: float) -> None:
        self.ssthresh = max(self.cwnd / 2.0, MIN_CWND)
