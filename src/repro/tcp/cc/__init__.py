"""Pluggable congestion control.

Riptide deliberately leaves steady-state window dynamics to the kernel's
congestion control ("the behavior of the congestion window is handled by
the congestion control algorithm, for example via TCP Cubic").  The socket
therefore delegates all cwnd/ssthresh arithmetic to one of these classes,
seeded with whatever *initial* window the route table (i.e. Riptide)
prescribes.
"""

from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.cubic import Cubic
from repro.tcp.cc.reno import Reno
from repro.tcp.cc.vegas import Vegas

_REGISTRY = {
    "reno": Reno,
    "cubic": Cubic,
    "vegas": Vegas,
}


def make_congestion_control(
    name: str,
    initial_cwnd: int,
    mss: int,
) -> CongestionControl:
    """Instantiate a registered congestion control by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown congestion control {name!r} (known: {known})") from None
    return cls(initial_cwnd=initial_cwnd, mss=mss)


def register_congestion_control(name: str, cls: type[CongestionControl]) -> None:
    """Register a custom congestion control implementation."""
    if not issubclass(cls, CongestionControl):
        raise TypeError(f"{cls!r} is not a CongestionControl subclass")
    _REGISTRY[name] = cls


__all__ = [
    "CongestionControl",
    "Cubic",
    "Reno",
    "Vegas",
    "make_congestion_control",
    "register_congestion_control",
]
