"""TCP Vegas congestion control (delay-based).

Included because the paper argues Riptide "is applicable to any TCP
protocol that employs slow start" — Vegas is the classic delay-based
counterpoint to loss-based Reno/CUBIC and still begins with standard
slow start, so a Riptide-learned initial window applies unchanged.

The implementation follows Brakmo & Peterson: compare expected
throughput (cwnd / base_rtt) with actual throughput (cwnd / rtt); keep
the surplus between ``alpha`` and ``beta`` segments.
"""

from __future__ import annotations

from repro.tcp.cc.base import MIN_CWND, CongestionControl

#: Lower/upper bounds on queued segments the flow tries to keep in flight.
VEGAS_ALPHA = 2.0
VEGAS_BETA = 4.0


class Vegas(CongestionControl):
    """Delay-based congestion avoidance with standard slow start."""

    name = "vegas"

    def __init__(self, initial_cwnd: int, mss: int) -> None:
        super().__init__(initial_cwnd=initial_cwnd, mss=mss)
        self._base_rtt: float | None = None

    @property
    def base_rtt(self) -> float | None:
        """The smallest RTT seen (the propagation-delay estimate)."""
        return self._base_rtt

    def on_ack(self, now: float, acked_bytes: int, rtt: float | None) -> None:
        if rtt is not None and rtt > 0:
            if self._base_rtt is None or rtt < self._base_rtt:
                self._base_rtt = rtt
        super().on_ack(now, acked_bytes, rtt)

    def _avoid_congestion(
        self, now: float, acked_segments: float, rtt: float | None
    ) -> None:
        if rtt is None or rtt <= 0 or self._base_rtt is None:
            # No delay signal yet: fall back to Reno-style growth.
            self.cwnd += acked_segments / max(self.cwnd, 1.0)
            return
        expected = self.cwnd / self._base_rtt
        actual = self.cwnd / rtt
        surplus_segments = (expected - actual) * self._base_rtt
        step = acked_segments / max(self.cwnd, 1.0)
        if surplus_segments < VEGAS_ALPHA:
            self.cwnd += step
        elif surplus_segments > VEGAS_BETA:
            self.cwnd = max(self.cwnd - step, MIN_CWND)
        # Inside [alpha, beta]: hold steady.

    def on_loss_event(self, now: float) -> None:
        self.ssthresh = max(self.cwnd / 2.0, MIN_CWND)
