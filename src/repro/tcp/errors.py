"""Exception hierarchy for the TCP substrate."""


class TcpError(Exception):
    """Base class for TCP errors."""


class TcpStateError(TcpError):
    """An operation was attempted in a state that does not allow it."""
