"""TCP constants and per-host configuration.

Defaults mirror the Linux stack the paper runs on: MSS of 1460 bytes
(1500-byte packets), initial congestion window of 10 segments
(``TCP_INIT_CWND`` since kernel 2.6.39, the value the paper's Section II-B
model assumes), 200 ms minimum RTO, and CUBIC congestion control.
"""

from __future__ import annotations

from dataclasses import dataclass

#: TCP/IP header overhead charged per packet on the wire.
TCP_HEADER_BYTES = 40

#: Linux default MSS for 1500-byte MTU paths.
DEFAULT_MSS = 1460

#: Linux default initial congestion window (segments) — RFC 6928 / [4].
DEFAULT_INIT_CWND = 10

#: Linux default initial advertised receive window, in segments.
DEFAULT_INIT_RWND = 20

#: Linux TCP_RTO_MIN.
MIN_RTO = 0.200

#: Linux TCP_RTO_MAX.
MAX_RTO = 120.0

#: Initial RTO before any RTT sample (RFC 6298 says 1 s).
INITIAL_RTO = 1.0

#: Duplicate-ACK threshold for fast retransmit.
DUPACK_THRESHOLD = 3

#: Delayed-ACK timer (Linux quickack territory is 40 ms).
DELAYED_ACK_TIMEOUT = 0.040


@dataclass(frozen=True)
class TcpConfig:
    """Host-wide TCP tunables (the simulated sysctl surface).

    ``default_initcwnd`` applies when no route overrides it — Riptide's
    whole job is to install per-destination route overrides on top of this
    default.  ``default_initrwnd`` is the receive-side counterpart that
    Section III-C requires to be raised to at least ``c_max``.
    """

    mss: int = DEFAULT_MSS
    default_initcwnd: int = DEFAULT_INIT_CWND
    default_initrwnd: int = DEFAULT_INIT_RWND
    rmem_max_bytes: int = 6 * 1024 * 1024
    congestion_control: str = "cubic"
    delayed_ack: bool = False
    #: RFC 2861 / Linux tcp_slow_start_after_idle: a connection idle for
    #: longer than its RTO restarts from the *initial* window — which the
    #: kernel resolves through the route table, so a Riptide-learned
    #: initcwnd also governs restarts of reused connections.
    slow_start_after_idle: bool = True
    #: RFC 2018 selective acknowledgements.  Off by default in this
    #: reproduction (the calibrated experiments use NewReno recovery);
    #: enable to recover multi-loss windows without RTOs.
    sack: bool = False
    min_rto: float = MIN_RTO
    max_rto: float = MAX_RTO
    initial_rto: float = INITIAL_RTO

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError(f"mss must be positive, got {self.mss}")
        if self.default_initcwnd < 1:
            raise ValueError(
                f"default_initcwnd must be >= 1, got {self.default_initcwnd}"
            )
        if self.default_initrwnd < 1:
            raise ValueError(
                f"default_initrwnd must be >= 1, got {self.default_initrwnd}"
            )
        if self.rmem_max_bytes < self.mss:
            raise ValueError("rmem_max_bytes must hold at least one segment")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError("require 0 < min_rto <= max_rto")
