"""Passive opens: the listening socket.

A :class:`TcpListener` owns a port on a host.  Each incoming SYN creates a
fresh server-side :class:`~repro.tcp.socket.TcpSocket` whose initial
congestion window comes from the *host's route table* — so when Riptide on
a CDN server installs a learned ``initcwnd`` toward a peer PoP, responses
served from this listener start at that learned window.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.net.addresses import IPv4Address
from repro.tcp.errors import TcpError
from repro.tcp.wire import Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.linux.host import Host
    from repro.tcp.socket import TcpSocket

AcceptCallback = Callable[["TcpSocket"], None]


class TcpListener:
    """Accepts connections on one local port."""

    def __init__(
        self,
        host: "Host",
        port: int,
        on_accept: AcceptCallback | None = None,
    ) -> None:
        self._host = host
        self.port = port
        self.on_accept = on_accept
        self.connections_accepted = 0

    def handle_syn(self, segment: Segment, remote_address: IPv4Address) -> "TcpSocket":
        """Create and register the server-side socket for a new SYN."""
        if not segment.syn or segment.is_ack:
            raise TcpError("listener can only handle bare SYN segments")
        sock = self._host.create_server_socket(
            local_port=self.port,
            remote_address=remote_address,
            remote_port=segment.src_port,
        )
        self.connections_accepted += 1
        if self.on_accept is not None:
            self.on_accept(sock)
        sock.accept_syn(segment)
        return sock

    def __repr__(self) -> str:
        return f"<TcpListener {self._host.address}:{self.port}>"
