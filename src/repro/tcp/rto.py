"""Round-trip-time estimation and retransmission timeouts (RFC 6298).

Karn's algorithm is applied by the socket (retransmitted segments never
produce samples); this class only maintains SRTT/RTTVAR and the backoff.
"""

from __future__ import annotations

import math

from repro.tcp.constants import INITIAL_RTO, MAX_RTO, MIN_RTO

_ALPHA = 0.125
_BETA = 0.25
_K = 4.0


class RttEstimator:
    """SRTT/RTTVAR tracker producing the current RTO."""

    def __init__(
        self,
        min_rto: float = MIN_RTO,
        max_rto: float = MAX_RTO,
        initial_rto: float = INITIAL_RTO,
    ) -> None:
        if not 0 < min_rto <= max_rto:
            raise ValueError("require 0 < min_rto <= max_rto")
        self._min_rto = min_rto
        self._max_rto = max_rto
        self._initial_rto = initial_rto
        #: Backoff saturates once ``min_rto * 2**exponent >= max_rto``
        #: (the base is clamped to at least ``min_rto``, so this bound
        #: holds for any base).  Growing the exponent past that point
        #: cannot change the RTO but eventually overflows ``2 ** exp``
        #: to an un-floatable bignum after ~1024 consecutive timeouts.
        self._max_backoff_exponent = max(
            0, math.ceil(math.log2(max_rto / min_rto))
        )
        self._srtt: float | None = None
        self._rttvar: float = 0.0
        self._backoff_exponent = 0
        self._samples = 0

    @property
    def srtt(self) -> float | None:
        """Smoothed RTT in seconds, or None before the first sample."""
        return self._srtt

    @property
    def rttvar(self) -> float:
        return self._rttvar

    @property
    def samples(self) -> int:
        return self._samples

    @property
    def rto(self) -> float:
        """Current retransmission timeout, including backoff."""
        if self._srtt is None:
            base = self._initial_rto
        else:
            base = self._srtt + _K * self._rttvar
        base = min(max(base, self._min_rto), self._max_rto)
        backed_off = base * (2 ** self._backoff_exponent)
        return min(backed_off, self._max_rto)

    def add_sample(self, rtt: float) -> None:
        """Fold in a fresh RTT measurement and clear any backoff."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample: {rtt}")
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            self._rttvar = (1 - _BETA) * self._rttvar + _BETA * abs(self._srtt - rtt)
            self._srtt = (1 - _ALPHA) * self._srtt + _ALPHA * rtt
        self._samples += 1
        self._backoff_exponent = 0

    def back_off(self) -> None:
        """Double the RTO after a retransmission timeout.

        The exponent is clamped where the RTO saturates ``max_rto``, so
        arbitrarily long timeout streaks stay overflow-free.
        """
        if self._backoff_exponent < self._max_backoff_exponent:
            self._backoff_exponent += 1

    def reset_backoff(self) -> None:
        self._backoff_exponent = 0

    def __repr__(self) -> str:
        srtt = f"{self._srtt * 1e3:.1f}ms" if self._srtt is not None else "-"
        return f"<RttEstimator srtt={srtt} rto={self.rto * 1e3:.1f}ms>"
