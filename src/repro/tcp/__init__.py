"""Segment-granularity TCP for the simulation.

Implements the pieces of Linux TCP that Riptide's behaviour depends on:

* three-way handshake (new connections cost one RTT before data),
* slow start from a configurable *initial congestion window* — the knob
  Riptide turns,
* congestion avoidance via pluggable congestion control (Reno, CUBIC),
* duplicate-ACK fast retransmit with NewReno fast recovery,
* RFC 6298 retransmission timeouts with exponential backoff, and
* receive-window flow control with a configurable *initial receive
  window* (the Section III-C coupling: the receiver must be able to
  absorb the sender's first burst).
"""

from repro.tcp.cc import Cubic, CongestionControl, Reno, make_congestion_control
from repro.tcp.constants import (
    TCP_HEADER_BYTES,
    TcpConfig,
)
from repro.tcp.errors import TcpError, TcpStateError
from repro.tcp.rto import RttEstimator
from repro.tcp.socket import SocketStats, TcpSocket, TcpState
from repro.tcp.listener import TcpListener
from repro.tcp.wire import MessageMark, Segment

__all__ = [
    "CongestionControl",
    "Cubic",
    "MessageMark",
    "Reno",
    "RttEstimator",
    "Segment",
    "SocketStats",
    "TCP_HEADER_BYTES",
    "TcpConfig",
    "TcpError",
    "TcpListener",
    "TcpSocket",
    "TcpState",
    "TcpStateError",
    "make_congestion_control",
]
