"""TCP segments as they appear on the simulated wire.

Real TCP carries application bytes; this simulation carries byte *counts*
plus :class:`MessageMark` metadata so the receiving application can learn
when a logical message (a probe request, a file response) has been fully
delivered in order — the moment the paper's probes time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class MessageMark:
    """Marks the last sequence byte of an application message.

    When the receiver's in-order delivery point passes ``end_seq`` the
    message is complete and ``payload`` is handed to the application.
    """

    end_seq: int
    payload: Any
    size_bytes: int


@dataclass(frozen=True)
class Segment:
    """One TCP segment.

    ``seq`` numbers the first payload byte (or the SYN/FIN itself);
    ``ack`` is the cumulative acknowledgement, valid when ``is_ack``.
    ``rwnd_bytes`` is the advertised receive window.
    """

    src_port: int
    dst_port: int
    seq: int
    ack: int
    payload_bytes: int = 0
    syn: bool = False
    fin: bool = False
    rst: bool = False
    is_ack: bool = False
    rwnd_bytes: int = 0
    marks: tuple[MessageMark, ...] = field(default=())
    #: Selective acknowledgement blocks: (start, end) sequence ranges the
    #: receiver holds above the cumulative ACK (RFC 2018; max 4 blocks).
    sack_blocks: tuple[tuple[int, int], ...] = field(default=())

    @property
    def seq_space(self) -> int:
        """Sequence numbers consumed: payload plus one each for SYN/FIN."""
        return self.payload_bytes + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end_seq(self) -> int:
        """First sequence number *after* this segment."""
        return self.seq + self.seq_space

    def describe(self) -> str:
        flags = "".join(
            token
            for token, present in (
                ("S", self.syn),
                ("F", self.fin),
                ("R", self.rst),
                ("A", self.is_ack),
            )
            if present
        )
        return (
            f"[{flags or '.'} seq={self.seq} ack={self.ack} "
            f"len={self.payload_bytes} rwnd={self.rwnd_bytes}]"
        )
