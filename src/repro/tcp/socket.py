"""The TCP socket state machine.

One :class:`TcpSocket` is one side of one connection.  The implementation
is deliberately shaped like the Linux path that matters to Riptide:

* at ``connect()`` (or on accepting a SYN) the socket asks its host for the
  initial congestion window of the route to the peer — this is the exact
  point where a Riptide-installed ``ip route ... initcwnd`` takes effect;
* the congestion window then evolves purely under the plugged congestion
  control (slow start, congestion avoidance, NewReno recovery, RTO), so
  Riptide only ever changes the *starting point* of a connection;
* the receiver advertises an initial window taken from its own route/sysctl
  (``initrwnd``) that then auto-grows, reproducing the Section III-C
  requirement that receive windows cover the sender's first burst.

Applications exchange *messages* (sized byte counts with opaque payloads);
a message is delivered when its last byte arrives in order — the moment
the paper's diagnostic probes time.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any, TYPE_CHECKING

from repro.net.addresses import IPv4Address
from repro.net.packet import Packet
from repro.obs.trace import EventType
from repro.sim.events import Event
from repro.tcp.cc import make_congestion_control
from repro.tcp.constants import (
    DELAYED_ACK_TIMEOUT,
    DUPACK_THRESHOLD,
    TCP_HEADER_BYTES,
    TcpConfig,
)
from repro.tcp.errors import TcpStateError
from repro.tcp.rto import RttEstimator
from repro.tcp.wire import MessageMark, Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.linux.host import Host


class TcpState(enum.Enum):
    """Connection states (TIME_WAIT is collapsed into CLOSED)."""

    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_WAIT_1 = "fin-wait-1"
    FIN_WAIT_2 = "fin-wait-2"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"


@dataclass(frozen=True)
class SocketStats:
    """A point-in-time snapshot of one socket — what ``ss -i`` shows.

    Riptide reads ``cwnd`` and ``bytes_acked`` from these snapshots.
    """

    local_port: int
    remote_address: IPv4Address
    remote_port: int
    state: TcpState
    cwnd: int
    ssthresh: float
    initial_cwnd: int
    srtt: float | None
    bytes_acked: int
    bytes_received: int
    segments_sent: int
    segments_retransmitted: int
    created_at: float
    established_at: float | None
    last_activity_at: float
    is_client: bool = False


@dataclass(slots=True)
class _SentSegment:
    """Book-keeping for one segment awaiting acknowledgement."""

    seq: int
    end_seq: int
    payload_bytes: int
    syn: bool
    fin: bool
    marks: tuple[MessageMark, ...]
    last_sent_at: float
    retransmitted: bool = False
    #: Selectively acknowledged (SACK): delivered but not yet cum-acked.
    sacked: bool = False
    #: Already retransmitted during the current recovery episode.
    rexmit_in_recovery: bool = False


class TcpSocket:
    """One endpoint of a TCP connection."""

    # Sockets dominate the simulation heap in cluster runs; __slots__
    # keeps them dict-free and makes the send/ack loops' attribute reads
    # offset loads.
    __slots__ = (
        "_host", "_sim", "_config",
        "local_port", "remote_address", "remote_port",
        "state", "is_client", "close_on_peer_fin",
        "cc", "_rtt",
        "_snd_una", "_snd_nxt", "_snd_buf_end", "_pending_marks",
        "_rtx_queue", "_peer_rwnd_bytes", "_dupacks", "_in_recovery",
        "_recover_seq", "_recovery_inflation", "_fin_queued", "_fin_sent",
        "_rto_event",
        "_rcv_nxt", "_ooo", "_recv_marks", "_adv_wnd_bytes",
        "_peer_fin_received", "_delack_event", "_segments_since_ack",
        "on_established", "on_message", "on_closed", "on_error",
        "created_at", "established_at", "last_activity_at", "last_send_at",
        "bytes_acked", "bytes_received", "segments_sent", "segments_received",
        "segments_retransmitted", "messages_sent", "messages_received",
        "rtos_fired", "fast_retransmits", "_consecutive_rtos",
        "_obs_on", "_trace", "_m_retransmitted", "_m_rtos",
        "_m_fast_rexmit", "_m_opened", "_h_cwnd_at_close",
        "cwnd_source", "_flow", "_flow_ss_pending",
    )

    def __init__(
        self,
        host: "Host",
        local_port: int,
        remote_address: IPv4Address,
        remote_port: int,
        config: TcpConfig,
        initial_cwnd: int,
        initial_rwnd_segments: int,
        cwnd_source: str = "default",
    ) -> None:
        self._host = host
        self._sim = host.sim
        self._config = config
        self.local_port = local_port
        self.remote_address = remote_address
        self.remote_port = remote_port
        self.state = TcpState.CLOSED
        #: True for actively opened (outgoing) connections; set by the host.
        self.is_client = False
        #: When True, the socket closes itself as soon as the peer's FIN
        #: arrives (typical request/response server behaviour on EOF).
        self.close_on_peer_fin = False

        self.cc = make_congestion_control(
            config.congestion_control, initial_cwnd, config.mss
        )
        self._rtt = RttEstimator(
            min_rto=config.min_rto,
            max_rto=config.max_rto,
            initial_rto=config.initial_rto,
        )

        # --- send side -------------------------------------------------
        self._snd_una = 0
        self._snd_nxt = 0
        self._snd_buf_end = 1  # data begins after the SYN's sequence slot
        self._pending_marks: list[MessageMark] = []
        self._rtx_queue: deque[_SentSegment] = deque()
        self._peer_rwnd_bytes = config.mss  # until the peer advertises
        self._dupacks = 0
        self._in_recovery = False
        self._recover_seq = 0
        self._recovery_inflation = 0
        self._fin_queued = False
        self._fin_sent = False
        self._rto_event: Event | None = None

        # --- receive side ------------------------------------------------
        self._rcv_nxt = 0
        self._ooo: dict[int, Segment] = {}
        self._recv_marks: dict[int, MessageMark] = {}
        self._adv_wnd_bytes = initial_rwnd_segments * config.mss
        self._peer_fin_received = False
        self._delack_event: Event | None = None
        self._segments_since_ack = 0

        # --- callbacks ---------------------------------------------------
        self.on_established: Callable[[TcpSocket], None] | None = None
        self.on_message: Callable[[TcpSocket, Any, int], None] | None = None
        self.on_closed: Callable[[TcpSocket], None] | None = None
        self.on_error: Callable[[TcpSocket, str], None] | None = None

        # --- counters ------------------------------------------------------
        self.created_at = self._sim.now
        self.established_at: float | None = None
        self.last_activity_at = self._sim.now
        self.last_send_at = self._sim.now
        self.bytes_acked = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_received = 0
        self.segments_retransmitted = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.rtos_fired = 0
        self.fast_retransmits = 0
        self._consecutive_rtos = 0

        # --- instrumentation (handles cached; see repro.obs) ---------------
        #: Where ``initial_cwnd`` came from: "route" / "hook" / "default".
        self.cwnd_source = cwnd_source
        obs = host.sim.obs
        self._obs_on = obs.enabled
        self._trace = obs.trace
        self._m_retransmitted = obs.metrics.counter("tcp_segments_retransmitted")
        self._m_rtos = obs.metrics.counter("tcp_rtos_fired")
        self._m_fast_rexmit = obs.metrics.counter("tcp_fast_retransmits")
        self._m_opened = obs.metrics.counter("tcp_connections_opened")
        self._h_cwnd_at_close = obs.metrics.histogram("tcp_cwnd_at_close")
        # is_client is stamped by the host after construction; the flow
        # record catches up in _become_established.
        self._flow = obs.flows.begin(
            host=host.name,
            local=str(host.address),
            local_port=local_port,
            remote=str(remote_address),
            remote_port=remote_port,
            opened_at=self._sim.now,
            is_client=False,
            initial_cwnd=initial_cwnd,
            cwnd_source=cwnd_source,
        ) if self._obs_on else None
        self._flow_ss_pending = self._flow is not None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def config(self) -> TcpConfig:
        return self._config

    @property
    def srtt(self) -> float | None:
        return self._rtt.srtt

    @property
    def is_established(self) -> bool:
        return self.state is TcpState.ESTABLISHED

    @property
    def is_closed(self) -> bool:
        return self.state is TcpState.CLOSED

    @property
    def bytes_unacked(self) -> int:
        """Sequence space in flight (includes SYN/FIN slots)."""
        return self._snd_nxt - self._snd_una

    @property
    def send_buffer_bytes(self) -> int:
        """Bytes written by the application but not yet transmitted."""
        return self._snd_buf_end - max(self._snd_nxt, 1)

    @property
    def is_idle(self) -> bool:
        """Established with nothing queued or in flight in either role."""
        return (
            self.state is TcpState.ESTABLISHED
            and self.bytes_unacked == 0
            and self.send_buffer_bytes == 0
        )

    def connect(self) -> None:
        """Actively open: send the SYN (consumes one RTT before data)."""
        if self.state is not TcpState.CLOSED:
            raise TcpStateError(f"connect() in state {self.state}")
        self.state = TcpState.SYN_SENT
        self._send_control(syn=True, with_ack=False)
        self._arm_rto()

    def accept_syn(self, segment: Segment) -> None:
        """Passively open in response to a received SYN (listener path)."""
        if self.state is not TcpState.CLOSED:
            raise TcpStateError(f"accept_syn() in state {self.state}")
        if not segment.syn:
            raise TcpStateError("accept_syn() requires a SYN segment")
        self.state = TcpState.SYN_RCVD
        self._rcv_nxt = segment.end_seq
        self._note_peer_window(segment)
        self._send_control(syn=True, with_ack=True)
        self._arm_rto()

    def send_message(self, payload: Any, size_bytes: int) -> None:
        """Queue an application message of ``size_bytes`` for delivery."""
        if size_bytes <= 0:
            raise ValueError(f"message size must be positive, got {size_bytes}")
        if self.state not in (
            TcpState.SYN_SENT,
            TcpState.SYN_RCVD,
            TcpState.ESTABLISHED,
            TcpState.CLOSE_WAIT,
        ):
            raise TcpStateError(f"send_message() in state {self.state}")
        if self._fin_queued:
            raise TcpStateError("send_message() after close()")
        self._snd_buf_end += size_bytes
        self._pending_marks.append(
            MessageMark(end_seq=self._snd_buf_end, payload=payload, size_bytes=size_bytes)
        )
        self.messages_sent += 1
        self._try_send()

    def close(self) -> None:
        """Orderly close: FIN after all queued data drains."""
        if self.state in (TcpState.CLOSED, TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2,
                          TcpState.LAST_ACK):
            return
        if self.state is TcpState.SYN_SENT:
            # Nothing committed yet; tear down silently.
            self._teardown(notify=True)
            return
        self._fin_queued = True
        self._try_send()

    def vanish(self) -> None:
        """Drop all state without sending anything (power loss / reboot).

        The peer is left to discover the death through its own timers.
        """
        if self.state is TcpState.CLOSED:
            return
        self._teardown(notify=True)

    def abort(self) -> None:
        """Send a best-effort RST and drop all state immediately."""
        if self.state is TcpState.CLOSED:
            return
        segment = Segment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self._snd_nxt,
            ack=self._rcv_nxt,
            rst=True,
            is_ack=True,
            rwnd_bytes=self._adv_wnd_bytes,
        )
        self._emit(segment)
        self._teardown(notify=True)

    def stats_snapshot(self) -> SocketStats:
        """The ``ss``-visible view of this socket."""
        return SocketStats(
            local_port=self.local_port,
            remote_address=self.remote_address,
            remote_port=self.remote_port,
            state=self.state,
            cwnd=self.cc.cwnd_segments,
            ssthresh=self.cc.ssthresh,
            initial_cwnd=self.cc.initial_cwnd,
            srtt=self._rtt.srtt,
            bytes_acked=self.bytes_acked,
            bytes_received=self.bytes_received,
            segments_sent=self.segments_sent,
            segments_retransmitted=self.segments_retransmitted,
            created_at=self.created_at,
            established_at=self.established_at,
            last_activity_at=self.last_activity_at,
            is_client=self.is_client,
        )

    # ------------------------------------------------------------------
    # segment ingress
    # ------------------------------------------------------------------

    def handle_segment(self, segment: Segment) -> None:
        """Process one segment addressed to this socket."""
        if self.state is TcpState.CLOSED:
            return
        self.segments_received += 1
        self.last_activity_at = self._sim.now

        if segment.rst:
            self._on_reset()
            return

        self._note_peer_window(segment)

        if segment.syn:
            self._handle_syn_phase(segment)
            return

        if segment.is_ack:
            if self._config.sack and segment.sack_blocks:
                self._process_sack_blocks(segment.sack_blocks)
            self._process_ack(segment.ack)

        if segment.payload_bytes > 0 or segment.fin:
            self._process_incoming_data(segment)
        elif segment.is_ack and self._peer_fin_received is False:
            # Pure ACK: nothing further to do.
            pass

    def _handle_syn_phase(self, segment: Segment) -> None:
        if self.state is TcpState.SYN_SENT and segment.is_ack:
            # SYN-ACK: our SYN (seq slot 0) is acknowledged.
            self._rcv_nxt = segment.end_seq
            self._process_ack(segment.ack)
            self._become_established()
            self._send_pure_ack()
            self._try_send()
        elif self.state in (TcpState.SYN_RCVD, TcpState.ESTABLISHED):
            # Duplicate SYN (our SYN-ACK was lost): re-acknowledge.
            self._send_pure_ack()
        # A bare SYN to a connected socket in other states is ignored.

    def _become_established(self) -> None:
        self.state = TcpState.ESTABLISHED
        self.established_at = self._sim.now
        self._m_opened.inc()
        if self._flow is not None:
            self._flow.is_client = self.is_client
            self._flow.established_at = self._sim.now
            self._flow.syn_rtt = self._sim.now - self.created_at
        if self._obs_on:
            self._trace.record(
                self._sim.now,
                EventType.CONN_OPENED,
                self._host.name,
                remote=str(self.remote_address),
                initial_cwnd=self.cc.initial_cwnd,
                is_client=self.is_client,
            )
        if self.on_established is not None:
            self.on_established(self)

    # ------------------------------------------------------------------
    # ACK processing (sender side)
    # ------------------------------------------------------------------

    def _process_ack(self, ack: int) -> None:
        if ack > self._snd_nxt:
            return  # acks data we never sent; ignore
        if ack > self._snd_una:
            self._on_new_ack(ack)
        elif (
            ack == self._snd_una
            and self.bytes_unacked > 0
            and self.state
            in (TcpState.ESTABLISHED, TcpState.FIN_WAIT_1, TcpState.CLOSE_WAIT,
                TcpState.LAST_ACK)
        ):
            self._on_duplicate_ack()

    def _on_new_ack(self, ack: int) -> None:
        acked_bytes = 0
        rtt_sample: float | None = None
        rtx_queue = self._rtx_queue
        now = self._sim.now
        while rtx_queue and rtx_queue[0].end_seq <= ack:
            entry = rtx_queue.popleft()
            acked_bytes += entry.payload_bytes
            if not entry.retransmitted:
                rtt_sample = now - entry.last_sent_at
        self._snd_una = ack
        self._consecutive_rtos = 0
        if rtt_sample is not None:
            self._rtt.add_sample(rtt_sample)
        self.bytes_acked += acked_bytes

        if self.state is TcpState.SYN_RCVD and ack >= 1:
            self._become_established()
        if self._in_recovery:
            if ack >= self._recover_seq:
                self._exit_recovery()
            else:
                self._on_partial_ack()
        else:
            self._dupacks = 0
            self.cc.on_ack(self._sim.now, acked_bytes, self._rtt.srtt)
            if self._flow_ss_pending:
                self._note_ss_exit()

        self._manage_fin_acknowledgement(ack)
        self._rearm_or_cancel_rto()
        self._try_send()

    def _on_duplicate_ack(self) -> None:
        self._dupacks += 1
        if self._in_recovery:
            self._recovery_inflation += 1
            self._try_send()
        elif self._dupacks >= DUPACK_THRESHOLD:
            self._enter_recovery()

    def _enter_recovery(self) -> None:
        self._in_recovery = True
        self._recover_seq = self._snd_nxt
        self.cc.on_loss_event(self._sim.now)
        self.cc.cwnd = max(self.cc.ssthresh, 1.0)
        self._recovery_inflation = DUPACK_THRESHOLD
        self.fast_retransmits += 1
        self._m_fast_rexmit.inc()
        if self._flow_ss_pending:
            self._note_ss_exit()
        if self._obs_on:
            self._trace.record(
                self._sim.now,
                EventType.FAST_RETRANSMIT,
                self._host.name,
                remote=str(self.remote_address),
                port=self.local_port,
                remote_port=self.remote_port,
                cwnd=self.cc.cwnd_segments,
            )
        if self._config.sack:
            self._retransmit_sack_holes()
        else:
            self._retransmit_head()
        self._arm_rto()

    def _on_partial_ack(self) -> None:
        # NewReno: the next hole starts at the new snd_una; retransmit it.
        # With SACK, fill every known hole the window allows instead.
        if self._config.sack:
            self._retransmit_sack_holes()
        else:
            self._retransmit_head()
        self._arm_rto()

    def _exit_recovery(self) -> None:
        self._in_recovery = False
        self._recovery_inflation = 0
        self._dupacks = 0
        for entry in self._rtx_queue:
            entry.rexmit_in_recovery = False
        self.cc.after_recovery()

    # ------------------------------------------------------------------
    # SACK processing (sender side)
    # ------------------------------------------------------------------

    def _process_sack_blocks(
        self, blocks: tuple[tuple[int, int], ...]
    ) -> None:
        for entry in self._rtx_queue:
            if entry.sacked:
                continue
            for start, end in blocks:
                if start <= entry.seq and entry.end_seq <= end:
                    entry.sacked = True
                    break
        if self._in_recovery:
            self._retransmit_sack_holes()

    def _sacked_bytes(self) -> int:
        return sum(e.end_seq - e.seq for e in self._rtx_queue if e.sacked)

    def _retransmit_sack_holes(self) -> None:
        """Retransmit segments deemed lost (simplified RFC 6675).

        A segment is lost when at least DUPACK_THRESHOLD SACKed segments
        lie above it, or when it heads the retransmission queue during
        recovery (the cumulative ACK is stuck on it).  Retransmissions
        respect the usable window via the pipe estimate.
        """
        window = self._effective_window_bytes()
        entries = list(self._rtx_queue)
        sacked_above = [0] * len(entries)
        count = 0
        for index in range(len(entries) - 1, -1, -1):
            sacked_above[index] = count
            if entries[index].sacked:
                count += 1
        for index, entry in enumerate(entries):
            if entry.seq >= self._recover_seq:
                break
            if entry.sacked or entry.rexmit_in_recovery:
                continue
            deemed_lost = (
                sacked_above[index] >= DUPACK_THRESHOLD or index == 0
            )
            if not deemed_lost:
                continue
            if self._bytes_in_flight() >= window:
                break
            entry.rexmit_in_recovery = True
            self._retransmit_entry(entry)

    def _manage_fin_acknowledgement(self, ack: int) -> None:
        if not self._fin_sent:
            return
        fin_acked = ack >= self._snd_nxt and not self._rtx_queue
        if not fin_acked:
            return
        if self.state is TcpState.FIN_WAIT_1:
            if self._peer_fin_received:
                self._teardown(notify=True)
            else:
                self.state = TcpState.FIN_WAIT_2
        elif self.state is TcpState.LAST_ACK:
            self._teardown(notify=True)

    # ------------------------------------------------------------------
    # data ingress (receiver side)
    # ------------------------------------------------------------------

    def _process_incoming_data(self, segment: Segment) -> None:
        if segment.end_seq <= self._rcv_nxt:
            # Entirely old (a retransmission we already have): re-ACK.
            self._send_pure_ack()
            return
        if segment.seq > self._rcv_nxt:
            # A hole precedes this segment: buffer it, emit a dup ACK.
            self._ooo.setdefault(segment.seq, segment)
            self._send_pure_ack()
            return
        self._absorb_in_order(segment)
        while self._rcv_nxt in self._ooo:
            self._absorb_in_order(self._ooo.pop(self._rcv_nxt))
        self._deliver_completed_messages()
        self._maybe_transition_on_fin()
        self._schedule_ack(segment)

    def _absorb_in_order(self, segment: Segment) -> None:
        delivered = segment.end_seq - self._rcv_nxt
        payload_delivered = min(segment.payload_bytes, delivered)
        self._rcv_nxt = segment.end_seq
        self.bytes_received += payload_delivered
        for mark in segment.marks:
            self._recv_marks[mark.end_seq] = mark
        if segment.fin:
            self._peer_fin_received = True
        # Receive-window auto-tuning: grow with delivered data so the
        # window keeps ahead of a slow-start sender (Section III-C).
        self._adv_wnd_bytes = min(
            self._adv_wnd_bytes + 2 * payload_delivered,
            self._config.rmem_max_bytes,
        )

    def _deliver_completed_messages(self) -> None:
        if not self._recv_marks:
            return
        ready = sorted(seq for seq in self._recv_marks if seq <= self._rcv_nxt)
        for seq in ready:
            mark = self._recv_marks.pop(seq)
            self.messages_received += 1
            if self.on_message is not None:
                self.on_message(self, mark.payload, mark.size_bytes)

    def _maybe_transition_on_fin(self) -> None:
        if not self._peer_fin_received:
            return
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
            if self.close_on_peer_fin:
                self.close()
        elif self.state is TcpState.FIN_WAIT_2:
            self._send_pure_ack()
            self._teardown(notify=True)
        elif self.state is TcpState.FIN_WAIT_1 and self._fin_sent:
            # Simultaneous close: wait for our FIN's ACK in _process_ack.
            pass

    # ------------------------------------------------------------------
    # ACK emission
    # ------------------------------------------------------------------

    def _schedule_ack(self, segment: Segment) -> None:
        if segment.fin or self._ooo or not self._config.delayed_ack:
            self._send_pure_ack()
            return
        self._segments_since_ack += 1
        if self._segments_since_ack >= 2:
            self._send_pure_ack()
            return
        if self._delack_event is None:
            self._delack_event = self._sim.schedule(
                DELAYED_ACK_TIMEOUT, self._on_delayed_ack_timer
            )

    def _on_delayed_ack_timer(self) -> None:
        self._delack_event = None
        if self._segments_since_ack > 0:
            self._send_pure_ack()

    def _send_pure_ack(self) -> None:
        self._cancel_delack()
        segment = Segment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self._snd_nxt,
            ack=self._rcv_nxt,
            is_ack=True,
            rwnd_bytes=self._adv_wnd_bytes,
            sack_blocks=self._current_sack_blocks(),
        )
        self._emit(segment)

    #: RFC 2018 caps the option at 3-4 blocks; we use 4.
    MAX_SACK_BLOCKS = 4

    def _current_sack_blocks(self) -> tuple[tuple[int, int], ...]:
        """Merge the out-of-order store into SACK ranges."""
        if not self._config.sack or not self._ooo:
            return ()
        ranges: list[list[int]] = []
        for seq in sorted(self._ooo):
            end = self._ooo[seq].end_seq
            if ranges and seq <= ranges[-1][1]:
                ranges[-1][1] = max(ranges[-1][1], end)
            else:
                ranges.append([seq, end])
        # Most recently useful (highest) blocks first, capped.
        blocks = [(start, end) for start, end in reversed(ranges)]
        return tuple(blocks[: self.MAX_SACK_BLOCKS])

    def _cancel_delack(self) -> None:
        self._segments_since_ack = 0
        if self._delack_event is not None:
            self._sim.cancel(self._delack_event)
            self._delack_event = None

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    def _effective_window_bytes(self) -> int:
        cwnd_segments = self.cc.cwnd_segments + self._recovery_inflation
        return min(cwnd_segments * self._config.mss, self._peer_rwnd_bytes)

    def _bytes_in_flight(self) -> int:
        """Outstanding bytes; SACKed data no longer occupies the pipe."""
        in_flight = self.bytes_unacked
        if self._config.sack:
            in_flight -= self._sacked_bytes()
        return in_flight

    def _try_send(self) -> None:
        if self.state not in (
            TcpState.ESTABLISHED,
            TcpState.CLOSE_WAIT,
            TcpState.FIN_WAIT_1,
        ):
            return
        self._maybe_restart_after_idle()
        mss = self._config.mss
        sent_any = False
        # The window and pipe estimate only change on ACK/loss events,
        # never on our own transmissions, so compute them once and track
        # in-flight growth locally instead of re-deriving per segment.
        window = self._effective_window_bytes()
        in_flight = self._bytes_in_flight()
        while self._snd_nxt < self._snd_buf_end:
            remaining = self._snd_buf_end - self._snd_nxt
            size = min(mss, remaining)
            if window - in_flight < size:
                break
            self._send_data_segment(size)
            in_flight += size
            sent_any = True
        if (
            self._fin_queued
            and not self._fin_sent
            and self._snd_nxt == self._snd_buf_end
        ):
            self._send_fin()
            sent_any = True
        if sent_any:
            self._arm_rto_if_unarmed()

    def _maybe_restart_after_idle(self) -> None:
        """RFC 2861: collapse the window of a long-idle connection back to
        its initial (route-resolved) value before a fresh burst."""
        if not self._config.slow_start_after_idle:
            return
        if self.bytes_unacked > 0 or self._snd_nxt >= self._snd_buf_end:
            return
        if self._snd_nxt <= 1:
            return  # never sent data; the initial window already applies
        # Like the kernel's lsndtime check: idleness is measured from our
        # last transmission, not from the peer's latest packet.
        idle = self._sim.now - self.last_send_at
        if idle > self._rtt.rto and self.cc.cwnd > self.cc.initial_cwnd:
            self.cc.cwnd = float(self.cc.initial_cwnd)

    def _send_data_segment(self, size: int) -> None:
        seq = self._snd_nxt
        end = seq + size
        marks = tuple(
            mark for mark in self._pending_marks if seq < mark.end_seq <= end
        )
        segment = Segment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=self._rcv_nxt,
            payload_bytes=size,
            is_ack=True,
            rwnd_bytes=self._adv_wnd_bytes,
            marks=marks,
        )
        self._snd_nxt = end
        self._rtx_queue.append(
            _SentSegment(
                seq=seq,
                end_seq=end,
                payload_bytes=size,
                syn=False,
                fin=False,
                marks=marks,
                last_sent_at=self._sim.now,
            )
        )
        self._pending_marks = [
            mark for mark in self._pending_marks if mark.end_seq > end
        ]
        self._emit(segment)

    def _send_fin(self) -> None:
        seq = self._snd_nxt
        segment = Segment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=self._rcv_nxt,
            fin=True,
            is_ack=True,
            rwnd_bytes=self._adv_wnd_bytes,
        )
        self._snd_nxt = seq + 1
        self._fin_sent = True
        if self.state in (TcpState.ESTABLISHED,):
            self.state = TcpState.FIN_WAIT_1
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK
        self._rtx_queue.append(
            _SentSegment(
                seq=seq,
                end_seq=seq + 1,
                payload_bytes=0,
                syn=False,
                fin=True,
                marks=(),
                last_sent_at=self._sim.now,
            )
        )
        self._emit(segment)
        self._arm_rto_if_unarmed()

    def _send_control(self, syn: bool, with_ack: bool) -> None:
        seq = self._snd_nxt
        segment = Segment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=self._rcv_nxt if with_ack else 0,
            syn=syn,
            is_ack=with_ack,
            rwnd_bytes=self._adv_wnd_bytes,
        )
        if syn:
            self._snd_nxt = seq + 1
            self._rtx_queue.append(
                _SentSegment(
                    seq=seq,
                    end_seq=seq + 1,
                    payload_bytes=0,
                    syn=True,
                    fin=False,
                    marks=(),
                    last_sent_at=self._sim.now,
                )
            )
        self._emit(segment)

    def _retransmit_head(self) -> None:
        if not self._rtx_queue:
            return
        self._retransmit_entry(self._rtx_queue[0])

    def _retransmit_entry(self, entry: _SentSegment) -> None:
        entry.retransmitted = True
        entry.last_sent_at = self._sim.now
        self.segments_retransmitted += 1
        self._m_retransmitted.inc()
        with_ack = self.state is not TcpState.SYN_SENT
        segment = Segment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=entry.seq,
            ack=self._rcv_nxt if with_ack else 0,
            payload_bytes=entry.payload_bytes,
            syn=entry.syn,
            fin=entry.fin,
            is_ack=with_ack or (entry.syn and self.state is TcpState.SYN_RCVD),
            rwnd_bytes=self._adv_wnd_bytes,
            marks=entry.marks,
        )
        self._emit(segment)

    def _emit(self, segment: Segment) -> None:
        packet = Packet(
            src=self._host.address,
            dst=self.remote_address,
            size_bytes=TCP_HEADER_BYTES + segment.payload_bytes,
            payload=segment,
        )
        self.segments_sent += 1
        self.last_activity_at = self._sim.now
        self.last_send_at = self._sim.now
        self._host.send_packet(packet)

    def _note_peer_window(self, segment: Segment) -> None:
        if segment.rwnd_bytes > 0:
            self._peer_rwnd_bytes = segment.rwnd_bytes

    # ------------------------------------------------------------------
    # RTO timer
    # ------------------------------------------------------------------

    def _arm_rto(self) -> None:
        self._cancel_rto()
        self._rto_event = self._sim.schedule(self._rtt.rto, self._on_rto)

    def _arm_rto_if_unarmed(self) -> None:
        if self._rto_event is None and self._rtx_queue:
            self._arm_rto()

    def _rearm_or_cancel_rto(self) -> None:
        self._cancel_rto()
        if self._rtx_queue:
            self._rtt.reset_backoff()
            self._rto_event = self._sim.schedule(self._rtt.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._sim.cancel(self._rto_event)
            self._rto_event = None

    #: Retry limits in the spirit of tcp_syn_retries / tcp_retries2.
    MAX_SYN_RETRIES = 6
    MAX_DATA_RETRIES = 15

    def _on_rto(self) -> None:
        self._rto_event = None
        if not self._rtx_queue:
            return
        self.rtos_fired += 1
        self._consecutive_rtos += 1
        self._m_rtos.inc()
        if self._obs_on:
            self._trace.record(
                self._sim.now,
                EventType.RTO_FIRED,
                self._host.name,
                remote=str(self.remote_address),
                port=self.local_port,
                remote_port=self.remote_port,
                consecutive=self._consecutive_rtos,
            )
        self._rtt.back_off()
        in_handshake = self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD)
        retry_limit = self.MAX_SYN_RETRIES if in_handshake else self.MAX_DATA_RETRIES
        if self._consecutive_rtos > retry_limit:
            # Give up on an unanswerable peer, like the kernel's
            # tcp_syn_retries / tcp_retries2 limits.
            self._error("connect timeout" if in_handshake else "transfer timeout")
            return
        self.cc.on_retransmit_timeout(self._sim.now)
        self._in_recovery = False
        self._recovery_inflation = 0
        self._dupacks = 0
        self._retransmit_head()
        self._arm_rto()

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def _on_reset(self) -> None:
        self._error("connection reset by peer")

    def _error(self, reason: str) -> None:
        if self._flow is not None:
            self._flow.error = reason
        callback = self.on_error
        self._teardown(notify=False)
        if callback is not None:
            callback(self, reason)

    def _teardown(self, notify: bool) -> None:
        if self.established_at is not None:
            self._h_cwnd_at_close.observe(self.cc.cwnd_segments, t=self._sim.now)
        if self._flow is not None:
            self._flow.final_state = self.state.value
            self._flow.closed_at = self._sim.now
            self.sync_flow()
            self._flow = None
            self._flow_ss_pending = False
        self.state = TcpState.CLOSED
        self._cancel_rto()
        self._cancel_delack()
        self._rtx_queue.clear()
        self._ooo.clear()
        self._host.socket_closed(self)
        if notify and self.on_closed is not None:
            self.on_closed(self)

    # ------------------------------------------------------------------
    # flow-record upkeep
    # ------------------------------------------------------------------

    def _note_ss_exit(self) -> None:
        """Stamp the flow record the first time the socket leaves slow start."""
        if self.cc.cwnd < self.cc.ssthresh:
            return
        flow = self._flow
        if flow is not None:
            flow.ss_exit_at = self._sim.now
            flow.ss_exit_cwnd = self.cc.cwnd_segments
        self._flow_ss_pending = False

    def sync_flow(self) -> None:
        """Copy the live counters into this socket's flow record.

        Teardown calls this; :meth:`~repro.cdn.cluster.CdnCluster.sync_flows`
        also calls it at end of run so flows still open report their
        counters as of the run's last instant.
        """
        flow = self._flow
        if flow is None:
            return
        flow.bytes_acked = self.bytes_acked
        flow.bytes_received = self.bytes_received
        flow.segments_sent = self.segments_sent
        flow.segments_retransmitted = self.segments_retransmitted
        flow.rtos = self.rtos_fired
        flow.fast_retransmits = self.fast_retransmits

    def __repr__(self) -> str:
        ssthresh = self.cc.ssthresh
        ssthresh_text = "inf" if math.isinf(ssthresh) else f"{ssthresh:.0f}"
        return (
            f"<TcpSocket {self._host.address}:{self.local_port} -> "
            f"{self.remote_address}:{self.remote_port} {self.state.value} "
            f"cwnd={self.cc.cwnd_segments} ssthresh={ssthresh_text}>"
        )
