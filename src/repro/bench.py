"""The tracked performance baseline (``python -m repro bench``).

Runs a fixed set of micro- and macro-benchmarks over the simulator hot
path and the parallel executor, and writes the readings to a JSON file
(``BENCH_002.json`` by default) so subsequent changes have a perf
trajectory to regress against:

* **kernel** — raw event throughput of ``Simulator.run`` on a
  self-rescheduling timer chain, with instrumentation enabled and with
  the disabled no-op fast path;
* **tcp_transfer** — events/sec through the full stack (links, sockets,
  congestion control) on back-to-back 200 KB transfers;
* **probe_study** — wall time of a reduced paired probe study, the
  workhorse scenario behind Figures 12-16;
* **multiseed_sweep** — wall time of the same per-seed run serially and
  under a 4-worker pool, the speedup between them, and whether the two
  sweeps produced byte-identical values (they must);
* **metrics** — histogram observe throughput and the cost of the first
  ordered read (the lazy sort), guarding the metrics hot path.

Readings are wall-clock dependent; the JSON records the host's CPU
count and Python version so trajectories compare like with like.  On a
single-core host the sweep speedup hovers around 1x — the
``bit_identical`` flag and the per-section events/sec are the portable
signals there.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any

from repro.experiments.multiseed import sweep_seeds
from repro.experiments.scenarios import ProbeStudyConfig, run_paired_probe_study
from repro.obs import capture, disabled
from repro.sim.kernel import Simulator

#: Bench schema tag; bump when the JSON layout changes.
BENCH_NAME = "BENCH_002"

#: Default output path, relative to the invoking directory.
DEFAULT_OUTPUT = "BENCH_002.json"

#: Reduced probe-study config used by the study and sweep sections: big
#: enough to exercise every layer, small enough to finish in seconds.
_BENCH_STUDY = ProbeStudyConfig(
    topology_codes=("LHR", "JFK", "NRT"),
    source_pops=("LHR",),
    warmup=5.0,
    duration=15.0,
    probe_interval=5.0,
    organic_rate=2.0,
)


def _timer_chain(sim: Simulator, events: int) -> None:
    """Schedule a self-rescheduling callback chain of ``events`` events."""

    def tick(remaining: int) -> None:
        if remaining:
            sim.schedule(1e-6, tick, remaining - 1)

    sim.schedule(1e-6, tick, events - 1)
    sim.run_until_idle()


def bench_kernel(events: int = 300_000) -> dict[str, Any]:
    """Raw kernel throughput, instrumented vs the disabled fast path."""
    with capture():
        sim = Simulator()
        started = time.perf_counter()
        _timer_chain(sim, events)
        instrumented = time.perf_counter() - started
    with disabled():
        sim = Simulator()
        started = time.perf_counter()
        _timer_chain(sim, events)
        uninstrumented = time.perf_counter() - started
    return {
        "events": events,
        "instrumented_events_per_sec": round(events / instrumented, 1),
        "disabled_events_per_sec": round(events / uninstrumented, 1),
    }


def bench_tcp_transfer(transfers: int = 40, response_bytes: int = 200_000) -> dict[str, Any]:
    """Full-stack events/sec: repeated transfers on a two-host testbed."""
    from repro.testing import TwoHostTestbed, request_response

    bed = TwoHostTestbed(rtt=0.050)
    bed.serve_echo()
    started = time.perf_counter()
    for _ in range(transfers):
        request_response(bed, response_bytes=response_bytes)
    elapsed = time.perf_counter() - started
    return {
        "transfers": transfers,
        "events": bed.sim.events_processed,
        "events_per_sec": round(bed.sim.events_processed / elapsed, 1),
        "wall_time_s": round(elapsed, 4),
    }


def bench_probe_study(config: ProbeStudyConfig | None = None) -> dict[str, Any]:
    """Wall time of one serial paired probe study (both arms)."""
    config = config if config is not None else _BENCH_STUDY
    started = time.perf_counter()
    control, riptide = run_paired_probe_study(config)
    elapsed = time.perf_counter() - started
    return {
        "wall_time_s": round(elapsed, 4),
        "events_processed": (
            control.cluster.sim.events_processed
            + riptide.cluster.sim.events_processed
        ),
        "probes_completed": (
            len(control.fleet.completed_results())
            + len(riptide.fleet.completed_results())
        ),
    }


def _sweep_metric(seed: int) -> float:
    """Per-seed sweep workload: mean 100 KB probe time of a small arm."""
    from repro.experiments.scenarios import run_probe_arm

    run = run_probe_arm(replace_seed(_BENCH_STUDY, seed), riptide_enabled=False)
    times = run.fleet.completion_times(size_bytes=100_000)
    return sum(times) / len(times) if times else 0.0


def replace_seed(config: ProbeStudyConfig, seed: int) -> ProbeStudyConfig:
    from dataclasses import replace

    return replace(config, seed=seed)


def bench_multiseed_sweep(workers: int = 4, seeds: int = 8) -> dict[str, Any]:
    """Serial vs parallel wall time of a multi-seed stability sweep."""
    seed_list = list(range(1, seeds + 1))
    started = time.perf_counter()
    serial = sweep_seeds("bench_probe_mean", seed_list, _sweep_metric, workers=1)
    serial_wall = time.perf_counter() - started
    started = time.perf_counter()
    parallel = sweep_seeds(
        "bench_probe_mean", seed_list, _sweep_metric, workers=workers
    )
    parallel_wall = time.perf_counter() - started
    return {
        "seeds": seeds,
        "workers": workers,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 3) if parallel_wall else 0.0,
        "bit_identical": serial.values == parallel.values,
    }


def bench_metrics(observations: int = 200_000) -> dict[str, Any]:
    """Histogram hot path: observe throughput + first ordered read.

    Values are a deterministic pseudo-random sequence (Knuth's
    multiplicative hash), so the sort cost is representative of real
    unordered samples rather than a presorted best case.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    histogram = registry.histogram("bench_hist")
    values = [float((i * 2654435761) % 100_000) for i in range(observations)]
    started = time.perf_counter()
    for value in values:
        histogram.observe(value)
    observe_wall = time.perf_counter() - started
    started = time.perf_counter()
    p99 = histogram.percentile(99.0)
    first_read_wall = time.perf_counter() - started
    return {
        "observations": observations,
        "observes_per_sec": round(observations / observe_wall, 1),
        "first_ordered_read_ms": round(first_read_wall * 1000, 3),
        "p99": p99,
    }


def run_bench(
    workers: int = 4,
    seeds: int = 8,
    smoke: bool = False,
) -> dict[str, Any]:
    """Run every section; ``smoke`` shrinks each to a CI-sized round."""
    from dataclasses import replace
    import os

    if smoke:
        kernel = bench_kernel(events=60_000)
        transfer = bench_tcp_transfer(transfers=10)
        study_config = replace(_BENCH_STUDY, warmup=5.0, duration=10.0)
        study = bench_probe_study(study_config)
        sweep = bench_multiseed_sweep(workers=min(workers, 2), seeds=min(seeds, 2))
        metrics = bench_metrics(observations=50_000)
    else:
        kernel = bench_kernel()
        transfer = bench_tcp_transfer()
        study = bench_probe_study()
        sweep = bench_multiseed_sweep(workers=workers, seeds=seeds)
        metrics = bench_metrics()
    return {
        "benchmark": BENCH_NAME,
        "smoke": smoke,
        "unix_time": round(time.time(), 1),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "kernel": kernel,
        "tcp_transfer": transfer,
        "probe_study": study,
        "multiseed_sweep": sweep,
        "metrics": metrics,
    }


def write_bench(payload: dict[str, Any], path: str = DEFAULT_OUTPUT) -> str:
    """Write the bench payload as indented JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def format_bench(payload: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a bench payload."""
    kernel = payload["kernel"]
    transfer = payload["tcp_transfer"]
    study = payload["probe_study"]
    sweep = payload["multiseed_sweep"]
    lines = [
        f"== {payload['benchmark']}"
        + (" (smoke)" if payload.get("smoke") else "")
        + f" on {payload['host']['cpu_count']} cpu ==",
        (
            f"kernel:        {kernel['instrumented_events_per_sec']:>12,.0f} ev/s"
            f" instrumented, {kernel['disabled_events_per_sec']:,.0f} ev/s disabled"
        ),
        f"tcp transfer:  {transfer['events_per_sec']:>12,.0f} ev/s full stack",
        f"probe study:   {study['wall_time_s']:>12.2f} s wall (paired, serial)",
        (
            f"seed sweep:    {sweep['serial_wall_s']:>12.2f} s serial vs "
            f"{sweep['parallel_wall_s']:.2f} s with {sweep['workers']} workers "
            f"({sweep['speedup']:.2f}x, bit-identical={sweep['bit_identical']})"
        ),
    ]
    metrics = payload.get("metrics")
    if metrics is not None:
        lines.append(
            f"metrics:       {metrics['observes_per_sec']:>12,.0f} observe/s, "
            f"first ordered read {metrics['first_ordered_read_ms']:.1f} ms"
        )
    return "\n".join(lines)
