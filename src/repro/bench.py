"""The tracked performance baseline (``python -m repro bench``).

Runs a fixed set of micro- and macro-benchmarks over the simulator hot
path and the parallel executor, and writes the readings to a JSON file
(``BENCH_005.json`` by default) so subsequent changes have a perf
trajectory to regress against:

* **kernel** — raw event throughput of ``Simulator.run`` on a
  self-rescheduling timer chain, with instrumentation enabled and with
  the disabled no-op fast path.  Measured best-of-N (like ``timeit``):
  this host's CPU ramps over the first seconds of load, so a single cold
  reading under-reports sustained throughput by up to 2x;
* **cancel_churn** — the RTO re-arm pattern (one cancel + one reschedule
  per simulated ACK), the cancel-heavy workload that tombstone
  compaction exists for;
* **tcp_transfer** — events/sec through the full stack (links, sockets,
  congestion control) on back-to-back 200 KB transfers;
* **probe_study** — wall time of a reduced paired probe study, the
  workhorse scenario behind Figures 12-16;
* **multiseed_sweep** — wall time of the same per-seed run serially and
  under a worker pool (clamped to the host's CPU count, so a 1-core CI
  box never pays pure fork overhead), the speedup between them, and
  whether the two sweeps produced byte-identical values (they must);
* **fluid_step** — throughput of the mean-field background engine: cwnd
  distribution steps per second, flow-count invariance (a million-flow
  cohort must step as fast as a thousand-flow one) and the open-flow
  count sustainable in real time at the default cadence;
* **hybrid** — the hybrid-vs-packet differential agreement deltas
  (learned advisories, probe medians, first-RTT fractions) plus the
  reduced scale scenario's sustained flow count and wall time;
* **metrics** — histogram observe throughput and the cost of the first
  ordered read (the lazy sort), guarding the metrics hot path;
* **slo_overhead** — the kernel timer chain with the windowed
  time-series store and burn-rate SLO engine wired in
  (:mod:`repro.obs.tsdb` / :mod:`repro.obs.slo`): a periodic tsdb
  recorder plus engine evaluations on their own sim-time cadence,
  against the same chain without them, in both the instrumented and
  the disabled capture mode.  The observability tax of the SLO
  subsystem must stay under 5% with the engine enabled and ~0% when
  instrumentation is disabled (every tap is a single gated branch).

When the committed prior artifact (``BENCH_004.json``) is readable, the
payload also records a ``baseline`` section with the headline ratios
against it, and :func:`guard_regression` turns those ratios into a CI
gate: the job fails if kernel or fluid-step throughput drops below the
prior artifact (the fluid guard arms itself only once a baseline with a
``fluid_step`` section exists), or if the same-run SLO overhead
fractions exceed their budgets.

Readings are wall-clock dependent; the JSON records the host's CPU
count and Python version so trajectories compare like with like.  On a
single-core host the sweep clamps to one worker and the speedup reads
1x by construction — the ``bit_identical`` flag and the per-section
events/sec are the portable signals there.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from typing import Any

from repro.experiments.multiseed import sweep_seeds
from repro.experiments.scenarios import ProbeStudyConfig, run_paired_probe_study
from repro.obs import capture, disabled
from repro.sim.kernel import Simulator

#: Bench schema tag; bump when the JSON layout changes.
BENCH_NAME = "BENCH_005"

#: Default output path, relative to the invoking directory.
DEFAULT_OUTPUT = "BENCH_005.json"

#: The committed prior artifact the ``baseline`` section and the CI
#: regression guard compare against.
DEFAULT_BASELINE = "BENCH_004.json"

#: Reduced probe-study config used by the study and sweep sections: big
#: enough to exercise every layer, small enough to finish in seconds.
_BENCH_STUDY = ProbeStudyConfig(
    topology_codes=("LHR", "JFK", "NRT"),
    source_pops=("LHR",),
    warmup=5.0,
    duration=15.0,
    probe_interval=5.0,
    organic_rate=2.0,
)


def _timer_chain(sim: Simulator, events: int) -> None:
    """Schedule a self-rescheduling callback chain of ``events`` events."""

    def tick(remaining: int) -> None:
        if remaining:
            sim.schedule(1e-6, tick, remaining - 1)

    sim.schedule(1e-6, tick, events - 1)
    sim.run_until_idle()


def bench_kernel(events: int = 300_000, repeats: int = 5) -> dict[str, Any]:
    """Raw kernel throughput, instrumented vs the disabled fast path.

    Each mode runs ``repeats`` times and reports the fastest round
    (``timeit`` semantics): the minimum is the run least disturbed by
    the host, and on this single-core box the CPU takes several seconds
    of sustained load to reach full clock, so early rounds double as
    warm-up.
    """
    instrumented = min(_timed_chain_rounds(events, repeats, instrumented=True))
    uninstrumented = min(_timed_chain_rounds(events, repeats, instrumented=False))
    return {
        "events": events,
        "repeats": repeats,
        "instrumented_events_per_sec": round(events / instrumented, 1),
        "disabled_events_per_sec": round(events / uninstrumented, 1),
    }


def _timed_chain_rounds(
    events: int, repeats: int, instrumented: bool
) -> list[float]:
    context = capture if instrumented else disabled
    rounds = []
    for _ in range(repeats):
        with context():
            sim = Simulator()
            started = time.perf_counter()
            _timer_chain(sim, events)
            rounds.append(time.perf_counter() - started)
    return rounds


def _churn_noop() -> None:
    pass


def bench_cancel_churn(rearms: int = 150_000) -> dict[str, Any]:
    """Timer churn: the TCP RTO re-arm pattern, one cancel + one
    reschedule per simulated ACK.

    Every handle but the last is cancelled before it can fire, so the
    heap is almost all tombstones — the workload tombstone compaction
    exists for.  Reports combined schedule+cancel operations per second
    and the physical heap high-water mark (bounded by compaction; the
    pre-compaction queue would hold all ``rearms`` entries).
    """
    with capture():
        sim = Simulator()
        started = time.perf_counter()
        handle = sim.schedule(60.0, _churn_noop)
        max_heap = 0
        queue = sim._queue
        for _ in range(rearms):
            sim.cancel(handle)
            handle = sim.schedule(60.0, _churn_noop)
            if queue.heap_size > max_heap:
                max_heap = queue.heap_size
        sim.run_until_idle()
        elapsed = time.perf_counter() - started
    ops = rearms * 2
    return {
        "rearms": rearms,
        "churn_ops_per_sec": round(ops / elapsed, 1),
        "heap_high_water": max_heap,
        "wall_time_s": round(elapsed, 4),
    }


def bench_tcp_transfer(transfers: int = 40, response_bytes: int = 200_000) -> dict[str, Any]:
    """Full-stack events/sec: repeated transfers on a two-host testbed."""
    from repro.testing import TwoHostTestbed, request_response

    bed = TwoHostTestbed(rtt=0.050)
    bed.serve_echo()
    started = time.perf_counter()
    for _ in range(transfers):
        request_response(bed, response_bytes=response_bytes)
    elapsed = time.perf_counter() - started
    return {
        "transfers": transfers,
        "events": bed.sim.events_processed,
        "events_per_sec": round(bed.sim.events_processed / elapsed, 1),
        "wall_time_s": round(elapsed, 4),
    }


def bench_probe_study(config: ProbeStudyConfig | None = None) -> dict[str, Any]:
    """Wall time of one serial paired probe study (both arms)."""
    config = config if config is not None else _BENCH_STUDY
    started = time.perf_counter()
    control, riptide = run_paired_probe_study(config)
    elapsed = time.perf_counter() - started
    return {
        "wall_time_s": round(elapsed, 4),
        "events_processed": (
            control.cluster.sim.events_processed
            + riptide.cluster.sim.events_processed
        ),
        "probes_completed": (
            len(control.fleet.completed_results())
            + len(riptide.fleet.completed_results())
        ),
    }


def _sweep_metric(seed: int) -> float:
    """Per-seed sweep workload: mean 100 KB probe time of a small arm."""
    from repro.experiments.scenarios import run_probe_arm

    run = run_probe_arm(replace_seed(_BENCH_STUDY, seed), riptide_enabled=False)
    times = run.fleet.completion_times(size_bytes=100_000)
    return sum(times) / len(times) if times else 0.0


def replace_seed(config: ProbeStudyConfig, seed: int) -> ProbeStudyConfig:
    from dataclasses import replace

    return replace(config, seed=seed)


def bench_multiseed_sweep(workers: int = 4, seeds: int = 8) -> dict[str, Any]:
    """Serial vs parallel wall time of a multi-seed stability sweep.

    The worker count is clamped to the host's CPU count: forking four
    workers on a one-core box measures fork overhead, not parallelism,
    and used to report a meaningless sub-1x "speedup" the regression
    guard then had to special-case.  The clamp is recorded so artifacts
    from differently-sized hosts stay interpretable.
    """
    workers_requested = workers
    cpu_count = os.cpu_count() or 1
    workers = max(1, min(workers, cpu_count))
    seed_list = list(range(1, seeds + 1))
    started = time.perf_counter()
    serial = sweep_seeds("bench_probe_mean", seed_list, _sweep_metric, workers=1)
    serial_wall = time.perf_counter() - started
    started = time.perf_counter()
    parallel = sweep_seeds(
        "bench_probe_mean", seed_list, _sweep_metric, workers=workers
    )
    parallel_wall = time.perf_counter() - started
    return {
        "seeds": seeds,
        "workers": workers,
        "workers_requested": workers_requested,
        "workers_clamped": workers != workers_requested,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 3) if parallel_wall else 0.0,
        "bit_identical": serial.values == parallel.values,
    }


def bench_fluid_step(
    steps: int = 2000, flows: float = 1_000_000.0
) -> dict[str, Any]:
    """Mean-field engine throughput: distribution steps per second.

    A cohort is warmed into a realistic spread (drift + churn + loss),
    then stepped ``steps`` more times.  The same loop runs on a
    thousand-flow cohort to measure flow-count invariance — the whole
    point of the fluid engine is that step cost scales with the
    histogram spread, not the flow count, so the ratio should sit near
    1.  ``max_flows_realtime`` is the open-flow count sustainable in
    real time at the default cadence: (steps/s x cadence) populations,
    each carrying ``flows`` flows.
    """
    from repro.sim.fluid import FluidConfig, FluidPopulation

    cadence = FluidConfig().cadence

    def timed(flow_count: float) -> float:
        population = FluidPopulation(
            "bench",
            rtt=0.1,
            target_flows=flow_count,
            entry_window=10,
            churn_per_flow_per_sec=0.05,
        )
        for _ in range(50):
            population.step(cadence, 1e-4, 10)
        started = time.perf_counter()
        for _ in range(steps):
            population.step(cadence, 1e-4, 10)
        return time.perf_counter() - started

    large_wall = timed(flows)
    small_wall = timed(1_000.0)
    steps_per_sec = steps / large_wall
    return {
        "steps": steps,
        "flows": flows,
        "steps_per_sec": round(steps_per_sec, 1),
        "flow_invariance_ratio": round(large_wall / small_wall, 3)
        if small_wall
        else 0.0,
        "max_flows_realtime": round(steps_per_sec * cadence * flows),
    }


def bench_hybrid(smoke: bool = False) -> dict[str, Any]:
    """Hybrid-vs-packet agreement plus the scale scenario's headline.

    Records the differential deltas the acceptance tests hold within
    tolerance (learned advisories, probe completion medians, first-RTT
    fractions) and what a reduced scale run sustained, so BENCH
    artifacts track model fidelity alongside raw throughput.
    """
    from repro.experiments.hybrid import (
        HybridScaleConfig,
        HybridStudyConfig,
        run_differential,
        run_scale,
    )

    # The differential runs full-length even in smoke mode: a truncated
    # run reports mid-ramp disagreement, not model fidelity.
    differential = run_differential(HybridStudyConfig())
    scale_config = HybridScaleConfig(
        flows_per_pair=100.0 if smoke else 900.0,
        warmup=3.0 if smoke else 5.0,
        duration=10.0 if smoke else 25.0,
    )
    scale = run_scale(scale_config)
    packet_events = differential.packet.events_processed
    hybrid_events = differential.hybrid.events_processed
    return {
        "smoke": smoke,
        "advisory_max_rel_delta": round(
            differential.advisory_max_rel_delta(), 4
        ),
        "probe_median_max_rel_delta": round(
            differential.anchor_max_rel_delta(), 4
        ),
        "first_rtt_fraction_max_delta": round(
            differential.first_window_fraction_delta(), 4
        ),
        "packet_arm_events": packet_events,
        "hybrid_arm_events": hybrid_events,
        "event_reduction": round(packet_events / hybrid_events, 2)
        if hybrid_events
        else 0.0,
        "scale_flows_per_window": round(scale.flows_min),
        "scale_sustained_million": scale.sustained_million_flows,
        "scale_wall_s": round(scale.wall_seconds, 4),
    }


def bench_metrics(observations: int = 200_000) -> dict[str, Any]:
    """Histogram hot path: observe throughput + first ordered read.

    Values are a deterministic pseudo-random sequence (Knuth's
    multiplicative hash), so the sort cost is representative of real
    unordered samples rather than a presorted best case.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    histogram = registry.histogram("bench_hist")
    values = [float((i * 2654435761) % 100_000) for i in range(observations)]
    started = time.perf_counter()
    for value in values:
        histogram.observe(value)
    observe_wall = time.perf_counter() - started
    started = time.perf_counter()
    p99 = histogram.percentile(99.0)
    first_read_wall = time.perf_counter() - started
    return {
        "observations": observations,
        "observes_per_sec": round(observations / observe_wall, 1),
        "first_ordered_read_ms": round(first_read_wall * 1000, 3),
        "p99": p99,
    }


def _slo_chain_round(
    events: int,
    instrumented: bool,
    with_slo: bool,
    record_interval: float,
    eval_interval: float,
) -> float:
    """One timed timer-chain round, optionally with the SLO path wired.

    ``with_slo`` adds the production-shaped observability work: a
    periodic recorder writing a batch of tsdb samples for several
    sources (the agent/probe tap pattern — samples ride periodic ticks,
    never individual kernel events) and burn-rate engine evaluations on
    their own sim-time cadence (the
    :class:`~repro.cdn.monitors.SloEvaluator` pattern).  Both callbacks
    gate on ``obs.enabled`` exactly like the production taps.

    The plain variant schedules the *same* periodic callbacks as empty
    no-ops: the event count and heap depth are identical in both
    variants, so the measured difference is the SLO subsystem's own
    work, not the kernel's heap-depth sensitivity (a one-event timer
    chain pops from a single-entry heap; any resident timers change
    that baseline for reasons unrelated to this subsystem).
    """
    from repro.obs.slo import BurnRateRule, SloEngine, SloSignal, SloSpec

    context = capture if instrumented else disabled
    with context():
        sim = Simulator()
        obs = sim.obs
        tsdb = obs.tsdb
        obs_on = obs.enabled
        if with_slo:
            engine = SloEngine(
                tsdb,
                obs.metrics,
                obs.trace,
                obs.spans,
                obs.alerts,
                specs=(
                    SloSpec(
                        name="bench_chain_latency",
                        description="timer-chain tick latency stays flat",
                        signal=SloSignal(kind="percentile", series="chain_tick", p=90.0),
                        threshold=1.0,
                        objective=0.25,
                    ),
                ),
                rules=(
                    BurnRateRule(
                        severity="page",
                        long_window=eval_interval * 3,
                        short_window=eval_interval,
                        burn_factor=2.0,
                    ),
                ),
                window=eval_interval,
            )
            sources = tuple(f"bench-{index}" for index in range(4))

            def record_batch(now: float) -> None:
                if not obs_on:
                    return
                for source in sources:
                    for step in range(5):
                        tsdb.record(now, source, "chain_tick", 1e-6 * (step + 1))

            def evaluate(now: float) -> None:
                if obs_on:
                    engine.evaluate(now)

        else:

            def record_batch(now: float) -> None:
                pass

            def evaluate(now: float) -> None:
                pass

        # Fixed schedules (no self-rescheduling), so the run still
        # drains to idle once the chain finishes.
        span = events * 1e-6
        for i in range(1, int(span / record_interval) + 1):
            sim.schedule(i * record_interval, record_batch, i * record_interval)
        for i in range(1, int(span / eval_interval) + 1):
            sim.schedule(i * eval_interval, evaluate, i * eval_interval)

        started = time.perf_counter()
        _timer_chain(sim, events)
        return time.perf_counter() - started


def bench_slo_overhead(
    events: int = 200_000,
    repeats: int = 5,
    blocks: int = 3,
    record_interval: float = 0.005,
    eval_interval: float = 0.04,
) -> dict[str, Any]:
    """The observability tax of the tsdb + burn-rate SLO subsystem.

    Paired timings of the same kernel timer chain: with and without
    the SLO path, in the instrumented and the disabled capture mode.
    Both variants of a pair carry identical timer populations (the
    plain chain schedules the same periodic callbacks as no-ops), so a
    pair differs only in the SLO work itself.

    Shared-host noise on 50-200 ms walls runs several percent — the
    same order as the signal — so a single estimate of either flavour
    (best-of-N walls, or a median of per-round ratios) still reads
    multi-percent phantoms when a sustained drift patch covers one
    mode's rounds.  The estimator therefore layers two defences:

    * within a *block* of ``repeats`` rounds per mode (order
      alternating each round so drift hits all modes alike), the
      overhead fraction is computed from each mode's best wall —
      best-of-N discards per-round spikes;
    * the headline fraction is the **median across ``blocks``
      independent blocks**, which discards whole blocks contaminated
      by a drift patch longer than a round.

    Readings (clamped at zero; the true disabled cost is a gated
    early-return, indistinguishable from the no-op baseline):

    * ``engine_overhead_fraction`` — instrumented chain with the
      periodic tsdb recorder and burn-rate engine evaluations vs the
      plain instrumented chain.  Budget: < 5%.
    * ``disabled_overhead_fraction`` — the identical wiring under a
      disabled capture (every callback gates on ``obs.enabled`` and
      returns immediately) vs the plain disabled chain.  Budget: ~0%
      (< 2% allowing timer noise).

    The default cadences put one recorder batch per ~5k chain events
    and one engine evaluation per ~40k — still an order of magnitude
    denser per event than a production run (chaos: 5 s windows over
    ~100k events/s), so the budgets are conservative.
    """

    modes = (
        ("plain", True, False),
        ("engine", True, True),
        ("disabled_plain", False, False),
        ("disabled_tapped", False, True),
    )
    # One untimed round per mode warms the CPU clock and the code paths
    # before anything is scored.
    for _, instrumented, with_slo in modes:
        _slo_chain_round(events, instrumented, with_slo, record_interval, eval_interval)
    best: dict[str, float] = {name: float("inf") for name, _, _ in modes}
    engine_fractions: list[float] = []
    disabled_fractions: list[float] = []
    for _ in range(blocks):
        walls: dict[str, float] = {name: float("inf") for name, _, _ in modes}
        for repeat in range(repeats):
            order = modes if repeat % 2 == 0 else tuple(reversed(modes))
            for name, instrumented, with_slo in order:
                wall = _slo_chain_round(
                    events, instrumented, with_slo, record_interval, eval_interval
                )
                if wall < walls[name]:
                    walls[name] = wall
                if wall < best[name]:
                    best[name] = wall
        engine_fractions.append(1.0 - walls["plain"] / walls["engine"])
        disabled_fractions.append(
            1.0 - walls["disabled_plain"] / walls["disabled_tapped"]
        )
    return {
        "events": events,
        "repeats": repeats,
        "blocks": blocks,
        "record_interval_s": record_interval,
        "eval_interval_s": eval_interval,
        "plain_events_per_sec": round(events / best["plain"], 1),
        "engine_events_per_sec": round(events / best["engine"], 1),
        "disabled_events_per_sec": round(events / best["disabled_plain"], 1),
        "disabled_tapped_events_per_sec": round(
            events / best["disabled_tapped"], 1
        ),
        "engine_overhead_fraction": round(
            max(0.0, statistics.median(engine_fractions)), 4
        ),
        "disabled_overhead_fraction": round(
            max(0.0, statistics.median(disabled_fractions)), 4
        ),
    }


def load_baseline(path: str = DEFAULT_BASELINE) -> dict[str, Any] | None:
    """Read a prior bench artifact; None when absent or unreadable."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def baseline_ratios(
    payload: dict[str, Any], baseline: dict[str, Any]
) -> dict[str, Any]:
    """Headline this-run / prior-artifact ratios (>1 means faster)."""

    def ratio(new: float, old: float) -> float | None:
        return round(new / old, 3) if old else None

    kernel, base_kernel = payload["kernel"], baseline.get("kernel", {})
    transfer = payload["tcp_transfer"]
    base_transfer = baseline.get("tcp_transfer", {})
    study, base_study = payload["probe_study"], baseline.get("probe_study", {})
    return {
        "benchmark": baseline.get("benchmark"),
        "kernel_instrumented": ratio(
            kernel["instrumented_events_per_sec"],
            base_kernel.get("instrumented_events_per_sec", 0.0),
        ),
        "kernel_disabled": ratio(
            kernel["disabled_events_per_sec"],
            base_kernel.get("disabled_events_per_sec", 0.0),
        ),
        "tcp_transfer": ratio(
            transfer["events_per_sec"],
            base_transfer.get("events_per_sec", 0.0),
        ),
        # Wall time: lower is better, so the ratio is inverted to keep
        # >1 meaning "faster than the baseline".
        "probe_study": ratio(
            base_study.get("wall_time_s", 0.0), study["wall_time_s"]
        ),
        # None until the prior artifact grows a fluid_step section.
        "fluid_step": ratio(
            payload.get("fluid_step", {}).get("steps_per_sec", 0.0),
            baseline.get("fluid_step", {}).get("steps_per_sec", 0.0),
        ),
        # None until the prior artifact grows an slo_overhead section
        # (BENCH_004 and earlier predate the SLO engine).
        "slo_engine": ratio(
            payload.get("slo_overhead", {}).get("engine_events_per_sec", 0.0),
            baseline.get("slo_overhead", {}).get("engine_events_per_sec", 0.0),
        ),
    }


def guard_regression(
    payload: dict[str, Any],
    baseline: dict[str, Any],
    min_ratio: float = 1.0,
) -> list[str]:
    """CI gate: kernel and fluid-step throughput must not regress below
    the prior artifact, and the SLO subsystem's same-run overhead
    fractions must stay inside their budgets (< 5% with the engine
    enabled, < 2% with instrumentation disabled).  Returns
    human-readable failures (empty = pass).

    A baseline without a ``fluid_step`` section (BENCH_003 and earlier
    predate the fluid engine) simply leaves that guard unarmed — only
    the kernel section is mandatory.  The SLO overhead guard is
    self-contained (both modes are timed back-to-back in this run), so
    it arms whenever the payload carries an ``slo_overhead`` section.
    """
    failures: list[str] = []
    new = payload["kernel"]["instrumented_events_per_sec"]
    old = baseline.get("kernel", {}).get("instrumented_events_per_sec")
    if old is None:
        failures.append("baseline artifact has no kernel section to guard against")
        return failures
    floor = old * min_ratio
    if new < floor:
        failures.append(
            f"kernel.instrumented_events_per_sec regressed: {new:,.0f}/s is "
            f"below the guard floor {floor:,.0f}/s "
            f"({baseline.get('benchmark', 'baseline')} = {old:,.0f}/s "
            f"x min ratio {min_ratio})"
        )
    fluid_new = payload.get("fluid_step", {}).get("steps_per_sec")
    fluid_old = baseline.get("fluid_step", {}).get("steps_per_sec")
    if fluid_new is not None and fluid_old is not None:
        fluid_floor = fluid_old * min_ratio
        if fluid_new < fluid_floor:
            failures.append(
                f"fluid_step.steps_per_sec regressed: {fluid_new:,.0f}/s is "
                f"below the guard floor {fluid_floor:,.0f}/s "
                f"({baseline.get('benchmark', 'baseline')} = {fluid_old:,.0f}/s "
                f"x min ratio {min_ratio})"
            )
    slo = payload.get("slo_overhead")
    if slo is not None:
        engine_overhead = slo["engine_overhead_fraction"]
        if engine_overhead >= 0.05:
            failures.append(
                f"slo_overhead.engine_overhead_fraction too high: "
                f"{engine_overhead:.1%} of kernel throughput with the "
                f"burn-rate engine enabled (budget < 5%)"
            )
        disabled_overhead = slo["disabled_overhead_fraction"]
        if disabled_overhead >= 0.02:
            failures.append(
                f"slo_overhead.disabled_overhead_fraction too high: "
                f"{disabled_overhead:.1%} with instrumentation disabled "
                f"(the gated taps must be free; budget < 2%)"
            )
    return failures


def run_bench(
    workers: int = 4,
    seeds: int = 8,
    smoke: bool = False,
    baseline_path: str = DEFAULT_BASELINE,
) -> dict[str, Any]:
    """Run every section; ``smoke`` shrinks each to a CI-sized round."""
    from dataclasses import replace

    if smoke:
        kernel = bench_kernel(events=60_000, repeats=3)
        churn = bench_cancel_churn(rearms=30_000)
        transfer = bench_tcp_transfer(transfers=10)
        study_config = replace(_BENCH_STUDY, warmup=5.0, duration=10.0)
        study = bench_probe_study(study_config)
        sweep = bench_multiseed_sweep(workers=min(workers, 2), seeds=min(seeds, 2))
        fluid = bench_fluid_step(steps=500)
        hybrid = bench_hybrid(smoke=True)
        metrics = bench_metrics(observations=50_000)
        slo = bench_slo_overhead(events=60_000, repeats=7)
    else:
        kernel = bench_kernel()
        churn = bench_cancel_churn()
        transfer = bench_tcp_transfer()
        study = bench_probe_study()
        sweep = bench_multiseed_sweep(workers=workers, seeds=seeds)
        fluid = bench_fluid_step()
        hybrid = bench_hybrid()
        metrics = bench_metrics()
        slo = bench_slo_overhead()
    payload: dict[str, Any] = {
        "benchmark": BENCH_NAME,
        "smoke": smoke,
        "unix_time": round(time.time(), 1),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "kernel": kernel,
        "cancel_churn": churn,
        "tcp_transfer": transfer,
        "probe_study": study,
        "multiseed_sweep": sweep,
        "fluid_step": fluid,
        "hybrid": hybrid,
        "metrics": metrics,
        "slo_overhead": slo,
    }
    baseline = load_baseline(baseline_path)
    if baseline is not None:
        payload["baseline"] = {
            "path": baseline_path,
            "ratios": baseline_ratios(payload, baseline),
        }
    return payload


def write_bench(payload: dict[str, Any], path: str = DEFAULT_OUTPUT) -> str:
    """Write the bench payload as indented JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def format_bench(payload: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a bench payload."""
    kernel = payload["kernel"]
    transfer = payload["tcp_transfer"]
    study = payload["probe_study"]
    sweep = payload["multiseed_sweep"]
    lines = [
        f"== {payload['benchmark']}"
        + (" (smoke)" if payload.get("smoke") else "")
        + f" on {payload['host']['cpu_count']} cpu ==",
        (
            f"kernel:        {kernel['instrumented_events_per_sec']:>12,.0f} ev/s"
            f" instrumented, {kernel['disabled_events_per_sec']:,.0f} ev/s disabled"
        ),
        f"tcp transfer:  {transfer['events_per_sec']:>12,.0f} ev/s full stack",
        f"probe study:   {study['wall_time_s']:>12.2f} s wall (paired, serial)",
        (
            f"seed sweep:    {sweep['serial_wall_s']:>12.2f} s serial vs "
            f"{sweep['parallel_wall_s']:.2f} s with {sweep['workers']} workers "
            f"({sweep['speedup']:.2f}x, bit-identical={sweep['bit_identical']})"
        ),
    ]
    churn = payload.get("cancel_churn")
    if churn is not None:
        lines.append(
            f"cancel churn:  {churn['churn_ops_per_sec']:>12,.0f} ops/s "
            f"(heap high-water {churn['heap_high_water']})"
        )
    fluid = payload.get("fluid_step")
    if fluid is not None:
        lines.append(
            f"fluid step:    {fluid['steps_per_sec']:>12,.0f} steps/s at "
            f"{fluid['flows']:,.0f} flows "
            f"(invariance {fluid['flow_invariance_ratio']:.2f}x)"
        )
    hybrid = payload.get("hybrid")
    if hybrid is not None:
        lines.append(
            f"hybrid:        {hybrid['scale_flows_per_window']:>12,.0f} "
            f"flows/window in {hybrid['scale_wall_s']:.1f} s wall; deltas "
            f"advisory {hybrid['advisory_max_rel_delta']:.1%} / "
            f"median {hybrid['probe_median_max_rel_delta']:.1%} / "
            f"firstRTT {hybrid['first_rtt_fraction_max_delta']:.2f} "
            f"({hybrid['event_reduction']:.0f}x fewer events)"
        )
    metrics = payload.get("metrics")
    if metrics is not None:
        lines.append(
            f"metrics:       {metrics['observes_per_sec']:>12,.0f} observe/s, "
            f"first ordered read {metrics['first_ordered_read_ms']:.1f} ms"
        )
    slo = payload.get("slo_overhead")
    if slo is not None:
        lines.append(
            f"slo overhead:  {slo['engine_events_per_sec']:>12,.0f} ev/s with "
            f"engine ({slo['engine_overhead_fraction']:.1%} tax; disabled "
            f"{slo['disabled_overhead_fraction']:.1%})"
        )
    baseline = payload.get("baseline")
    if baseline is not None:
        ratios = baseline["ratios"]
        lines.append(
            f"vs {ratios.get('benchmark', 'baseline')}:  "
            f"kernel {_fmt_ratio(ratios['kernel_instrumented'])} "
            f"(disabled {_fmt_ratio(ratios['kernel_disabled'])}), "
            f"tcp {_fmt_ratio(ratios['tcp_transfer'])}, "
            f"probe study {_fmt_ratio(ratios['probe_study'])}, "
            f"fluid {_fmt_ratio(ratios.get('fluid_step'))}"
        )
    return "\n".join(lines)


def _fmt_ratio(value: float | None) -> str:
    return f"{value:.2f}x" if value is not None else "n/a"
