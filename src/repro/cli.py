"""Command-line interface for the reproduction.

::

    python -m repro list                 # all registered experiments
    python -m repro run fig03            # regenerate one figure/table
    python -m repro run fig10 --fast     # reduced-scale simulation run
    python -m repro describe fig12_14    # what an experiment reproduces

``run`` prints the same rows/series the corresponding paper figure or
table reports.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import get_experiment, list_experiments

#: Reduced-scale keyword arguments per experiment for ``--fast``.
_FAST_OVERRIDES: dict[str, dict] = {
    "fig02": {"samples": 20_000},
    "fig03": {"samples": 20_000},
    "fig04": {"points": 100},
    "fig10": {
        "c_max_values": (50, 100, 250),
        "topology_codes": ("LHR", "AMS", "JFK", "NRT", "SYD"),
        "duration": 20.0,
        "warmup": 5.0,
    },
    "fig11": {"duration": 45.0},
}

#: Fast mode for the paired-study experiments shrinks the shared config.
_FAST_STUDY_IDS = ("fig12_14", "fig15_16", "edge_cases")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures and tables from the Riptide paper "
        "(ICDCS 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. fig03, table2, fig12_14")
    run_parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced-scale run (smaller topology / fewer samples)",
    )

    describe_parser = subparsers.add_parser(
        "describe", help="show what an experiment reproduces"
    )
    describe_parser.add_argument("experiment_id")

    return parser


def _cmd_list() -> int:
    for exp in list_experiments():
        kind = "simulation" if exp.simulation_backed else "model"
        print(f"{exp.experiment_id:<10} [{kind:<10}] {exp.description}")
    return 0


def _cmd_describe(experiment_id: str) -> int:
    exp = get_experiment(experiment_id)
    print(f"id:          {exp.experiment_id}")
    print(f"description: {exp.description}")
    print(f"backed by:   {'full simulation' if exp.simulation_backed else 'closed-form model'}")
    doc = sys.modules[exp.run.__module__].__doc__ or ""
    print(f"\n{doc.strip()}")
    return 0


def _cmd_run(experiment_id: str, fast: bool) -> int:
    exp = get_experiment(experiment_id)
    kwargs: dict = {}
    if fast:
        if experiment_id in _FAST_STUDY_IDS:
            from repro.experiments.scenarios import ProbeStudyConfig

            kwargs["config"] = ProbeStudyConfig(
                topology_codes=("LHR", "AMS", "JFK", "NRT", "SYD"),
                warmup=10.0,
                duration=30.0,
            )
        else:
            kwargs = dict(_FAST_OVERRIDES.get(experiment_id, {}))
    if exp.simulation_backed:
        print(f"running {experiment_id} (full simulation; this takes a while)...")
    started = time.perf_counter()
    result = exp.run(**kwargs)
    elapsed = time.perf_counter() - started
    print(result.report())
    print(f"\n[{experiment_id} completed in {elapsed:.1f}s]")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "describe":
        return _cmd_describe(args.experiment_id)
    if args.command == "run":
        try:
            return _cmd_run(args.experiment_id, args.fast)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    raise AssertionError("unreachable: argparse enforces the command set")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
