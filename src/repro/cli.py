"""Command-line interface for the reproduction.

::

    python -m repro list                 # all registered experiments
    python -m repro run fig03            # regenerate one figure/table
    python -m repro run fig10 --fast     # reduced-scale simulation run
    python -m repro run fig10 --workers 4  # fan the sweep across processes
    python -m repro run --faults chaos_partition  # paired chaos study
    python -m repro run --list           # runnable experiments + worker/fault surface
    python -m repro tournament --workers 4  # policy zoo x scenarios leaderboard
    python -m repro faults               # list chaos scenarios + timelines
    python -m repro describe fig12_14    # what an experiment reproduces
    python -m repro metrics fig10        # run + print the metric table
    python -m repro metrics fig10 --prom # Prometheus text exposition instead
    python -m repro flows fig12_14       # run + print per-connection flow records
    python -m repro flows fig12_14 --since 10 --until 40  # sim-time window
    python -m repro report chaos_lossy_agent  # tail-latency attribution report
    python -m repro alerts chaos_lossy_agent --check  # SLO burn-rate alerts
    python -m repro watch chaos_lossy_agent   # replay the run as live frames
    python -m repro bench                # perf baseline -> BENCH_005.json
    python -m repro bench --smoke --guard  # CI: fail on kernel regression
    python -m repro lint src/            # determinism/sim-invariant analyzer

``run`` prints the same rows/series the corresponding paper figure or
table reports.  ``metrics`` runs the experiment under an instrumentation
capture (see :mod:`repro.obs`) and prints the aggregated metric table
and trace-event totals instead — the operator's view of the same run.
``flows`` and ``report`` use the same capture but surface the flow
records, lifecycle spans and the tail-latency attribution built from
them (:mod:`repro.obs.report`).  Experiments may be named by id
(``fig10``) or by harness module name (``fig10_cmax_sweep``).

``alerts`` evaluates the burn-rate SLO engine's episode log into a
report artifact (``--check`` additionally enforces the scenario's
expected-alert contracts), and ``watch`` replays the captured stores as
operator dashboard frames.  ``metrics``, ``flows``, ``report``,
``alerts`` and ``watch`` accept ``--workers``; the worker captures
merge deterministically, so their output is byte-identical to a serial
run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import EXPERIMENTS, get_experiment, list_experiments
from repro.obs import capture

#: Reduced-scale keyword arguments per experiment for ``--fast``.
_FAST_OVERRIDES: dict[str, dict] = {
    "fig02": {"samples": 20_000},
    "fig03": {"samples": 20_000},
    "fig04": {"points": 100},
    "fig10": {
        "c_max_values": (50, 100, 250),
        "topology_codes": ("LHR", "AMS", "JFK", "NRT", "SYD"),
        "duration": 20.0,
        "warmup": 5.0,
    },
    "fig11": {"duration": 45.0},
    # Keep the full 34-PoP topology but shrink the population and clock:
    # the CI scale-smoke job runs this to exercise the whole fluid path.
    "hybrid": {"flows_per_pair": 100.0, "warmup": 3.0, "duration": 10.0},
}

#: Fast mode for the paired-study experiments shrinks the shared config.
_FAST_STUDY_IDS = ("fig12_14", "fig15_16", "edge_cases")

#: The chaos studies (also reachable via ``run --faults <scenario>``).
_CHAOS_IDS = ("chaos_lossy_agent", "chaos_partition", "chaos_flaky_tools")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures and tables from the Riptide paper "
        "(ICDCS 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment_id",
        nargs="?",
        default=None,
        help="e.g. fig03, table2, fig12_14 (omit when using --faults)",
    )
    run_parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list runnable experiments with their worker support and "
        "fault-scenario pairing, then exit",
    )
    run_parser.add_argument(
        "--faults",
        metavar="SCENARIO",
        default=None,
        help="run the paired chaos study for a fault scenario "
        "(see `repro faults` for the list)",
    )
    run_parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced-scale run (smaller topology / fewer samples)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan independent simulation arms across N worker processes "
        "(experiments that support it; results are identical to serial)",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the perf baseline and write it to a JSON file",
    )
    bench_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output JSON path (default: BENCH_005.json)",
    )
    bench_parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="worker count for the sweep section (default: 4)",
    )
    bench_parser.add_argument(
        "--seeds",
        type=int,
        default=8,
        metavar="N",
        help="seed count for the sweep section (default: 8)",
    )
    bench_parser.add_argument(
        "--smoke",
        action="store_true",
        help="one short round of each section (CI smoke)",
    )
    bench_parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="prior bench artifact to compute ratios against "
        "(default: BENCH_004.json when present)",
    )
    bench_parser.add_argument(
        "--guard",
        action="store_true",
        help="exit non-zero if kernel or fluid-step events/s regresses "
        "below the baseline artifact",
    )
    bench_parser.add_argument(
        "--guard-min-ratio",
        type=float,
        default=1.0,
        metavar="R",
        help="guard floor as a fraction of the baseline kernel events/s "
        "(default: 1.0)",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the determinism/sim-invariant static analyzer",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/)",
    )
    lint_parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON (alias for --format json)",
    )
    lint_parser.add_argument(
        "--format",
        dest="lint_format",
        choices=("text", "json", "github"),
        default=None,
        help="output format: text (default), json, or github workflow "
        "annotations",
    )
    lint_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk module index cache",
    )
    lint_parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="JSON baseline of fingerprints to suppress (stale entries fail)",
    )
    lint_parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (e.g. DET001,SLOT001)",
    )
    lint_parser.add_argument(
        "--ignore",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to skip",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the rule codes and what they check, then exit",
    )

    tournament_parser = subparsers.add_parser(
        "tournament",
        help="race the window-policy zoo across scenarios; emit a leaderboard",
    )
    tournament_parser.add_argument(
        "--policies",
        nargs="*",
        metavar="POLICY",
        default=None,
        help="policies to race (default: the full zoo)",
    )
    tournament_parser.add_argument(
        "--scenarios",
        nargs="*",
        metavar="SCENARIO",
        default=None,
        help="scenario columns (default: the full matrix)",
    )
    tournament_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan the matrix cells across N worker processes "
        "(the leaderboard is byte-identical to serial)",
    )
    tournament_parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced clock per cell (shorter warmup and probing)",
    )
    tournament_parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the leaderboard artifact JSON to PATH",
    )
    tournament_parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="write the leaderboard as markdown to PATH",
    )

    faults_parser = subparsers.add_parser(
        "faults",
        help="list the chaos fault scenarios and their timelines",
    )
    faults_parser.add_argument(
        "--duration",
        type=float,
        default=90.0,
        metavar="SECONDS",
        help="probing duration the printed timelines are scaled to "
        "(default: 90)",
    )

    describe_parser = subparsers.add_parser(
        "describe", help="show what an experiment reproduces"
    )
    describe_parser.add_argument("experiment_id")

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="run an experiment and print its metric table and trace totals",
    )
    metrics_parser.add_argument(
        "experiment_id", help="e.g. fig10 or fig10_cmax_sweep"
    )
    metrics_parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced-scale run (smaller topology / fewer samples)",
    )
    metrics_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan independent simulation arms across N worker processes "
        "(output is byte-identical to serial)",
    )
    metrics_parser.add_argument(
        "--json",
        action="store_true",
        help="emit metrics and trace as JSON instead of tables",
    )
    metrics_parser.add_argument(
        "--prom",
        action="store_true",
        help="emit the registry in the Prometheus text exposition format "
        "(histograms as summaries; deterministic, byte-comparable)",
    )
    metrics_parser.add_argument(
        "--csv",
        metavar="PATH",
        help="also write the metric table to PATH as CSV",
    )
    metrics_parser.add_argument(
        "--trace-csv",
        metavar="PATH",
        help="also write the retained trace events to PATH as CSV",
    )

    flows_parser = subparsers.add_parser(
        "flows",
        help="run an experiment and print its per-connection flow records",
    )
    flows_parser.add_argument(
        "experiment_id", help="e.g. fig12_14 or chaos_lossy_agent"
    )
    flows_parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced-scale run (smaller topology / fewer samples)",
    )
    flows_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan independent simulation arms across N worker processes "
        "(output is byte-identical to serial)",
    )
    flows_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the flow records as JSON instead of a summary table",
    )
    flows_parser.add_argument(
        "--jsonl",
        metavar="PATH",
        help="also write the flow records to PATH as JSON Lines",
    )
    flows_parser.add_argument(
        "--since",
        type=float,
        default=None,
        metavar="T",
        help="only flows alive at or after sim-time T seconds",
    )
    flows_parser.add_argument(
        "--until",
        type=float,
        default=None,
        metavar="T",
        help="only flows opened at or before sim-time T seconds",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="run an experiment and print its tail-latency attribution report",
    )
    report_parser.add_argument(
        "experiment_id", help="e.g. chaos_lossy_agent or fig12_14"
    )
    report_parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced-scale run (smaller topology / fewer samples)",
    )
    report_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan independent simulation arms across N worker processes "
        "(output is byte-identical to serial)",
    )
    report_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    report_parser.add_argument(
        "--out",
        metavar="PATH",
        help="also write the report JSON to PATH",
    )
    report_parser.add_argument(
        "--spans",
        metavar="PATH",
        help="also write the lifecycle spans to PATH as Chrome trace JSON "
        "(loadable in Perfetto / chrome://tracing)",
    )
    report_parser.add_argument(
        "--timeline-csv",
        metavar="PATH",
        help="also write the sampled time series to PATH as CSV",
    )
    report_parser.add_argument(
        "--since",
        type=float,
        default=None,
        metavar="T",
        help="attribute only probes overlapping sim-time >= T seconds",
    )
    report_parser.add_argument(
        "--until",
        type=float,
        default=None,
        metavar="T",
        help="attribute only probes overlapping sim-time <= T seconds",
    )

    alerts_parser = subparsers.add_parser(
        "alerts",
        help="run an experiment and print its SLO burn-rate alert report",
    )
    alerts_parser.add_argument(
        "experiment_id", help="e.g. chaos_lossy_agent or fig12_14"
    )
    alerts_parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced-scale run (smaller topology / fewer samples)",
    )
    alerts_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan independent simulation arms across N worker processes "
        "(output is byte-identical to serial)",
    )
    alerts_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the alert report as JSON instead of markdown",
    )
    alerts_parser.add_argument(
        "--out",
        metavar="PATH",
        help="also write the alert report JSON to PATH",
    )
    alerts_parser.add_argument(
        "--markdown",
        metavar="PATH",
        help="also write the alert report as markdown to PATH",
    )
    alerts_parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the experiment's expected-alert contracts "
        "(exit 1 when an expected alert never fired/resolved)",
    )

    watch_parser = subparsers.add_parser(
        "watch",
        help="run an experiment and replay it as live operator frames",
    )
    watch_parser.add_argument(
        "experiment_id", help="e.g. chaos_lossy_agent or fig12_14"
    )
    watch_parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced-scale run (smaller topology / fewer samples)",
    )
    watch_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan independent simulation arms across N worker processes "
        "(the frames are byte-identical to serial)",
    )
    watch_parser.add_argument(
        "--interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="frame width in sim seconds (default: the SLO window, 5)",
    )
    watch_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the frames as JSON instead of the watch transcript",
    )
    watch_parser.add_argument(
        "--speed",
        type=float,
        default=0.0,
        metavar="R",
        help="replay pacing: sleep interval/R wall seconds between frames "
        "(0, the default, prints everything at once)",
    )

    return parser


def _cmd_list() -> int:
    for exp in list_experiments():
        kind = "simulation" if exp.simulation_backed else "model"
        extras = []
        if exp.supports_workers:
            extras.append("workers")
        if exp.fault_scenario is not None:
            extras.append(f"faults:{exp.fault_scenario}")
        tag = f" ({', '.join(extras)})" if extras else ""
        print(f"{exp.experiment_id:<18} [{kind:<10}] {exp.description}{tag}")
    return 0


def _cmd_describe(experiment_id: str) -> int:
    exp = get_experiment(experiment_id)
    print(f"id:          {exp.experiment_id}")
    print(f"description: {exp.description}")
    print(f"backed by:   {'full simulation' if exp.simulation_backed else 'closed-form model'}")
    doc = sys.modules[exp.run.__module__].__doc__ or ""
    print(f"\n{doc.strip()}")
    return 0


def _normalize_experiment_id(experiment_id: str) -> str:
    """Resolve an id or a harness module name to a registered id.

    ``fig10`` and ``fig10_cmax_sweep`` both name the Figure 10 sweep: the
    former is the registry id, the latter the module under
    ``repro.experiments`` that implements it.
    """
    if experiment_id in EXPERIMENTS:
        return experiment_id
    for exp in EXPERIMENTS.values():
        module_name = exp.run.__module__.rsplit(".", 1)[-1]
        if experiment_id == module_name:
            return exp.experiment_id
    return experiment_id  # let get_experiment raise its usual error


def _fast_kwargs(experiment_id: str) -> dict[str, object]:
    """Reduced-scale overrides for one experiment (``--fast``)."""
    if experiment_id in _FAST_STUDY_IDS:
        from repro.experiments.scenarios import ProbeStudyConfig

        return {
            "config": ProbeStudyConfig(
                topology_codes=("LHR", "AMS", "JFK", "NRT", "SYD"),
                warmup=10.0,
                duration=30.0,
            )
        }
    if experiment_id in _CHAOS_IDS:
        from repro.experiments.chaos import ChaosStudyConfig

        return {"config": ChaosStudyConfig(warmup=8.0, duration=30.0)}
    if experiment_id == "tournament":
        return {"config": _fast_tournament_config()}
    return dict(_FAST_OVERRIDES.get(experiment_id, {}))


def _fast_tournament_config(
    policies: tuple[str, ...] = (), scenarios: tuple[str, ...] = ()
):
    """The reduced-clock tournament config (``--fast``)."""
    from repro.experiments.tournament import TournamentConfig

    return TournamentConfig(
        policies=policies,
        scenarios=scenarios,
        warmup=3.0,
        duration=10.0,
        probe_interval=2.0,
    )


def _cmd_run_list() -> int:
    """``run --list``: runnable experiments with their run-time surface."""
    print(f"{'experiment':<18} {'kind':<10} {'workers':<8} fault scenario")
    for exp in list_experiments():
        kind = "simulation" if exp.simulation_backed else "model"
        workers = "yes" if exp.supports_workers else "no"
        faults = exp.fault_scenario if exp.fault_scenario is not None else "-"
        print(f"{exp.experiment_id:<18} {kind:<10} {workers:<8} {faults}")
    print(
        "\nworkers: accepts --workers N (independent simulation arms; "
        "results identical to serial)"
    )
    print(
        "fault scenario: the chaos schedule the experiment runs under "
        "(see `repro faults`)"
    )
    return 0


def _cmd_run(experiment_id: str, fast: bool, workers: int = 1) -> int:
    exp = get_experiment(experiment_id)
    kwargs = _fast_kwargs(experiment_id) if fast else {}
    if workers > 1:
        if exp.supports_workers:
            kwargs["workers"] = workers
        else:
            print(
                f"note: {experiment_id} has no independent simulation arms; "
                "running serially",
                file=sys.stderr,
            )
    if exp.simulation_backed:
        print(f"running {experiment_id} (full simulation; this takes a while)...")
    started = time.perf_counter()
    result = exp.run(**kwargs)
    elapsed = time.perf_counter() - started
    print(result.report())
    print(f"\n[{experiment_id} completed in {elapsed:.1f}s]")
    return 0


def _cmd_run_faults(scenario_name: str, fast: bool, workers: int) -> int:
    """Run the paired chaos study for one fault scenario."""
    from dataclasses import replace

    from repro.experiments.chaos import ChaosStudyConfig, run_chaos_study
    from repro.faults import get_scenario

    scenario = get_scenario(scenario_name)
    config = ChaosStudyConfig(scenario=scenario.name)
    if fast:
        config = replace(config, warmup=8.0, duration=30.0)
    print(
        f"running chaos scenario {scenario.name} "
        "(paired control/Riptide simulation; this takes a while)..."
    )
    started = time.perf_counter()
    result = run_chaos_study(config, workers=workers)
    elapsed = time.perf_counter() - started
    print(result.report())
    print(f"\n[{scenario.name} completed in {elapsed:.1f}s]")
    return 0


def _cmd_tournament(
    policies: list[str] | None,
    scenarios: list[str] | None,
    workers: int,
    fast: bool,
    out_path: str | None,
    markdown_path: str | None,
) -> int:
    """Race the policy zoo; print and optionally write the leaderboard."""
    from repro.experiments.tournament import TournamentConfig, run_tournament

    selected_policies = tuple(policies) if policies else ()
    selected_scenarios = tuple(scenarios) if scenarios else ()
    if fast:
        config = _fast_tournament_config(selected_policies, selected_scenarios)
    else:
        config = TournamentConfig(
            policies=selected_policies, scenarios=selected_scenarios
        )
    try:
        cell_count = len(config.resolved_policies()) * len(
            config.resolved_scenarios()
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"running the policy tournament ({cell_count} cells; "
        "this takes a while)...",
        file=sys.stderr,
    )
    started = time.perf_counter()
    result = run_tournament(config, workers=workers)
    elapsed = time.perf_counter() - started
    print(result.to_markdown(), end="")
    print(f"\n[tournament completed in {elapsed:.1f}s]", file=sys.stderr)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
        print(f"leaderboard artifact written to {out_path}", file=sys.stderr)
    if markdown_path is not None:
        with open(markdown_path, "w", encoding="utf-8") as handle:
            handle.write(result.to_markdown())
        print(f"leaderboard markdown written to {markdown_path}", file=sys.stderr)
    return 0


def _cmd_lint(
    paths: list[str],
    as_json: bool,
    output_format: str | None,
    no_cache: bool,
    baseline: str | None,
    select: str | None,
    ignore: str | None,
    list_rules: bool,
) -> int:
    from repro.analysis.lint import ALL_RULES, LintUsageError, run_lint

    if list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0
    if not paths:
        if not os.path.isdir("src"):
            print(
                "error: no paths given and no src/ directory here",
                file=sys.stderr,
            )
            return 2
        paths = ["src"]
    def split(value: str | None) -> list[str] | None:
        if not value:
            return None
        return [code.strip().upper() for code in value.split(",") if code.strip()]

    if output_format is None:
        output_format = "json" if as_json else "text"
    cache_path = None if no_cache else os.path.join(os.getcwd(), ".repro-lint-cache.json")
    try:
        result = run_lint(
            paths,
            select=split(select),
            ignore=split(ignore),
            baseline_path=baseline,
            cache_path=cache_path,
        )
    except LintUsageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if output_format == "json":
        print(result.to_json())
    elif output_format == "github":
        print(result.render_github())
    else:
        print(result.render_text())
    return 0 if result.clean else 1


def _cmd_faults(duration: float) -> int:
    """List the chaos scenarios with their fault timelines."""
    from repro.faults import CHAOS_SCENARIOS

    for scenario in CHAOS_SCENARIOS.values():
        print(scenario.name)
        print(
            f"  pops: {', '.join(scenario.pop_codes)}  "
            f"(probes from {scenario.source_pop}, "
            f"headline target {scenario.target_pop})"
        )
        print(f"  {scenario.description}")
        print(f"  timeline over {duration:g}s of probing:")
        print(scenario.describe(duration))
        print()
    print("run one with: python -m repro run --faults <scenario>")
    return 0


def _run_captured(
    experiment_id: str, fast: bool, workers: int = 1, what: str = "metrics"
):
    """Run one experiment under an instrumentation capture.

    The capture uses the default capacities — the same ones parallel
    workers capture under — so the merged stores (and everything derived
    from them) are byte-identical between serial and ``--workers N``.
    """
    exp = get_experiment(experiment_id)
    kwargs = _fast_kwargs(experiment_id) if fast else {}
    if workers > 1:
        if exp.supports_workers:
            kwargs["workers"] = workers
        else:
            print(
                f"note: {experiment_id} has no independent simulation arms; "
                "running serially",
                file=sys.stderr,
            )
    if exp.simulation_backed:
        print(
            f"running {experiment_id} under {what} capture "
            "(full simulation; this takes a while)...",
            file=sys.stderr,
        )
    started = time.perf_counter()
    with capture() as instrumentation:
        exp.run(**kwargs)
    elapsed = time.perf_counter() - started
    return instrumentation, elapsed


def _warn_trace_truncation(instrumentation) -> None:
    dropped = instrumentation.trace.dropped
    if dropped > 0:
        print(
            f"warning: trace ring dropped {dropped} oldest events "
            f"(retained {len(instrumentation.trace)}); totals stay exact",
            file=sys.stderr,
        )


def _cmd_metrics(
    experiment_id: str,
    fast: bool,
    workers: int,
    as_json: bool,
    as_prom: bool,
    csv_path: str | None,
    trace_csv_path: str | None,
) -> int:
    import json

    from repro.analysis.export import metrics_to_csv, metrics_to_json, trace_to_json

    if as_json and as_prom:
        print("error: give either --json or --prom, not both", file=sys.stderr)
        return 2
    instrumentation, elapsed = _run_captured(experiment_id, fast, workers)
    if as_prom:
        from repro.analysis.export import metrics_to_prometheus

        print(metrics_to_prometheus(instrumentation.metrics), end="")
    elif as_json:
        payload = {
            "experiment": experiment_id,
            "metrics": json.loads(metrics_to_json(instrumentation.metrics)),
            "trace": json.loads(trace_to_json(instrumentation.trace)),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"== metrics: {experiment_id} ==")
        print(instrumentation.metrics.render_table())
        totals = instrumentation.trace.totals()
        if totals:
            print("\n== trace event totals ==")
            width = max(len(t.value) for t in totals)
            for event_type, count in sorted(
                totals.items(), key=lambda item: item[0].value
            ):
                print(f"{event_type.value:<{width}}  {count}")
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]")
    _warn_trace_truncation(instrumentation)
    if csv_path is not None:
        from repro.analysis.export import write_csv

        write_csv(csv_path, metrics_to_csv(instrumentation.metrics))
        print(f"metrics CSV written to {csv_path}", file=sys.stderr)
    if trace_csv_path is not None:
        from repro.analysis.export import trace_to_csv, write_csv

        write_csv(trace_csv_path, trace_to_csv(instrumentation.trace))
        print(f"trace CSV written to {trace_csv_path}", file=sys.stderr)
    return 0


def _cmd_flows(
    experiment_id: str,
    fast: bool,
    workers: int,
    as_json: bool,
    jsonl_path: str | None,
    since: float | None = None,
    until: float | None = None,
) -> int:
    from repro.analysis.export import flows_to_json, flows_to_jsonl

    instrumentation, elapsed = _run_captured(
        experiment_id, fast, workers, what="flow"
    )
    flows = instrumentation.flows
    if as_json:
        print(flows_to_json(flows, since=since, until=until))
    else:
        records = flows.records(since=since, until=until)
        closed = sum(1 for r in records if r.closed_at is not None)
        by_source: dict[str, int] = {}
        by_state: dict[str, int] = {}
        for record in records:
            by_source[record.cwnd_source] = by_source.get(record.cwnd_source, 0) + 1
            by_state[record.final_state] = by_state.get(record.final_state, 0) + 1
        print(f"== flow records: {experiment_id} ==")
        print(
            f"recorded: {flows.next_id}  retained: {len(flows)}  "
            f"dropped: {flows.dropped}"
        )
        if since is not None or until is not None:
            print(
                f"window [{since if since is not None else 'start'}, "
                f"{until if until is not None else 'end'}]s: "
                f"{len(records)} flows"
            )
        print(f"closed: {closed}  open: {len(records) - closed}")
        print(
            "initial cwnd source: "
            + "  ".join(f"{k}={v}" for k, v in sorted(by_source.items()))
        )
        print(
            "final state: "
            + "  ".join(f"{k}={v}" for k, v in sorted(by_state.items()))
        )
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]")
    _warn_trace_truncation(instrumentation)
    if jsonl_path is not None:
        with open(jsonl_path, "w", encoding="utf-8") as handle:
            handle.write(flows_to_jsonl(flows, since=since, until=until))
        print(f"flow records written to {jsonl_path}", file=sys.stderr)
    return 0


def _cmd_report(
    experiment_id: str,
    fast: bool,
    workers: int,
    as_json: bool,
    out_path: str | None,
    spans_path: str | None,
    timeline_csv_path: str | None,
    since: float | None = None,
    until: float | None = None,
) -> int:
    from repro.analysis.export import (
        spans_to_chrome_json,
        timeline_to_csv,
        write_csv,
    )
    from repro.obs.report import build_report, render_report, report_to_json

    instrumentation, elapsed = _run_captured(
        experiment_id, fast, workers, what="report"
    )
    report = build_report(
        instrumentation, experiment=experiment_id, since=since, until=until
    )
    if as_json:
        print(report_to_json(report))
    else:
        print(render_report(report))
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]")
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(report_to_json(report))
            handle.write("\n")
        print(f"report JSON written to {out_path}", file=sys.stderr)
    if spans_path is not None:
        with open(spans_path, "w", encoding="utf-8") as handle:
            handle.write(spans_to_chrome_json(instrumentation.spans))
            handle.write("\n")
        print(f"Chrome trace written to {spans_path}", file=sys.stderr)
    if timeline_csv_path is not None:
        write_csv(timeline_csv_path, timeline_to_csv(instrumentation.timeline))
        print(f"timeline CSV written to {timeline_csv_path}", file=sys.stderr)
    return 0


def _cmd_alerts(
    experiment_id: str,
    fast: bool,
    workers: int,
    as_json: bool,
    out_path: str | None,
    markdown_path: str | None,
    check: bool,
) -> int:
    from repro.obs.slo import (
        alert_report_to_json,
        alert_report_to_markdown,
        build_alert_report,
        source_matches_arm,
    )

    instrumentation, elapsed = _run_captured(
        experiment_id, fast, workers, what="alert"
    )
    report = build_alert_report(
        instrumentation.alerts, experiment=experiment_id
    )
    if as_json:
        print(alert_report_to_json(report), end="")
    else:
        print(alert_report_to_markdown(report), end="")
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]", file=sys.stderr)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(alert_report_to_json(report))
        print(f"alert report JSON written to {out_path}", file=sys.stderr)
    if markdown_path is not None:
        with open(markdown_path, "w", encoding="utf-8") as handle:
            handle.write(alert_report_to_markdown(report))
        print(f"alert report markdown written to {markdown_path}", file=sys.stderr)
    if not check:
        return 0

    from repro.experiments.chaos import check_expected_alert
    from repro.faults import get_scenario

    exp = get_experiment(experiment_id)
    if exp.fault_scenario is None:
        print(
            f"error: --check needs an experiment with a fault scenario; "
            f"{experiment_id} has none",
            file=sys.stderr,
        )
        return 2
    scenario = get_scenario(exp.fault_scenario)
    if not scenario.expected_alerts:
        print(
            f"alert check: scenario {scenario.name} declares no expected "
            "alerts; nothing to enforce",
            file=sys.stderr,
        )
        return 0
    episodes = instrumentation.alerts.episodes()
    failures = 0
    for expectation in scenario.expected_alerts:
        arm_episodes = tuple(
            episode
            for episode in episodes
            if source_matches_arm(episode.source, expectation.arm)
        )
        ok, detail = check_expected_alert(expectation, arm_episodes)
        verdict = "ok" if ok else "FAILED"
        print(
            f"alert check [{expectation.arm}]: {detail} -- {verdict}",
            file=sys.stderr,
        )
        if not ok:
            failures += 1
    return 1 if failures else 0


def _cmd_watch(
    experiment_id: str,
    fast: bool,
    workers: int,
    interval: float | None,
    as_json: bool,
    speed: float,
) -> int:
    from repro.analysis.watch import (
        build_watch_frames,
        render_frame,
        render_watch,
        watch_frames_to_json,
    )
    from repro.obs.slo import DEFAULT_SLO_WINDOW

    width = interval if interval is not None else DEFAULT_SLO_WINDOW
    if width <= 0.0:
        print(f"error: --interval must be > 0, got {width:g}", file=sys.stderr)
        return 2
    if speed < 0.0:
        print(f"error: --speed must be >= 0, got {speed:g}", file=sys.stderr)
        return 2
    instrumentation, elapsed = _run_captured(
        experiment_id, fast, workers, what="watch"
    )
    frames = build_watch_frames(instrumentation, interval=width)
    if as_json:
        print(watch_frames_to_json(frames, experiment=experiment_id))
    elif speed > 0.0:
        # Paced replay: identical frame lines, wall-clock spacing only.
        print(f"== watch: {experiment_id} ({len(frames)} frames) ==")
        for frame in frames:
            print(render_frame(frame), flush=True)
            time.sleep(width / speed)
    else:
        print(render_watch(frames, experiment=experiment_id))
    print(f"\n[{experiment_id} completed in {elapsed:.1f}s]", file=sys.stderr)
    return 0


def _cmd_bench(
    out: str | None,
    workers: int,
    seeds: int,
    smoke: bool,
    baseline: str | None,
    guard: bool,
    guard_min_ratio: float,
) -> int:
    from repro.bench import (
        DEFAULT_BASELINE,
        DEFAULT_OUTPUT,
        format_bench,
        guard_regression,
        load_baseline,
        run_bench,
        write_bench,
    )

    baseline_path = baseline if baseline is not None else DEFAULT_BASELINE
    print("running perf baseline (this takes a while)...", file=sys.stderr)
    payload = run_bench(
        workers=workers, seeds=seeds, smoke=smoke, baseline_path=baseline_path
    )
    path = write_bench(payload, out if out is not None else DEFAULT_OUTPUT)
    print(format_bench(payload))
    print(f"\nbench written to {path}", file=sys.stderr)
    if guard:
        prior = load_baseline(baseline_path)
        if prior is None:
            print(
                f"error: --guard needs a readable baseline artifact at "
                f"{baseline_path}",
                file=sys.stderr,
            )
            return 2
        failures = guard_regression(payload, prior, min_ratio=guard_min_ratio)
        for failure in failures:
            print(f"bench guard: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            f"bench guard: kernel throughput holds against {baseline_path}",
            file=sys.stderr,
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "describe":
        return _cmd_describe(args.experiment_id)
    if args.command == "tournament":
        return _cmd_tournament(
            args.policies,
            args.scenarios,
            args.workers,
            args.fast,
            args.out,
            args.markdown,
        )
    if args.command == "run":
        try:
            if args.list_experiments:
                return _cmd_run_list()
            if args.faults is not None:
                if args.experiment_id is not None:
                    print(
                        "error: give either an experiment id or --faults, "
                        "not both",
                        file=sys.stderr,
                    )
                    return 2
                return _cmd_run_faults(args.faults, args.fast, args.workers)
            if args.experiment_id is None:
                print(
                    "error: run needs an experiment id (or --faults SCENARIO)",
                    file=sys.stderr,
                )
                return 2
            return _cmd_run(args.experiment_id, args.fast, args.workers)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "lint":
        return _cmd_lint(
            args.paths,
            args.json,
            args.lint_format,
            args.no_cache,
            args.baseline,
            args.select,
            args.ignore,
            args.list_rules,
        )
    if args.command == "faults":
        return _cmd_faults(args.duration)
    if args.command == "bench":
        return _cmd_bench(
            args.out,
            args.workers,
            args.seeds,
            args.smoke,
            args.baseline,
            args.guard,
            args.guard_min_ratio,
        )
    if args.command == "metrics":
        try:
            return _cmd_metrics(
                _normalize_experiment_id(args.experiment_id),
                args.fast,
                args.workers,
                args.json,
                args.prom,
                args.csv,
                args.trace_csv,
            )
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "alerts":
        try:
            return _cmd_alerts(
                _normalize_experiment_id(args.experiment_id),
                args.fast,
                args.workers,
                args.json,
                args.out,
                args.markdown,
                args.check,
            )
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "watch":
        try:
            return _cmd_watch(
                _normalize_experiment_id(args.experiment_id),
                args.fast,
                args.workers,
                args.interval,
                args.json,
                args.speed,
            )
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "flows":
        try:
            return _cmd_flows(
                _normalize_experiment_id(args.experiment_id),
                args.fast,
                args.workers,
                args.json,
                args.jsonl,
                args.since,
                args.until,
            )
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "report":
        try:
            return _cmd_report(
                _normalize_experiment_id(args.experiment_id),
                args.fast,
                args.workers,
                args.json,
                args.out,
                args.spans,
                args.timeline_csv,
                args.since,
                args.until,
            )
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    raise AssertionError("unreachable: argparse enforces the command set")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
