"""Typed, declarative fault specifications.

A fault is data, not code: *what* breaks, *when* (seconds after the
schedule is armed) and *for how long*.  :class:`FaultSchedule` bundles
specs into one validated, describable timeline that
:class:`~repro.faults.engine.FaultInjector` executes on the simulator
clock.  Times are relative to arm time so the same schedule drops onto
any arm of a paired experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator
from typing import ClassVar

from repro.linux.ss_tool import SS_FAULT_MODES


class FaultSpecError(ValueError):
    """A fault specification that cannot be executed."""


def _check_at(at: float) -> None:
    if at < 0:
        raise FaultSpecError(f"fault time must be >= 0, got {at}")


def _check_duration(duration: float) -> None:
    if duration <= 0:
        raise FaultSpecError(f"fault duration must be positive, got {duration}")


@dataclass(frozen=True)
class FaultSpec:
    """Base class; concrete specs declare their own fields.

    Every spec has ``at`` (seconds after arm) and most have ``duration``
    (seconds the fault stays active before it is cleared).
    """

    kind: ClassVar[str] = "fault"

    @property
    def clear_at(self) -> float | None:
        """When the fault is cleared, relative to arm; None = never."""
        duration = getattr(self, "duration", None)
        at = getattr(self, "at", 0.0)
        return None if duration is None else at + duration

    def describe(self) -> str:  # pragma: no cover - overridden
        return self.kind


@dataclass(frozen=True)
class LinkFlap(FaultSpec):
    """Take the trunk between two PoPs fully down, then back up."""

    kind: ClassVar[str] = "link_flap"

    pop_a: str
    pop_b: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        if self.pop_a == self.pop_b:
            raise FaultSpecError(f"link endpoints must differ, got {self.pop_a}")

    def describe(self) -> str:
        return (
            f"link_flap {self.pop_a}<->{self.pop_b} down for {self.duration:g}s"
        )


@dataclass(frozen=True)
class LinkDegrade(FaultSpec):
    """Shrink a trunk's bandwidth and/or stretch its latency for a window."""

    kind: ClassVar[str] = "link_degrade"

    pop_a: str
    pop_b: str
    at: float
    duration: float
    #: Multiplier on the trunk's bandwidth, in (0, 1].
    bandwidth_scale: float = 1.0
    #: Seconds added to the trunk's one-way propagation delay.
    extra_delay: float = 0.0

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        if self.pop_a == self.pop_b:
            raise FaultSpecError(f"link endpoints must differ, got {self.pop_a}")
        if not 0.0 < self.bandwidth_scale <= 1.0:
            raise FaultSpecError(
                f"bandwidth_scale must be in (0, 1], got {self.bandwidth_scale}"
            )
        if self.extra_delay < 0:
            raise FaultSpecError(
                f"extra_delay must be >= 0, got {self.extra_delay}"
            )
        if self.bandwidth_scale == 1.0 and self.extra_delay == 0.0:
            raise FaultSpecError("link_degrade that degrades nothing")

    def describe(self) -> str:
        parts = []
        if self.bandwidth_scale < 1.0:
            parts.append(f"bw x{self.bandwidth_scale:g}")
        if self.extra_delay > 0.0:
            parts.append(f"+{self.extra_delay * 1000:g}ms")
        return (
            f"link_degrade {self.pop_a}<->{self.pop_b} "
            f"{' '.join(parts)} for {self.duration:g}s"
        )


@dataclass(frozen=True)
class LossStorm(FaultSpec):
    """Override loss on every trunk touching a PoP for a window.

    ``bursty`` storms drive a :class:`~repro.net.loss.GilbertElliottLoss`
    channel whose stationary loss rate matches ``loss_probability``
    (correlated WAN bursts); otherwise a plain Bernoulli override.
    """

    kind: ClassVar[str] = "loss_storm"

    pop: str
    at: float
    duration: float
    #: Average packet-loss rate during the storm.
    loss_probability: float = 0.25
    bursty: bool = True

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        if not 0.0 < self.loss_probability < 1.0:
            raise FaultSpecError(
                f"loss_probability must be in (0, 1), got {self.loss_probability}"
            )

    def describe(self) -> str:
        flavour = "bursty" if self.bursty else "uniform"
        return (
            f"loss_storm at {self.pop} ({flavour} "
            f"p={self.loss_probability:g}) for {self.duration:g}s"
        )


@dataclass(frozen=True)
class PopPartition(FaultSpec):
    """Sever every trunk touching a PoP — the PoP drops off the WAN."""

    kind: ClassVar[str] = "pop_partition"

    pop: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)

    def describe(self) -> str:
        return f"pop_partition {self.pop} isolated for {self.duration:g}s"


@dataclass(frozen=True)
class SsFault(FaultSpec):
    """Break the ``ss`` surface of every host in a PoP for a window.

    ``mode`` picks the failure flavour (see
    :data:`repro.linux.ss_tool.SS_FAULT_MODES`): ``error`` raises,
    ``empty`` returns nothing, ``stale`` replays the last good snapshot,
    ``partial`` drops half the sockets.
    """

    kind: ClassVar[str] = "ss_fault"

    pop: str
    at: float
    duration: float
    mode: str = "error"

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        if self.mode not in SS_FAULT_MODES:
            raise FaultSpecError(
                f"unknown ss fault mode {self.mode!r}; expected one of "
                f"{', '.join(SS_FAULT_MODES)}"
            )

    def describe(self) -> str:
        return f"ss_fault {self.mode} at {self.pop} for {self.duration:g}s"


@dataclass(frozen=True)
class IpToolFault(FaultSpec):
    """Make ``ip route`` mutations fail on every host in a PoP."""

    kind: ClassVar[str] = "ip_fault"

    pop: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)

    def describe(self) -> str:
        return f"ip_fault at {self.pop} for {self.duration:g}s"


@dataclass(frozen=True)
class AgentCrash(FaultSpec):
    """Kill the Riptide agents of a PoP; optionally restart them later.

    Only agents *running* at crash time are affected (and later
    restarted), so the schedule is safe to arm on a control arm where no
    agent was ever started.  ``restart_after`` of ``None`` leaves them
    dead for the rest of the run.
    """

    kind: ClassVar[str] = "agent_crash"

    pop: str
    at: float
    restart_after: float | None = 5.0
    #: Crash only this host's agent; None = every agent in the PoP.
    host_index: int | None = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        if self.restart_after is not None and self.restart_after <= 0:
            raise FaultSpecError(
                f"restart_after must be positive, got {self.restart_after}"
            )
        if self.host_index is not None and self.host_index < 0:
            raise FaultSpecError(
                f"host_index must be >= 0, got {self.host_index}"
            )

    @property
    def clear_at(self) -> float | None:
        if self.restart_after is None:
            return None
        return self.at + self.restart_after

    def describe(self) -> str:
        who = (
            f"agent {self.host_index} at {self.pop}"
            if self.host_index is not None
            else f"agents at {self.pop}"
        )
        if self.restart_after is None:
            return f"agent_crash {who}, never restarted"
        return f"agent_crash {who}, restart after {self.restart_after:g}s"


@dataclass(frozen=True)
class PollJitter(FaultSpec):
    """Drift the poll loops of a PoP's agents (a loaded host).

    Each tick is delayed by a uniform draw from ``[0, amplitude]``
    seconds, taken from a named seeded stream — deterministic per seed.
    """

    kind: ClassVar[str] = "poll_jitter"

    pop: str
    at: float
    duration: float
    amplitude: float = 0.5

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        if self.amplitude <= 0:
            raise FaultSpecError(
                f"amplitude must be positive, got {self.amplitude}"
            )

    def describe(self) -> str:
        return (
            f"poll_jitter at {self.pop} (+0..{self.amplitude:g}s/tick) "
            f"for {self.duration:g}s"
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A validated bundle of fault specs, executable by the injector."""

    specs: tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise FaultSpecError(
                    f"schedule entries must be FaultSpecs, got {spec!r}"
                )
            if type(spec) is FaultSpec:
                raise FaultSpecError(
                    "schedule entries must be concrete fault specs"
                )

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    @property
    def end_time(self) -> float:
        """Relative time after which no fault remains scheduled to fire.

        Faults that never clear (``AgentCrash(restart_after=None)``)
        contribute their injection time only.
        """
        end = 0.0
        for spec in self.specs:
            clear = spec.clear_at
            end = max(end, spec.at if clear is None else clear)
        return end

    def timeline(self) -> list[FaultSpec]:
        """Specs ordered by injection time (ties keep schedule order)."""
        return sorted(self.specs, key=lambda spec: spec.at)

    def describe(self) -> str:
        """A human-readable timeline, one fault per line."""
        lines = []
        for spec in self.timeline():
            lines.append(f"  t+{spec.at:>6.1f}s  {spec.describe()}")
        return "\n".join(lines) if lines else "  (no faults)"

    def __repr__(self) -> str:
        return f"<FaultSchedule specs={len(self.specs)} end={self.end_time:g}s>"
