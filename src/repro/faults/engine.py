"""The fault injector: a schedule executed on the simulator clock.

:class:`FaultInjector` binds a :class:`~repro.faults.spec.FaultSchedule`
to a live :class:`~repro.cdn.cluster.CdnCluster`.  :meth:`arm` resolves
every spec's targets (failing fast on unknown PoPs) and schedules plain
simulator events for each injection and clearing — no background magic,
no wall clock.  Randomness (bursty storm channels, poll jitter) comes
from the cluster's named seeded streams, so a run with faults is as
reproducible as one without.

Every injection/clearing emits a ``FAULT_INJECTED``/``FAULT_CLEARED``
trace event and bumps the ``fault_injections`` counter (labelled by
kind); the ``faults_active`` gauge tracks how many faults are currently
in force.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.agent import RiptideAgent
from repro.faults.spec import (
    AgentCrash,
    FaultSchedule,
    FaultSpec,
    IpToolFault,
    LinkDegrade,
    LinkFlap,
    LossStorm,
    PollJitter,
    PopPartition,
    SsFault,
)
from repro.net.errors import NetworkError
from repro.net.link import DuplexLink
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, LossModel
from repro.obs.trace import EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cdn.cluster import CdnCluster

#: Trace-event source name for injector events.
_SOURCE = "fault-injector"

#: Gilbert-Elliott channel used by bursty storms: the bad state is
#: entered with p=0.05 and left with p=0.25 per packet, so the channel
#: spends 1/6 of packets in bursts; ``loss_bad`` is then scaled so the
#: stationary loss rate matches the spec's ``loss_probability``.
_STORM_P_GOOD_TO_BAD = 0.05
_STORM_P_BAD_TO_GOOD = 0.25
_STORM_BAD_SHARE = _STORM_P_GOOD_TO_BAD / (
    _STORM_P_GOOD_TO_BAD + _STORM_P_BAD_TO_GOOD
)


def _storm_model(loss_probability: float, bursty: bool) -> LossModel:
    if not bursty:
        return BernoulliLoss(loss_probability)
    return GilbertElliottLoss(
        p_good_to_bad=_STORM_P_GOOD_TO_BAD,
        p_bad_to_good=_STORM_P_BAD_TO_GOOD,
        loss_good=0.0,
        loss_bad=min(0.95, loss_probability / _STORM_BAD_SHARE),
    )


class FaultInjector:
    """Executes one fault schedule against one cluster."""

    def __init__(self, cluster: "CdnCluster", schedule: FaultSchedule) -> None:
        self.cluster = cluster
        self.schedule = schedule
        self.armed_at: float | None = None
        self.injected = 0
        self.cleared = 0
        self._active: list[FaultSpec] = []
        obs = cluster.sim.obs
        self._trace = obs.trace
        self._metrics = obs.metrics
        self._g_active = self._metrics.gauge("faults_active")
        self._obs_on = obs.enabled
        self._spans = obs.spans
        #: Open fault-window spans keyed by spec identity.
        self._fault_spans: dict[int, object] = {}

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every fault relative to *now*.  Arm once per run."""
        if self.armed_at is not None:
            raise RuntimeError("fault schedule already armed")
        self.armed_at = self.cluster.sim.now
        for index, spec in enumerate(self.schedule):
            activate, deactivate = self._resolve(spec, index)
            self.cluster.sim.schedule(spec.at, self._inject, spec, activate)
            if spec.clear_at is not None and deactivate is not None:
                self.cluster.sim.schedule(
                    spec.clear_at, self._clear, spec, deactivate
                )

    def active_faults(self) -> list[FaultSpec]:
        """Specs injected but not yet cleared, in injection order."""
        return list(self._active)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _inject(self, spec: FaultSpec, activate: Callable[[], dict]) -> None:
        detail = activate()
        self.injected += 1
        self._active.append(spec)
        self._metrics.counter("fault_injections", kind=spec.kind).inc()
        self._g_active.set(len(self._active))
        self._trace.record(
            self.cluster.sim.now,
            EventType.FAULT_INJECTED,
            _SOURCE,
            kind=spec.kind,
            fault=spec.describe(),
            **detail,
        )
        if self._obs_on:
            extras: dict[str, object] = {"kind": spec.kind}
            pop = getattr(spec, "pop", None)
            if pop is not None:
                extras["pop"] = pop
            span = self._spans.begin(
                self.cluster.sim.now,
                spec.describe(),
                "fault",
                _SOURCE,
                **extras,
            )
            if span is not None:
                self._fault_spans[id(spec)] = span

    def _clear(self, spec: FaultSpec, deactivate: Callable[[], dict]) -> None:
        detail = deactivate()
        self.cleared += 1
        if spec in self._active:
            self._active.remove(spec)
        self._g_active.set(len(self._active))
        self._trace.record(
            self.cluster.sim.now,
            EventType.FAULT_CLEARED,
            _SOURCE,
            kind=spec.kind,
            fault=spec.describe(),
            **detail,
        )
        self._spans.end(self._fault_spans.pop(id(spec), None), self.cluster.sim.now)

    # ------------------------------------------------------------------
    # target resolution (fails fast at arm time)
    # ------------------------------------------------------------------

    def _resolve(
        self, spec: FaultSpec, index: int
    ) -> tuple[Callable[[], dict], Callable[[], dict] | None]:
        """Bind a spec to its cluster targets; returns (activate, deactivate)."""
        if isinstance(spec, LinkFlap):
            trunk = self._trunk(spec.pop_a, spec.pop_b)
            return (
                lambda: self._link_down([trunk]),
                lambda: self._link_up([trunk]),
            )
        if isinstance(spec, LinkDegrade):
            trunk = self._trunk(spec.pop_a, spec.pop_b)
            return (
                lambda: self._degrade([trunk], spec),
                lambda: self._restore([trunk]),
            )
        if isinstance(spec, PopPartition):
            trunks = self._trunks_touching(spec.pop)
            return (
                lambda: self._link_down(trunks),
                lambda: self._link_up(trunks),
            )
        if isinstance(spec, LossStorm):
            trunks = self._trunks_touching(spec.pop)
            model = _storm_model(spec.loss_probability, spec.bursty)
            return (
                lambda: self._loss_override(trunks, model),
                lambda: self._loss_override(trunks, None),
            )
        if isinstance(spec, SsFault):
            agents = self._agents(spec.pop)
            return (
                lambda: self._ss_fault(agents, spec.mode),
                lambda: self._ss_clear(agents),
            )
        if isinstance(spec, IpToolFault):
            agents = self._agents(spec.pop)
            return (
                lambda: self._ip_fault(agents),
                lambda: self._ip_clear(agents),
            )
        if isinstance(spec, AgentCrash):
            agents = self._agents(spec.pop, spec.host_index)
            crashed: list[RiptideAgent] = []
            deactivate = None
            if spec.restart_after is not None:
                deactivate = lambda: self._restart(crashed)  # noqa: E731
            return (lambda: self._crash(agents, crashed), deactivate)
        if isinstance(spec, PollJitter):
            agents = self._agents(spec.pop)
            rng = self.cluster.streams.stream(
                f"fault:poll_jitter:{spec.pop}:{index}"
            )
            jitter = lambda: rng.uniform(0.0, spec.amplitude)  # noqa: E731
            return (
                lambda: self._set_jitter(agents, jitter),
                lambda: self._set_jitter(agents, None),
            )
        raise TypeError(f"no handler for fault spec {spec!r}")

    def _trunk(self, pop_a: str, pop_b: str) -> DuplexLink:
        zone_a = self.cluster.pop(pop_a).prefix
        zone_b = self.cluster.pop(pop_b).prefix
        trunk = self.cluster.network.trunk_between(zone_a, zone_b)
        if trunk is None:
            raise NetworkError(f"no trunk between PoPs {pop_a} and {pop_b}")
        return trunk

    def _trunks_touching(self, pop: str) -> list[DuplexLink]:
        zone = self.cluster.pop(pop).prefix
        trunks = self.cluster.network.trunks_touching(zone)
        if not trunks:
            raise NetworkError(f"PoP {pop} has no trunks to fault")
        return trunks

    def _agents(
        self, pop: str, host_index: int | None = None
    ) -> list[RiptideAgent]:
        agents = self.cluster.agents(pop)
        if host_index is None:
            return agents
        if host_index >= len(agents):
            raise IndexError(
                f"PoP {pop} has {len(agents)} hosts; no host {host_index}"
            )
        return [agents[host_index]]

    # ------------------------------------------------------------------
    # fault actions (each returns trace detail)
    # ------------------------------------------------------------------

    @staticmethod
    def _link_down(trunks: list[DuplexLink]) -> dict[str, object]:
        for trunk in trunks:
            trunk.set_down()
        return {"links": [trunk.name for trunk in trunks]}

    @staticmethod
    def _link_up(trunks: list[DuplexLink]) -> dict[str, object]:
        for trunk in trunks:
            trunk.set_up()
        return {"links": [trunk.name for trunk in trunks]}

    @staticmethod
    def _degrade(trunks: list[DuplexLink], spec: LinkDegrade) -> dict[str, object]:
        for trunk in trunks:
            trunk.degrade(spec.bandwidth_scale, spec.extra_delay)
        return {
            "links": [trunk.name for trunk in trunks],
            "bandwidth_scale": spec.bandwidth_scale,
            "extra_delay": spec.extra_delay,
        }

    @staticmethod
    def _restore(trunks: list[DuplexLink]) -> dict[str, object]:
        for trunk in trunks:
            trunk.restore()
        return {"links": [trunk.name for trunk in trunks]}

    @staticmethod
    def _loss_override(trunks: list[DuplexLink], model: LossModel | None) -> dict[str, object]:
        for trunk in trunks:
            trunk.set_loss_override(model)
        return {
            "links": [trunk.name for trunk in trunks],
            "model": repr(model) if model is not None else "configured",
        }

    @staticmethod
    def _ss_fault(agents: list[RiptideAgent], mode: str) -> dict[str, object]:
        for agent in agents:
            agent.host.ss.set_fault(mode)
        return {"hosts": [agent.host.name for agent in agents], "mode": mode}

    @staticmethod
    def _ss_clear(agents: list[RiptideAgent]) -> dict[str, object]:
        for agent in agents:
            agent.host.ss.clear_fault()
        return {"hosts": [agent.host.name for agent in agents]}

    @staticmethod
    def _ip_fault(agents: list[RiptideAgent]) -> dict[str, object]:
        for agent in agents:
            agent.host.ip.set_fault()
        return {"hosts": [agent.host.name for agent in agents]}

    @staticmethod
    def _ip_clear(agents: list[RiptideAgent]) -> dict[str, object]:
        for agent in agents:
            agent.host.ip.clear_fault()
        return {"hosts": [agent.host.name for agent in agents]}

    @staticmethod
    def _crash(agents: list[RiptideAgent], crashed: list[RiptideAgent]) -> dict[str, object]:
        # Only running agents crash (and only they restart later): on a
        # control arm no agent ever started, so the spec is a no-op there
        # rather than a restart that would *start* Riptide.
        for agent in agents:
            if agent.running:
                agent.crash()
                crashed.append(agent)
        return {"hosts": [agent.host.name for agent in crashed]}

    def _restart(self, crashed: list[RiptideAgent]) -> dict[str, object]:
        now = self.cluster.sim.now
        for agent in crashed:
            agent.start()
            self._trace.record(
                now, EventType.AGENT_RESTARTED, agent.host.name
            )
        return {"hosts": [agent.host.name for agent in crashed]}

    @staticmethod
    def _set_jitter(
        agents: list[RiptideAgent], jitter: Callable[[], float] | None
    ) -> dict[str, object]:
        for agent in agents:
            agent.set_poll_jitter(jitter)
        return {"hosts": [agent.host.name for agent in agents]}

    def __repr__(self) -> str:
        state = (
            "unarmed" if self.armed_at is None else f"armed@{self.armed_at:g}s"
        )
        return (
            f"<FaultInjector {state} specs={len(self.schedule)} "
            f"injected={self.injected} cleared={self.cleared}>"
        )
