"""Deterministic fault injection for the reproduction.

The paper evaluates Riptide on a production CDN, where links flap, paths
degrade, tools fail and processes die as a matter of course.  This
package brings those hazards into the simulation *deterministically*: a
declarative :class:`~repro.faults.spec.FaultSchedule` of typed
:class:`~repro.faults.spec.FaultSpec` entries, dispatched on the
simulator clock by :class:`~repro.faults.engine.FaultInjector`, with any
randomness drawn from the cluster's named seeded streams.  The same seed
yields the same faults, the same packet drops and the same agent
behaviour — serial or parallel.

Three fault surfaces:

* **network** — link flaps, bandwidth/latency degradation windows,
  bursty loss storms and full PoP partitions on the trunk fabric;
* **tools** — ``ss`` polls erroring or returning empty/stale/partial
  snapshots, ``ip route`` commands failing;
* **process** — agent crash/restart and poll-loop jitter.

Chaos scenarios (ready-made schedules over the evaluation topology) live
in :mod:`repro.faults.scenarios`; the paired control-vs-Riptide chaos
experiments in :mod:`repro.experiments.chaos`.
"""

from repro.faults.engine import FaultInjector
from repro.faults.scenarios import (
    CHAOS_SCENARIOS,
    ChaosScenario,
    get_scenario,
    scenario_names,
)
from repro.faults.spec import (
    AgentCrash,
    FaultSchedule,
    FaultSpec,
    IpToolFault,
    LinkDegrade,
    LinkFlap,
    LossStorm,
    PollJitter,
    PopPartition,
    SsFault,
)

__all__ = [
    "AgentCrash",
    "CHAOS_SCENARIOS",
    "ChaosScenario",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "IpToolFault",
    "LinkDegrade",
    "LinkFlap",
    "LossStorm",
    "PollJitter",
    "PopPartition",
    "SsFault",
    "get_scenario",
    "scenario_names",
]
