"""Ready-made chaos scenarios over the evaluation topology.

Each scenario is a named recipe: the sub-topology to deploy, the probe
vantage, and a :class:`~repro.faults.spec.FaultSchedule` builder that
places faults at fractions of the run so the same recipe scales from a
CI smoke run to a long study.  The paired control-vs-Riptide harness
around them lives in :mod:`repro.experiments.chaos`; the claim under
test is the deployment-safety one — under injected faults, Riptide with
its resilience policies still beats or matches the IW10 control, rather
than amplifying the damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.faults.spec import (
    AgentCrash,
    FaultSchedule,
    IpToolFault,
    LinkDegrade,
    LinkFlap,
    LossStorm,
    PollJitter,
    PopPartition,
    SsFault,
)


@dataclass(frozen=True)
class ExpectedAlert:
    """One SLO alert a chaos scenario is contractually expected to raise.

    The expectation is against the burn-rate engine's alert log for one
    arm: ``must_fire`` requires at least one episode of the named SLO to
    reach firing; ``must_resolve`` additionally requires at least one
    fired episode to resolve before the run ends (the recovery half of
    the story — e.g. the guard hold quenching a retransmit storm).
    """

    slo: str
    must_fire: bool = True
    must_resolve: bool = False
    arm: str = "riptide"


@dataclass(frozen=True)
class ChaosScenario:
    """One named chaos recipe."""

    name: str
    description: str
    #: Sub-topology the scenario deploys (paper PoP codes).
    pop_codes: tuple[str, ...]
    #: PoP whose dedicated host issues the diagnostic probes.
    source_pop: str
    #: The PoP the headline faults hit — reports focus on paths to it.
    target_pop: str
    #: duration (seconds of probing) -> schedule, times relative to arm.
    build: Callable[[float], FaultSchedule]
    #: SLO alerts the scenario must raise (checked by the chaos harness
    #: and the ``repro alerts --check`` CI gate).
    expected_alerts: tuple[ExpectedAlert, ...] = ()

    def describe(self, duration: float) -> str:
        """The scenario's fault timeline for a given run length."""
        return self.build(duration).describe()


def _lossy_agent_schedule(duration: float) -> FaultSchedule:
    """A loss storm on the learned path plus agent-side process faults.

    The storm hits every trunk touching the target PoP while probes are
    in flight: the safety guard must notice the retransmit spike and
    revert learned routes toward the storm to IW10.  Meanwhile the
    source PoP's agents suffer an ``ss`` blackout, a crash/restart and
    poll jitter — the resilience policies keep Algorithm 1 limping
    along instead of wedging.
    """
    return FaultSchedule(
        specs=(
            LossStorm(
                pop="JFK",
                at=0.25 * duration,
                duration=0.35 * duration,
                loss_probability=0.30,
                bursty=True,
            ),
            SsFault(
                pop="LHR",
                at=0.15 * duration,
                duration=0.10 * duration,
                mode="error",
            ),
            AgentCrash(pop="LHR", at=0.70 * duration, restart_after=5.0),
            PollJitter(
                pop="AMS",
                at=0.10 * duration,
                duration=0.80 * duration,
                amplitude=0.4,
            ),
        )
    )


def _partition_schedule(duration: float) -> FaultSchedule:
    """A PoP falls off the WAN; a trunk flaps; another degrades.

    Probes toward the partitioned PoP simply fail while it is dark —
    for both arms equally.  The interesting question is the recovery:
    once the partition heals, Riptide's learned state (entries aged
    toward their TTL during the dark window) must not leave the paths
    worse than the IW10 control.
    """
    return FaultSchedule(
        specs=(
            PopPartition(
                pop="NRT", at=0.30 * duration, duration=0.25 * duration
            ),
            LinkFlap(
                pop_a="LHR",
                pop_b="JFK",
                at=0.60 * duration,
                duration=0.08 * duration,
            ),
            LinkDegrade(
                pop_a="LHR",
                pop_b="AMS",
                at=0.20 * duration,
                duration=0.40 * duration,
                bandwidth_scale=0.25,
                extra_delay=0.020,
            ),
        )
    )


def _flaky_tools_schedule(duration: float) -> FaultSchedule:
    """Every tool surface misbehaves at once; the network stays healthy.

    ``ip route`` rejects mutations (retry-with-backoff must converge
    once the window closes), ``ss`` serves stale and partial snapshots,
    and the poll loop drifts.  Control and Riptide see identical
    traffic; the arm comparison isolates whether degraded *tooling*
    alone can make Riptide do harm.
    """
    return FaultSchedule(
        specs=(
            IpToolFault(
                pop="LHR", at=0.20 * duration, duration=0.15 * duration
            ),
            SsFault(
                pop="LHR",
                at=0.45 * duration,
                duration=0.20 * duration,
                mode="stale",
            ),
            SsFault(
                pop="JFK",
                at=0.30 * duration,
                duration=0.25 * duration,
                mode="partial",
            ),
            PollJitter(
                pop="LHR",
                at=0.10 * duration,
                duration=0.80 * duration,
                amplitude=0.5,
            ),
        )
    )


#: Compact sub-topology shared by the chaos scenarios: the two vantage
#: PoPs of Section IV-B plus a metro-close neighbour each and one far
#: target, spanning the RTT buckets while staying CI-affordable.
_CHAOS_POP_CODES = ("LHR", "AMS", "JFK", "IAD", "NRT")

CHAOS_SCENARIOS: dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="chaos_lossy_agent",
            description=(
                "Bursty loss storm at JFK while LHR's agents suffer an ss "
                "blackout, a crash/restart and poll jitter; the safety "
                "guard must revert learned routes into the storm to IW10."
            ),
            pop_codes=_CHAOS_POP_CODES,
            source_pop="LHR",
            target_pop="JFK",
            build=_lossy_agent_schedule,
            # The storm must burn the retransmit budget (and the guard's
            # withdrawals must register), and both must resolve once the
            # storm clears and the hold quenches the path.
            expected_alerts=(
                ExpectedAlert("retransmit_ratio", must_fire=True, must_resolve=True),
                ExpectedAlert(
                    "guard_withdrawal_rate", must_fire=True, must_resolve=True
                ),
            ),
        ),
        ChaosScenario(
            name="chaos_partition",
            description=(
                "NRT drops off the WAN mid-run, the LHR-JFK trunk flaps "
                "and the LHR-AMS trunk degrades; recovery after the "
                "partition heals must leave Riptide no worse than IW10."
            ),
            pop_codes=_CHAOS_POP_CODES,
            source_pop="LHR",
            target_pop="NRT",
            build=_partition_schedule,
        ),
        ChaosScenario(
            name="chaos_flaky_tools",
            description=(
                "ip route rejects mutations, ss serves stale/partial "
                "snapshots and the poll loop drifts — degraded tooling "
                "alone must not make Riptide do harm."
            ),
            pop_codes=_CHAOS_POP_CODES,
            source_pop="LHR",
            target_pop="JFK",
            build=_flaky_tools_schedule,
        ),
    )
}


def scenario_names() -> list[str]:
    return list(CHAOS_SCENARIOS)


def get_scenario(name: str) -> ChaosScenario:
    try:
        return CHAOS_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos scenario {name!r}; available: "
            f"{', '.join(scenario_names())}"
        ) from None
