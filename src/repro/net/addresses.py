"""IPv4 addresses and prefixes.

Implemented over plain integers (rather than :mod:`ipaddress`) so the route
table in :mod:`repro.linux.route` can do longest-prefix matching with simple
mask arithmetic, mirroring how the kernel FIB behaves when Riptide installs
``/32`` host routes or broader prefix routes.
"""

from __future__ import annotations

from collections.abc import Iterator
from functools import total_ordering

from repro.net.errors import AddressError

_MAX_IPV4 = 0xFFFFFFFF


def _parse_dotted_quad(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"malformed IPv4 address {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


@total_ordering
class IPv4Address:
    """An immutable IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | IPv4Address") -> None:
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, str):
            self._value = _parse_dotted_quad(value)
        elif isinstance(value, int):
            if not 0 <= value <= _MAX_IPV4:
                raise AddressError(f"address integer out of range: {value}")
            self._value = value
        else:
            raise AddressError(f"cannot build address from {type(value).__name__}")

    @property
    def value(self) -> int:
        return self._value

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        v = self._value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"


class Prefix:
    """An immutable IPv4 prefix (network address + mask length)."""

    __slots__ = ("_network", "_length")

    def __init__(self, network: "int | str | IPv4Address", length: int) -> None:
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        addr = IPv4Address(network)
        mask = _mask_for(length)
        if addr.value & ~mask & _MAX_IPV4:
            raise AddressError(
                f"{addr}/{length} has host bits set; not a valid network address"
            )
        self._network = addr
        self._length = length

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"``; a bare address parses as a /32."""
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            if not len_text.isdigit():
                raise AddressError(f"malformed prefix {text!r}")
            return cls(addr_text, int(len_text))
        return cls(text, 32)

    @classmethod
    def host(cls, address: "int | str | IPv4Address") -> "Prefix":
        """The /32 prefix covering exactly one host."""
        return cls(IPv4Address(address), 32)

    @classmethod
    def containing(cls, address: "int | str | IPv4Address", length: int) -> "Prefix":
        """The prefix of the given length that contains ``address``."""
        addr = IPv4Address(address)
        return cls(addr.value & _mask_for(length), length)

    @property
    def network(self) -> IPv4Address:
        return self._network

    @property
    def length(self) -> int:
        return self._length

    @property
    def mask(self) -> int:
        return _mask_for(self._length)

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self._length)

    def contains(self, address: "int | str | IPv4Address") -> bool:
        return IPv4Address(address).value & self.mask == self._network.value

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when ``other`` is fully inside this prefix."""
        return other._length >= self._length and self.contains(other._network)

    def addresses(self) -> Iterator[IPv4Address]:
        """Iterate every address in the prefix (small prefixes only)."""
        base = self._network.value
        for offset in range(self.num_addresses):
            yield IPv4Address(base + offset)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Prefix):
            return self._network == other._network and self._length == other._length
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._network, self._length))

    def __str__(self) -> str:
        return f"{self._network}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix.parse('{self}')"


def _mask_for(length: int) -> int:
    if length == 0:
        return 0
    return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4
