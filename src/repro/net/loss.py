"""Stochastic loss models for wide-area links.

Inter-PoP paths in the paper's CDN are "well provisioned" but still subject
to "the usual challenges of Internet communication" — occasional random and
bursty loss.  Each link owns one loss model instance (state such as the
Gilbert–Elliott channel state is per link per direction).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class LossModel(ABC):
    """Decides, packet by packet, whether the wire eats the packet."""

    @abstractmethod
    def should_drop(self, rng: random.Random) -> bool:
        """Return True when the packet currently in flight is lost."""

    @abstractmethod
    def clone(self) -> "LossModel":
        """A fresh instance with the same parameters and reset state.

        Each link direction needs independent channel state.
        """

    def mean_loss_rate(self) -> float:
        """Long-run expected per-packet drop probability.

        The fluid traffic engine (:mod:`repro.sim.fluid`) needs a scalar
        loss rate to drive halving dynamics; sampling the stochastic
        model would break determinism, so each model exposes its
        stationary mean instead.  Unknown models conservatively report
        0.0 (the fluid cohort then only halves on congestion overload).
        """
        return 0.0


class NoLoss(LossModel):
    """A perfect wire."""

    def should_drop(self, rng: random.Random) -> bool:
        return False

    def clone(self) -> "NoLoss":
        return NoLoss()

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """Independent per-packet loss with fixed probability."""

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {probability}")
        self.probability = float(probability)

    def should_drop(self, rng: random.Random) -> bool:
        if self.probability == 0.0:
            return False
        return rng.random() < self.probability

    def clone(self) -> "BernoulliLoss":
        return BernoulliLoss(self.probability)

    def mean_loss_rate(self) -> float:
        return self.probability

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.probability})"


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (good/bad Markov channel).

    ``p_good_to_bad`` and ``p_bad_to_good`` are per-packet transition
    probabilities; ``loss_good``/``loss_bad`` are the loss rates within each
    state.  The classic parametrisation for correlated WAN loss bursts.
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.p_good_to_bad = float(p_good_to_bad)
        self.p_bad_to_good = float(p_bad_to_good)
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self._in_bad_state = False

    @property
    def in_bad_state(self) -> bool:
        return self._in_bad_state

    def should_drop(self, rng: random.Random) -> bool:
        if self._in_bad_state:
            if rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        rate = self.loss_bad if self._in_bad_state else self.loss_good
        if rate == 0.0:
            return False
        return rng.random() < rate

    def clone(self) -> "GilbertElliottLoss":
        return GilbertElliottLoss(
            self.p_good_to_bad, self.p_bad_to_good, self.loss_good, self.loss_bad
        )

    def mean_loss_rate(self) -> float:
        """Stationary loss rate of the two-state Markov channel."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0.0:
            # The chain never leaves its start state (good).
            return self.loss_good
        pi_bad = self.p_good_to_bad / denom
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(p_gb={self.p_good_to_bad}, "
            f"p_bg={self.p_bad_to_good}, good={self.loss_good}, "
            f"bad={self.loss_bad})"
        )
