"""Network substrate: addresses, links, loss models and the fabric.

Models the wide-area paths between CDN PoPs as duplex links with
configurable bandwidth, propagation delay, finite drop-tail queues and
stochastic loss.  TCP (in :mod:`repro.tcp`) runs on top of this fabric.
"""

from repro.net.addresses import IPv4Address, Prefix
from repro.net.errors import AddressError, NetworkError
from repro.net.link import DuplexLink, Link, LinkStats
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from repro.net.network import Network, PathSpec
from repro.net.packet import Packet

__all__ = [
    "AddressError",
    "BernoulliLoss",
    "DuplexLink",
    "GilbertElliottLoss",
    "IPv4Address",
    "Link",
    "LinkStats",
    "LossModel",
    "Network",
    "NetworkError",
    "NoLoss",
    "Packet",
    "PathSpec",
    "Prefix",
]
