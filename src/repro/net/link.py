"""Links: serialization, propagation, queueing and loss.

A :class:`Link` is one direction of a wide-area path.  It models

* a finite drop-tail queue (packets wait while the transmitter is busy),
* store-and-forward serialization at ``bandwidth_bps``,
* fixed propagation delay, and
* stochastic in-flight loss via a :class:`~repro.net.loss.LossModel`.

Together these produce exactly the dynamics TCP start-up cares about: an
over-large initial burst either queues (adding delay) or overflows the
queue (causing loss), which is why Riptide clamps its learned windows.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Packet
from repro.sim.kernel import Simulator

DeliverCallback = Callable[[Packet], None]


@dataclass
class LinkStats:
    """Counters accumulated over the lifetime of a link direction."""

    packets_offered: int = 0
    packets_delivered: int = 0
    packets_dropped_queue: int = 0
    packets_dropped_loss: int = 0
    packets_dropped_down: int = 0
    bytes_offered: int = 0
    bytes_delivered: int = 0
    max_queue_depth: int = 0

    @property
    def packets_dropped(self) -> int:
        return (
            self.packets_dropped_queue
            + self.packets_dropped_loss
            + self.packets_dropped_down
        )

    @property
    def drop_rate(self) -> float:
        if self.packets_offered == 0:
            return 0.0
        return self.packets_dropped / self.packets_offered


@dataclass(slots=True)
class _QueuedPacket:
    packet: Packet
    deliver: DeliverCallback = field(repr=False)


class Link:
    """One unidirectional link."""

    # One Link object per path direction, three callbacks per packet:
    # keep instances dict-free and the counter handles one load away.
    __slots__ = (
        "_sim", "bandwidth_bps", "propagation_delay", "queue_limit_packets",
        "_loss", "_rng", "name", "stats", "_queue", "_transmitting",
        "_obs_on", "_m_delivered", "_m_dropped_queue", "_m_dropped_loss",
        "_g_queue_depth", "up", "bandwidth_scale", "extra_delay",
        "_loss_override", "_m_dropped_down", "fluid_bps",
    )

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        propagation_delay: float,
        queue_limit_packets: int = 256,
        loss_model: LossModel | None = None,
        rng: random.Random | None = None,
        name: str = "link",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if propagation_delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {propagation_delay}")
        if queue_limit_packets < 1:
            raise ValueError(f"queue limit must be >= 1, got {queue_limit_packets}")
        self._sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay = float(propagation_delay)
        self.queue_limit_packets = int(queue_limit_packets)
        self._loss = loss_model if loss_model is not None else NoLoss()
        self._rng = rng if rng is not None else random.Random(0)
        self.name = name
        self.stats = LinkStats()
        self._queue: deque[_QueuedPacket] = deque()
        self._transmitting = False
        #: Fault-injection state (see repro.faults): an administratively
        #: "down" link drops every packet; degradation scales the usable
        #: bandwidth and adds propagation delay; a loss override replaces
        #: the configured loss model for the duration of a storm.
        self.up = True
        self.bandwidth_scale = 1.0
        self.extra_delay = 0.0
        self._loss_override: LossModel | None = None
        #: Aggregate bandwidth (bits/s) consumed by fluid background
        #: cohorts (see repro.cdn.fluidtraffic).  Subtracted from the
        #: capacity available to packet-granular traffic.
        self.fluid_bps = 0.0
        # Aggregate (label-free) fabric counters; per-link detail stays in
        # ``self.stats``.  Handles are cached — these sit on the per-packet
        # hot path.
        self._obs_on = sim.obs.enabled
        metrics = sim.obs.metrics
        self._m_delivered = metrics.counter("link_packets_delivered")
        self._m_dropped_queue = metrics.counter("link_packets_dropped_queue")
        self._m_dropped_loss = metrics.counter("link_packets_dropped_loss")
        self._m_dropped_down = metrics.counter("link_packets_dropped_down")
        self._g_queue_depth = metrics.gauge("link_queue_depth")

    @property
    def queue_depth(self) -> int:
        """Packets waiting (not counting the one on the wire)."""
        return len(self._queue)

    def serialization_time(self, size_bytes: int) -> float:
        """Seconds to clock ``size_bytes`` onto the wire.

        Fluid background load (``fluid_bps``) occupies a share of the
        link, so packet-granular traffic serializes against the residual
        capacity, floored at 5% so a saturated cohort slows packets
        down rather than stalling them outright.
        """
        capacity = self.bandwidth_bps * self.bandwidth_scale
        if self.fluid_bps:
            residual = capacity - self.fluid_bps
            floor = capacity * 0.05
            capacity = residual if residual > floor else floor
        return size_bytes * 8.0 / capacity

    def transmit(self, packet: Packet, deliver: DeliverCallback) -> bool:
        """Offer a packet to the link.

        Returns False when the queue is full and the packet was dropped at
        the tail; True when it was accepted (acceptance does not guarantee
        delivery — in-flight loss may still eat it).
        """
        stats = self.stats
        queue = self._queue
        stats.packets_offered += 1
        stats.bytes_offered += packet.size_bytes
        if not self.up:
            stats.packets_dropped_down += 1
            self._m_dropped_down.inc()
            return False
        if len(queue) >= self.queue_limit_packets:
            stats.packets_dropped_queue += 1
            self._m_dropped_queue.inc()
            return False
        queue.append(_QueuedPacket(packet, deliver))
        depth = len(queue)
        if depth > stats.max_queue_depth:
            stats.max_queue_depth = depth
        if self._obs_on:
            self._g_queue_depth.set(depth)
        if not self._transmitting:
            self._start_next_transmission()
        return True

    def _start_next_transmission(self) -> None:
        queue = self._queue
        if not queue:
            self._transmitting = False
            if self._obs_on:
                self._g_queue_depth.set(0)
            return
        self._transmitting = True
        item = queue.popleft()
        if self._obs_on:
            self._g_queue_depth.set(len(queue))
        tx_time = self.serialization_time(item.packet.size_bytes)
        self._sim.schedule_fire(tx_time, self._finish_transmission, item)

    def _finish_transmission(self, item: _QueuedPacket) -> None:
        packet = item.packet
        if not self.up:
            # The link failed while this packet was on the wire.
            self.stats.packets_dropped_down += 1
            self._m_dropped_down.inc()
        elif (self._loss_override or self._loss).should_drop(self._rng):
            self.stats.packets_dropped_loss += 1
            self._m_dropped_loss.inc()
        else:
            packet.sent_at = self._sim.now
            self._sim.schedule_fire(
                self.propagation_delay + self.extra_delay, self._deliver, item
            )
        self._start_next_transmission()

    def _deliver(self, item: _QueuedPacket) -> None:
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += item.packet.size_bytes
        self._m_delivered.inc()
        item.deliver(item.packet)

    # ------------------------------------------------------------------
    # fault injection (see repro.faults)
    # ------------------------------------------------------------------

    def set_down(self) -> None:
        """Fail the link: the queue is purged and every subsequent offer
        (and any packet still on the wire) is dropped until :meth:`set_up`.

        Packets already past serialization (in propagation flight) still
        arrive — they left the link before the failure.
        """
        self.up = False
        purged = len(self._queue)
        if purged:
            self.stats.packets_dropped_down += purged
            self._m_dropped_down.inc(purged)
            self._queue.clear()
            if self._obs_on:
                self._g_queue_depth.set(0)

    def set_up(self) -> None:
        """Restore a failed link."""
        self.up = True

    def degrade(self, bandwidth_scale: float = 1.0, extra_delay: float = 0.0) -> None:
        """Degrade the link: scale usable bandwidth, add one-way delay.

        Applies to packets serialized from now on; :meth:`restore` undoes
        both knobs.
        """
        if not 0.0 < bandwidth_scale <= 1.0:
            raise ValueError(
                f"bandwidth_scale must be in (0, 1], got {bandwidth_scale}"
            )
        if extra_delay < 0:
            raise ValueError(f"extra_delay must be >= 0, got {extra_delay}")
        self.bandwidth_scale = float(bandwidth_scale)
        self.extra_delay = float(extra_delay)

    def restore(self) -> None:
        """Undo :meth:`degrade`."""
        self.bandwidth_scale = 1.0
        self.extra_delay = 0.0

    def set_loss_override(self, model: LossModel | None) -> None:
        """Replace the configured loss model until cleared with ``None``."""
        self._loss_override = model

    def set_fluid_load(self, bps: float) -> None:
        """Record the aggregate fluid-cohort send rate crossing this link."""
        if bps < 0:
            raise ValueError(f"fluid load must be >= 0, got {bps}")
        self.fluid_bps = float(bps)

    @property
    def effective_loss_model(self) -> LossModel:
        """The loss model currently in force (override wins)."""
        return self._loss_override or self._loss

    def __repr__(self) -> str:
        return (
            f"<Link {self.name!r} {self.bandwidth_bps / 1e6:.1f}Mbps "
            f"{self.propagation_delay * 1e3:.1f}ms q={self.queue_depth}>"
        )


class DuplexLink:
    """A symmetric pair of :class:`Link` directions between two ends.

    The loss model is cloned so each direction has independent channel
    state; each direction also gets its own RNG stream.
    """

    __slots__ = ("name", "forward", "reverse")

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        propagation_delay: float,
        queue_limit_packets: int = 256,
        loss_model: LossModel | None = None,
        rng_forward: random.Random | None = None,
        rng_reverse: random.Random | None = None,
        name: str = "duplex",
    ) -> None:
        template = loss_model if loss_model is not None else NoLoss()
        self.name = name
        self.forward = Link(
            sim,
            bandwidth_bps,
            propagation_delay,
            queue_limit_packets,
            template.clone(),
            rng_forward,
            name=f"{name}:fwd",
        )
        self.reverse = Link(
            sim,
            bandwidth_bps,
            propagation_delay,
            queue_limit_packets,
            template.clone(),
            rng_reverse,
            name=f"{name}:rev",
        )

    @property
    def rtt(self) -> float:
        """Round-trip propagation delay (excluding serialization/queueing)."""
        return self.forward.propagation_delay + self.reverse.propagation_delay

    @property
    def up(self) -> bool:
        """True when both directions are up."""
        return self.forward.up and self.reverse.up

    def set_down(self) -> None:
        """Fail both directions (a trunk flap / partition)."""
        self.forward.set_down()
        self.reverse.set_down()

    def set_up(self) -> None:
        self.forward.set_up()
        self.reverse.set_up()

    def degrade(self, bandwidth_scale: float = 1.0, extra_delay: float = 0.0) -> None:
        """Degrade both directions symmetrically."""
        self.forward.degrade(bandwidth_scale, extra_delay)
        self.reverse.degrade(bandwidth_scale, extra_delay)

    def restore(self) -> None:
        self.forward.restore()
        self.reverse.restore()

    def set_loss_override(self, model: LossModel | None) -> None:
        """Install a replacement loss model (cloned per direction)."""
        self.forward.set_loss_override(model.clone() if model is not None else None)
        self.reverse.set_loss_override(model.clone() if model is not None else None)

    def __repr__(self) -> str:
        return f"<DuplexLink {self.name!r} rtt={self.rtt * 1e3:.1f}ms>"
