"""The fabric: zones, inter-zone trunks and packet delivery.

The reproduction models the CDN the way the paper describes it: every PoP
owns an address prefix ("zone"), and each ordered pair of PoPs communicates
over a shared wide-area trunk (a :class:`~repro.net.link.DuplexLink`).  All
connections between two PoPs therefore share one bottleneck, which is what
makes the congestion windows of *existing* connections informative about
the path — the observation Riptide exploits.

Hosts attach by address.  ``send`` resolves ``(src, dst)`` to the trunk
between their zones (intra-zone traffic takes a fast local path) and the
trunk delivers to the destination host's ``receive_packet``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.net.addresses import IPv4Address, Prefix
from repro.net.errors import NetworkError, NoRouteError
from repro.net.link import DuplexLink, Link
from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.rand import RandomStreams


class AttachedHost(Protocol):
    """What the fabric requires of a host."""

    address: IPv4Address

    def receive_packet(self, packet: Packet) -> None: ...


@dataclass(frozen=True)
class PathSpec:
    """Parameters of one inter-zone trunk.

    ``propagation_delay`` is one-way; the resulting base RTT is twice this.
    """

    bandwidth_bps: float = 1e9
    propagation_delay: float = 0.040
    queue_limit_packets: int = 1024
    loss_model: LossModel = field(default_factory=NoLoss)

    @property
    def base_rtt(self) -> float:
        return 2.0 * self.propagation_delay


class Network:
    """Zones, trunks and hosts wired together over one simulator."""

    #: Delay for traffic between hosts of the same zone (LAN hop).
    DEFAULT_INTRA_ZONE_DELAY = 0.00025

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams | None = None,
        intra_zone_delay: float = DEFAULT_INTRA_ZONE_DELAY,
    ) -> None:
        self._sim = sim
        self._streams = streams if streams is not None else RandomStreams(0)
        self._zones: list[Prefix] = []
        self._trunks: dict[tuple[Prefix, Prefix], Link] = {}
        self._duplexes: dict[frozenset[Prefix], DuplexLink] = {}
        self._hosts: dict[IPv4Address, AttachedHost] = {}
        self._zone_cache: dict[IPv4Address, Prefix | None] = {}
        self._intra_zone_delay = intra_zone_delay
        self.packets_to_unknown_host = 0

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def zones(self) -> tuple[Prefix, ...]:
        return tuple(self._zones)

    def add_zone(self, prefix: Prefix) -> None:
        """Register an address zone (a PoP's prefix)."""
        for existing in self._zones:
            if existing.contains_prefix(prefix) or prefix.contains_prefix(existing):
                raise NetworkError(f"zone {prefix} overlaps existing zone {existing}")
        self._zones.append(prefix)
        self._zone_cache.clear()

    def connect_zones(
        self,
        zone_a: Prefix,
        zone_b: Prefix,
        spec: PathSpec,
    ) -> DuplexLink:
        """Create the wide-area trunk between two registered zones."""
        if zone_a not in self._zones or zone_b not in self._zones:
            raise NetworkError("both zones must be registered before connecting")
        if zone_a == zone_b:
            raise NetworkError("cannot connect a zone to itself")
        key = frozenset((zone_a, zone_b))
        if key in self._duplexes:
            raise NetworkError(f"zones {zone_a} and {zone_b} are already connected")
        name = f"{zone_a}<->{zone_b}"
        duplex = DuplexLink(
            self._sim,
            spec.bandwidth_bps,
            spec.propagation_delay,
            spec.queue_limit_packets,
            spec.loss_model,
            rng_forward=self._streams.stream(f"loss:{name}:fwd"),
            rng_reverse=self._streams.stream(f"loss:{name}:rev"),
            name=name,
        )
        self._duplexes[key] = duplex
        self._trunks[(zone_a, zone_b)] = duplex.forward
        self._trunks[(zone_b, zone_a)] = duplex.reverse
        return duplex

    def trunk_between(self, zone_a: Prefix, zone_b: Prefix) -> DuplexLink | None:
        """The duplex trunk between two zones, if one exists."""
        return self._duplexes.get(frozenset((zone_a, zone_b)))

    def link_from(self, src_zone: Prefix, dst_zone: Prefix) -> Link | None:
        """The unidirectional link carrying ``src_zone`` → ``dst_zone``.

        Fluid cohorts apply their bandwidth pressure and read loss/RTT
        from the directional link their data actually crosses.
        """
        return self._trunks.get((src_zone, dst_zone))

    def trunks_touching(self, zone: Prefix) -> list[DuplexLink]:
        """All trunks with ``zone`` as one endpoint (partition surface).

        Ordered by the trunk's name so fault injection walks them in a
        deterministic order regardless of dict insertion history.
        """
        touching = [
            duplex for key, duplex in self._duplexes.items() if zone in key
        ]
        touching.sort(key=lambda duplex: duplex.name)
        return touching

    def attach(self, host: AttachedHost) -> None:
        """Attach a host; its address must be unique on the fabric."""
        if host.address in self._hosts:
            raise NetworkError(f"address {host.address} already attached")
        self._hosts[host.address] = host

    def detach(self, address: IPv4Address) -> None:
        self._hosts.pop(address, None)

    def host_at(self, address: IPv4Address) -> AttachedHost | None:
        return self._hosts.get(address)

    def zone_of(self, address: IPv4Address) -> Prefix | None:
        """The zone containing ``address`` (cached per address)."""
        if address in self._zone_cache:
            return self._zone_cache[address]
        found = None
        for zone in self._zones:
            if zone.contains(address):
                found = zone
                break
        self._zone_cache[address] = found
        return found

    def send(self, packet: Packet) -> None:
        """Inject a packet; it is delivered (or dropped) asynchronously."""
        src_zone = self.zone_of(packet.src)
        dst_zone = self.zone_of(packet.dst)
        if src_zone is None or dst_zone is None:
            raise NoRouteError(
                f"no zone for {packet.src if src_zone is None else packet.dst}"
            )
        if src_zone == dst_zone:
            self._sim.schedule(self._intra_zone_delay, self._deliver_local, packet)
            return
        trunk = self._trunks.get((src_zone, dst_zone))
        if trunk is None:
            raise NoRouteError(f"no trunk from zone {src_zone} to zone {dst_zone}")
        trunk.transmit(packet, self._deliver_local)

    def _deliver_local(self, packet: Packet) -> None:
        host = self._hosts.get(packet.dst)
        if host is None:
            self.packets_to_unknown_host += 1
            return
        host.receive_packet(packet)

    def __repr__(self) -> str:
        return (
            f"<Network zones={len(self._zones)} trunks={len(self._duplexes)} "
            f"hosts={len(self._hosts)}>"
        )
