"""The packet carried by the fabric.

A packet is addressing plus a size in bytes plus an opaque payload (in this
reproduction, a TCP segment object).  The fabric charges transmission time
for ``size_bytes`` and never inspects the payload.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.net.addresses import IPv4Address

_packet_ids = itertools.count(1)
_next_packet_id = _packet_ids.__next__


class Packet:
    """An addressed datagram with a wire size."""

    __slots__ = ("packet_id", "src", "dst", "size_bytes", "payload", "sent_at")

    def __init__(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        size_bytes: int,
        payload: Any = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.packet_id = _next_packet_id()
        self.src = src
        self.dst = dst
        self.size_bytes = int(size_bytes)
        self.payload = payload
        self.sent_at: float | None = None

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.packet_id} {self.src}->{self.dst} "
            f"{self.size_bytes}B {self.payload!r}>"
        )
