"""Exception hierarchy for the network substrate."""


class NetworkError(Exception):
    """Base class for network substrate errors."""


class AddressError(NetworkError):
    """Raised for malformed IPv4 addresses or prefixes."""


class NoRouteError(NetworkError):
    """Raised when the fabric has no path between two attached hosts."""
