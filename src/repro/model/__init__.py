"""The closed-form transfer model of Section II-B.

"For our model, we assume that the delay to put packets on the wire is
negligible ... the receiver does not delay sending ACKs, and the
connections experience no loss."  Under those assumptions a transfer of
``S`` bytes with initial window ``W`` completes in as many RTTs as there
are slow-start rounds (W, 2W, 4W, ...) needed to cover ``ceil(S/MSS)``
segments.  Figures 3, 4 and 6 are direct evaluations of this model.
"""

from repro.model.slowstart import (
    rounds_schedule,
    rtts_to_complete,
    segments_for,
    transfer_time,
)
from repro.model.gain import gain_fraction, gain_series

__all__ = [
    "gain_fraction",
    "gain_series",
    "rounds_schedule",
    "rtts_to_complete",
    "segments_for",
    "transfer_time",
]
