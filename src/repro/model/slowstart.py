"""Slow-start round arithmetic."""

from __future__ import annotations

import math

from repro.tcp.constants import DEFAULT_MSS


def segments_for(size_bytes: int, mss: int = DEFAULT_MSS) -> int:
    """Number of MSS-sized segments needed to carry ``size_bytes``."""
    if size_bytes < 0:
        raise ValueError(f"size must be >= 0, got {size_bytes}")
    if mss <= 0:
        raise ValueError(f"mss must be positive, got {mss}")
    return math.ceil(size_bytes / mss)


def rounds_schedule(initcwnd: int, rounds: int) -> list[int]:
    """Cumulative segments deliverable after each slow-start round.

    Round ``i`` (1-based) sends ``initcwnd * 2**(i-1)`` segments, so the
    cumulative schedule is ``initcwnd * (2**i - 1)``.
    """
    if initcwnd < 1:
        raise ValueError(f"initcwnd must be >= 1, got {initcwnd}")
    if rounds < 0:
        raise ValueError(f"rounds must be >= 0, got {rounds}")
    return [initcwnd * (2**i - 1) for i in range(1, rounds + 1)]


def rtts_to_complete(
    size_bytes: int,
    initcwnd: int,
    mss: int = DEFAULT_MSS,
) -> int:
    """RTTs needed to deliver ``size_bytes`` under lossless slow start.

    A zero-byte transfer needs 0 RTTs; anything that fits in the initial
    window needs exactly 1.  Closed form: with ``n`` segments required,
    the smallest ``r`` with ``initcwnd * (2**r - 1) >= n``.
    """
    if initcwnd < 1:
        raise ValueError(f"initcwnd must be >= 1, got {initcwnd}")
    n = segments_for(size_bytes, mss)
    if n == 0:
        return 0
    return math.ceil(math.log2(n / initcwnd + 1.0))


def transfer_time(
    size_bytes: int,
    initcwnd: int,
    rtt: float,
    mss: int = DEFAULT_MSS,
    handshake: bool = False,
) -> float:
    """Model transfer time in seconds (optionally charging the 3WHS RTT)."""
    if rtt < 0:
        raise ValueError(f"rtt must be >= 0, got {rtt}")
    rounds = rtts_to_complete(size_bytes, initcwnd, mss)
    if handshake and rounds > 0:
        rounds += 1
    return rounds * rtt
