"""Theoretical gain from larger initial windows (Figure 4)."""

from __future__ import annotations

from repro.model.slowstart import rtts_to_complete
from repro.tcp.constants import DEFAULT_MSS


def gain_fraction(
    size_bytes: int,
    initcwnd: int,
    baseline_initcwnd: int = 10,
    mss: int = DEFAULT_MSS,
) -> float:
    """Fractional reduction in RTTs versus the baseline window.

    ``0.5`` means the transfer needs half as many round trips.  Zero-RTT
    transfers (empty files) gain nothing by definition.
    """
    baseline = rtts_to_complete(size_bytes, baseline_initcwnd, mss)
    if baseline == 0:
        return 0.0
    improved = rtts_to_complete(size_bytes, initcwnd, mss)
    return 1.0 - improved / baseline


def gain_series(
    sizes_bytes: list[int],
    initcwnd: int,
    baseline_initcwnd: int = 10,
    mss: int = DEFAULT_MSS,
) -> list[float]:
    """The Figure 4 series: gain at each file size."""
    return [
        gain_fraction(size, initcwnd, baseline_initcwnd, mss)
        for size in sizes_bytes
    ]
