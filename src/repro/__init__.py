"""Reproduction of *Riptide: Jump-Starting Back-Office Connections in
Cloud Systems* (Flores, Khakpour, Bedi — ICDCS 2016).

The package is layered bottom-up:

* :mod:`repro.sim` — deterministic discrete-event kernel;
* :mod:`repro.net` — links, loss models, the inter-PoP fabric;
* :mod:`repro.tcp` — segment-granularity TCP (slow start, CUBIC/Reno,
  NewReno recovery, RTO) with route-resolved initial windows;
* :mod:`repro.linux` — hosts with ``ip route``/``ss``-shaped surfaces;
* :mod:`repro.cdn` — the 34-PoP CDN, file sizes, probes, workloads;
* :mod:`repro.core` — **Riptide itself** (Algorithm 1 and its variants);
* :mod:`repro.model` — the Section II-B closed-form transfer model;
* :mod:`repro.analysis` — CDFs and percentile-gain comparisons;
* :mod:`repro.experiments` — one harness per paper figure/table.

Quick start::

    from repro import CdnCluster, ClusterConfig, build_paper_topology

    cluster = CdnCluster(build_paper_topology())
    cluster.add_organic_workload("LHR", ["JFK", "NRT"])
    cluster.start_riptide()
    cluster.run(60.0)
"""

from repro.cdn import (
    CdnCluster,
    ClusterConfig,
    FileSizeDistribution,
    ProbeFleet,
    Topology,
    build_paper_topology,
)
from repro.core import RiptideAgent, RiptideConfig
from repro.linux import Host
from repro.net import Network, PathSpec, Prefix
from repro.sim import RandomStreams, Simulator
from repro.tcp import TcpConfig

__version__ = "1.0.0"

__all__ = [
    "CdnCluster",
    "ClusterConfig",
    "FileSizeDistribution",
    "Host",
    "Network",
    "PathSpec",
    "Prefix",
    "ProbeFleet",
    "RandomStreams",
    "RiptideAgent",
    "RiptideConfig",
    "Simulator",
    "TcpConfig",
    "Topology",
    "build_paper_topology",
    "__version__",
]
