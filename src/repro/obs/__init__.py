"""``repro.obs`` — the observability layer.

Metrics (:mod:`repro.obs.metrics`), structured tracing
(:mod:`repro.obs.trace`), the learned-table/route-table consistency
auditor (:mod:`repro.obs.audit`), and the per-simulator wiring
(:mod:`repro.obs.instrument`).  See the "Observability" section of
``docs/ARCHITECTURE.md`` for the metric-name reference.
"""

from repro.obs.audit import Auditor, Divergence
from repro.obs.instrument import (
    Instrumentation,
    active_instrumentation,
    capture,
    disabled,
    instrumentation_for_new_simulator,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricRow,
    format_labels,
)
from repro.obs.trace import EventType, TraceEvent, TraceLog

__all__ = [
    "Auditor",
    "Counter",
    "Divergence",
    "EventType",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricRow",
    "MetricsRegistry",
    "TraceEvent",
    "TraceLog",
    "active_instrumentation",
    "capture",
    "disabled",
    "format_labels",
    "instrumentation_for_new_simulator",
]
