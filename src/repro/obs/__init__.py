"""``repro.obs`` — the observability layer.

Metrics (:mod:`repro.obs.metrics`), structured tracing
(:mod:`repro.obs.trace`), per-connection flow records
(:mod:`repro.obs.flow`), lifecycle spans (:mod:`repro.obs.span`),
time-series snapshots (:mod:`repro.obs.timeline`), the windowed
time-series store (:mod:`repro.obs.tsdb`), the burn-rate SLO engine
(:mod:`repro.obs.slo`), the tail-latency attribution report
(:mod:`repro.obs.report`), the learned-table/route-table consistency
auditor (:mod:`repro.obs.audit`), and the per-simulator wiring
(:mod:`repro.obs.instrument`).  See the "Observability" section of
``docs/ARCHITECTURE.md`` for the metric-name reference and the
attribution-cause taxonomy.
"""

from repro.obs.audit import Auditor, Divergence
from repro.obs.flow import FlowLog, FlowRecord
from repro.obs.instrument import (
    Instrumentation,
    active_instrumentation,
    capture,
    disabled,
    instrumentation_for_new_simulator,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricRow,
    format_labels,
)
from repro.obs.report import ATTRIBUTION_CAUSES, build_report, render_report, report_to_json
from repro.obs.slo import (
    DEFAULT_SLO_WINDOW,
    AlertEpisode,
    AlertLog,
    BurnRateRule,
    SloEngine,
    SloSignal,
    SloSpec,
    alert_report_to_json,
    alert_report_to_markdown,
    build_alert_report,
    default_burn_rules,
    default_slos,
    source_matches_arm,
)
from repro.obs.span import Span, SpanLog
from repro.obs.timeline import Timeline, TimelinePoint
from repro.obs.trace import EventType, TraceEvent, TraceLog
from repro.obs.tsdb import TsdbPoint, WindowAggregate, WindowedStore

__all__ = [
    "ATTRIBUTION_CAUSES",
    "DEFAULT_SLO_WINDOW",
    "AlertEpisode",
    "AlertLog",
    "Auditor",
    "BurnRateRule",
    "Counter",
    "Divergence",
    "EventType",
    "FlowLog",
    "FlowRecord",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricRow",
    "MetricsRegistry",
    "SloEngine",
    "SloSignal",
    "SloSpec",
    "Span",
    "SpanLog",
    "Timeline",
    "TimelinePoint",
    "TraceEvent",
    "TraceLog",
    "TsdbPoint",
    "WindowAggregate",
    "WindowedStore",
    "active_instrumentation",
    "alert_report_to_json",
    "alert_report_to_markdown",
    "build_alert_report",
    "build_report",
    "capture",
    "default_burn_rules",
    "default_slos",
    "disabled",
    "format_labels",
    "instrumentation_for_new_simulator",
    "render_report",
    "report_to_json",
    "source_matches_arm",
]
