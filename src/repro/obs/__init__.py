"""``repro.obs`` — the observability layer.

Metrics (:mod:`repro.obs.metrics`), structured tracing
(:mod:`repro.obs.trace`), per-connection flow records
(:mod:`repro.obs.flow`), lifecycle spans (:mod:`repro.obs.span`),
time-series snapshots (:mod:`repro.obs.timeline`), the tail-latency
attribution report (:mod:`repro.obs.report`), the learned-table/
route-table consistency auditor (:mod:`repro.obs.audit`), and the
per-simulator wiring (:mod:`repro.obs.instrument`).  See the
"Observability" section of ``docs/ARCHITECTURE.md`` for the metric-name
reference and the attribution-cause taxonomy.
"""

from repro.obs.audit import Auditor, Divergence
from repro.obs.flow import FlowLog, FlowRecord
from repro.obs.instrument import (
    Instrumentation,
    active_instrumentation,
    capture,
    disabled,
    instrumentation_for_new_simulator,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricRow,
    format_labels,
)
from repro.obs.report import ATTRIBUTION_CAUSES, build_report, render_report, report_to_json
from repro.obs.span import Span, SpanLog
from repro.obs.timeline import Timeline, TimelinePoint
from repro.obs.trace import EventType, TraceEvent, TraceLog

__all__ = [
    "ATTRIBUTION_CAUSES",
    "Auditor",
    "Counter",
    "Divergence",
    "EventType",
    "FlowLog",
    "FlowRecord",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricRow",
    "MetricsRegistry",
    "Span",
    "SpanLog",
    "Timeline",
    "TimelinePoint",
    "TraceEvent",
    "TraceLog",
    "active_instrumentation",
    "build_report",
    "capture",
    "disabled",
    "format_labels",
    "instrumentation_for_new_simulator",
    "render_report",
    "report_to_json",
]
