"""The consistency auditor: learned table vs installed windows.

The Riptide agent keeps two copies of the truth — its
:class:`~repro.core.observed.LearnedTable` (what it believes it has
installed) and the host's actual installation state (the route table in
user-space mode, the kernel hook's window map in kernel mode).  Any
divergence between the two means new connections are *not* getting the
windows the agent thinks they are: exactly the failure mode of a stopped
agent stranding learned entries, or an operator deleting routes out from
under a running one.

:class:`Auditor.check` walks the learned table and compares each entry's
window against :meth:`RiptideAgent.installed_window`.  Divergences are
counted in the metrics registry (``auditor_divergences``), traced as
:attr:`~repro.obs.trace.EventType.AUDIT_DIVERGENCE` events, and returned
to the caller.  When attached to an agent (see
:meth:`~repro.core.agent.RiptideAgent.attach_auditor`) the check runs at
the *start* of every poll tick — before the install pass — so a
divergence is observed once and then self-healed by the same tick's
reinstall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.trace import EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.agent import RiptideAgent
    from repro.net.addresses import Prefix


@dataclass(frozen=True)
class Divergence:
    """One learned entry whose installed window does not match."""

    destination: "Prefix"
    learned_window: int
    installed_window: int | None

    def describe(self) -> str:
        installed = (
            "missing" if self.installed_window is None else str(self.installed_window)
        )
        return (
            f"{self.destination}: learned window {self.learned_window}, "
            f"installed {installed}"
        )


class Auditor:
    """Cross-checks one agent's learned table against installed state."""

    def __init__(self, agent: "RiptideAgent") -> None:
        self.agent = agent
        obs = agent.host.sim.obs
        self._trace = obs.trace
        self._source = f"auditor:{agent.host.name}"
        self._m_checks = obs.metrics.counter("auditor_checks")
        self._m_entries = obs.metrics.counter("auditor_entries_checked")
        self._m_divergences = obs.metrics.counter("auditor_divergences")
        self.checks_run = 0
        self.divergences_found = 0
        self.last_divergences: list[Divergence] = []

    def check(self, now: float | None = None) -> list[Divergence]:
        """Audit once; count, trace and return any divergences."""
        if now is None:
            now = self.agent.host.sim.now
        divergences = []
        entries = self.agent.learned_table().entries()
        for entry in entries:
            installed = self.agent.installed_window(entry.destination)
            if installed != entry.window:
                divergences.append(
                    Divergence(
                        destination=entry.destination,
                        learned_window=entry.window,
                        installed_window=installed,
                    )
                )
        self.checks_run += 1
        self._m_checks.inc()
        self._m_entries.inc(len(entries))
        if divergences:
            self.divergences_found += len(divergences)
            self._m_divergences.inc(len(divergences))
            for divergence in divergences:
                self._trace.record(
                    now,
                    EventType.AUDIT_DIVERGENCE,
                    self._source,
                    destination=str(divergence.destination),
                    learned=divergence.learned_window,
                    installed=divergence.installed_window,
                )
        self.last_divergences = divergences
        return divergences

    def __repr__(self) -> str:
        return (
            f"<Auditor agent={self.agent.host.name} checks={self.checks_run} "
            f"divergences={self.divergences_found}>"
        )
