"""Lifecycle spans: begin/end intervals with parent causality.

The Dapper-shaped complement to the point-event trace log: a
:class:`Span` covers an *interval* of simulated time — one agent poll
tick, one probe transfer, one guard hold, one fault window — and may
name a parent span, so a guard trip recorded inside a poll tick is
causally attached to that tick.

Spans export as Chrome trace-event JSON (the ``chrome://tracing`` /
Perfetto format): completed spans become ``"X"`` (complete) events with
microsecond ``ts``/``dur``, spans still open at the end of a run become
``"B"`` (begin) events.  Each distinct span source gets its own track
(``tid``), so a Perfetto timeline shows one lane per host/component.

Like :class:`~repro.obs.flow.FlowLog`, the log is bounded drop-newest
with dense ids, so :meth:`SpanLog.merge_from` renumbers and reproduces a
serial run's retained spans exactly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class Span:
    """One interval of simulated time on one source."""

    span_id: int
    name: str
    #: Coarse grouping used by the report joiner: ``"agent"``,
    #: ``"probe"``, ``"guard"``, ``"fault"``.
    category: str
    source: str
    begin: float
    end: float | None = None
    parent_id: int | None = None
    details: tuple[tuple[str, object], ...] = ()

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.begin

    def detail(self, key: str, default: object = None) -> object:
        for k, v in self.details:
            if k == key:
                return v
        return default


class SpanLog:
    """All spans of one run, bounded drop-newest with dense ids."""

    def __init__(self, capacity: int = 200_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._spans: list[Span] = []
        self._next_id = 0

    def begin(
        self,
        time: float,
        name: str,
        category: str,
        source: str,
        parent: Span | None = None,
        **details: object,
    ) -> Span | None:
        """Open a span.  Returns None past capacity (counted, not stored)."""
        span_id = self._next_id
        self._next_id += 1
        if len(self._spans) >= self.capacity:
            return None
        span = Span(
            span_id=span_id,
            name=name,
            category=category,
            source=source,
            begin=time,
            parent_id=parent.span_id if parent is not None else None,
            details=tuple(details.items()),
        )
        self._spans.append(span)
        return span

    def end(self, span: Span | None, time: float, **details: object) -> None:
        """Close a span, appending any closing details.

        Accepts None (a span that was dropped at begin) so call sites
        never need to guard.
        """
        if span is None:
            return
        span.end = time
        if details:
            span.details = span.details + tuple(details.items())

    def merge_from(self, other: "SpanLog") -> None:
        """Fold another log's spans into this one, byte-identically.

        Span ids *and* parent references are renumbered by this log's
        ``next_id`` offset — the ids a serial run beginning the same
        spans in task order would have assigned — and retained spans
        append until capacity (drop-newest, matching serial retention).
        """
        offset = self._next_id
        room = self.capacity - len(self._spans)
        for index, span in enumerate(other._spans):
            span.span_id += offset
            if span.parent_id is not None:
                span.parent_id += offset
            if index < room:
                self._spans.append(span)
        self._next_id = offset + other._next_id

    @property
    def next_id(self) -> int:
        """Total spans ever begun."""
        return self._next_id

    @property
    def dropped(self) -> int:
        """Spans begun past capacity and therefore not retained."""
        return self._next_id - len(self._spans)

    def spans(
        self,
        category: str | None = None,
        source: str | None = None,
        open_only: bool = False,
    ) -> list[Span]:
        """Retained spans, optionally filtered."""
        selected = []
        for span in self._spans:
            if category is not None and span.category != category:
                continue
            if source is not None and span.source != source:
                continue
            if open_only and span.end is not None:
                continue
            selected.append(span)
        return selected

    def to_chrome_trace(self) -> list[dict[str, object]]:
        """Spans as Chrome trace-event objects (``ts``/``dur`` in µs).

        Completed spans become phase ``"X"`` events; spans still open
        become phase ``"B"`` events.  Sources map to ``tid`` tracks in
        sorted order so the layout is deterministic.
        """
        tids = {
            source: tid
            for tid, source in enumerate(
                sorted({span.source for span in self._spans}), start=1
            )
        }
        events: list[dict[str, object]] = []
        for span in self._spans:
            args: dict[str, object] = {"span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update({key: value for key, value in span.details})
            event = {
                "name": span.name,
                "cat": span.category,
                "ph": "X" if span.end is not None else "B",
                "ts": span.begin * 1e6,
                "pid": 1,
                "tid": tids[span.source],
                "args": args,
            }
            if span.end is not None:
                event["dur"] = (span.end - span.begin) * 1e6
            events.append(event)
        return events

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:
        open_count = sum(1 for span in self._spans if span.end is None)
        return (
            f"<SpanLog retained={len(self._spans)}/{self.capacity} "
            f"begun={self._next_id} open={open_count} dropped={self.dropped}>"
        )
