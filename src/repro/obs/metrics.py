"""The metrics registry: counters, gauges and sim-time-aware histograms.

The paper's evaluation is driven entirely by live measurement (Section IV
samples congestion windows every minute with ``ss``); an operator only
trusts initial-window tuning they can watch in flight.  This module is
the reproduction's equivalent surface: every layer registers counters
(monotonic totals), gauges (last-written values with a high-water mark)
and histograms (sample distributions with percentile readout) in one
:class:`MetricsRegistry`, keyed by ``(name, labels)``.

Instruments are cheap by construction — a counter increment is one
attribute add on a cached handle — so they can sit on hot paths (one per
simulated event, one per transmitted packet) without distorting the
simulation's performance profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

#: Canonical form of a label set: sorted ``(key, value)`` pairs.
LabelSet = tuple[tuple[str, str], ...]

#: Percentiles reported by default in tables and exports.
DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


def _labelset(labels: Mapping[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_labels(labels: LabelSet) -> str:
    """Render a label set Prometheus-style: ``{k=v,k2=v2}`` or ``""``."""
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    labels: LabelSet = ()
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A last-written value with a high-water mark."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0
    max_value: float = 0.0
    _written: bool = False

    def set(self, value: float) -> None:
        self.value = value
        if not self._written or value > self.max_value:
            self.max_value = value
        self._written = True


@dataclass
class Histogram:
    """A sample distribution with exact percentile readout.

    Observation is O(1) append; the sample list is sorted lazily on the
    first ordered read (percentile/min/max/values) after new samples
    arrive, so quantiles stay exact rather than bucket-approximated
    without hot paths paying an O(n) insertion per sample.  Each
    observation may carry the simulation time it was taken at;
    :meth:`observed_between` slices the distribution by sim-time window,
    which is what lets one histogram serve both whole-run and
    warmup-excluded readouts.
    """

    name: str
    labels: LabelSet = ()
    _samples: list[float] = field(default_factory=list)
    _timed: list[tuple[float, float]] = field(default_factory=list)
    _dirty: bool = False

    def observe(self, value: float, t: float | None = None) -> None:
        value = float(value)
        self._samples.append(value)
        self._dirty = True
        if t is not None:
            self._timed.append((t, value))

    def _ordered(self) -> list[float]:
        """The samples, sorted in place (re-sorted only when dirty)."""
        if self._dirty:
            self._samples.sort()
            self._dirty = False
        return self._samples

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def sum(self) -> float:
        """The correctly-rounded true sum of all samples.

        ``math.fsum`` is independent of observation *and* merge order,
        so a merged histogram's sum (and mean) is bit-identical to the
        serial run's — a running ``+=`` subtotal would differ in the
        last ulp depending on how samples were grouped across workers.
        """
        return math.fsum(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self.sum / len(self._samples)

    @property
    def min(self) -> float:
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self._ordered()[0]

    @property
    def max(self) -> float:
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self._ordered()[-1]

    def percentile(self, p: float) -> float:
        """Exact percentile ``p`` in [0, 100] (nearest-rank)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        ordered = self._ordered()
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def observed_between(self, start: float, end: float) -> list[float]:
        """Values observed with sim-time ``t`` in ``[start, end)``.

        Only samples recorded with an explicit ``t`` participate.
        """
        return [v for t, v in self._timed if start <= t < end]

    def values(self) -> list[float]:
        """All samples, sorted ascending."""
        return list(self._ordered())


@dataclass(frozen=True)
class MetricRow:
    """One instrument flattened for tables and exports."""

    kind: str
    name: str
    labels: LabelSet
    fields: tuple[tuple[str, float], ...]


class MetricsRegistry:
    """All instruments of one run, keyed by ``(name, labels)``.

    ``counter()``, ``gauge()`` and ``histogram()`` are get-or-create: the
    first call registers the instrument (so it appears in readouts even
    at zero), later calls return the same handle — callers on hot paths
    should cache the handle rather than re-resolving each time.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelSet], Counter] = {}
        self._gauges: dict[tuple[str, LabelSet], Gauge] = {}
        self._histograms: dict[tuple[str, LabelSet], Histogram] = {}

    # -- get-or-create ---------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _labelset(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _labelset(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, _labelset(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1])
        return instrument

    # -- merging ---------------------------------------------------------

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Semantics are chosen so that merging per-run registries in run
        order reproduces exactly the registry a serial execution of those
        runs under one shared instrumentation would have built: counters
        add; gauges adopt the other registry's last-written value and the
        combined high-water mark; histograms merge their sorted samples
        and append timed samples in order.  (Histogram ``sum``/``mean``
        are ``math.fsum`` over the samples — independent of both order
        and worker grouping — so every derived statistic is exact, not
        just counts, values and percentiles.)
        """
        for key, counter in other._counters.items():
            mine = self._counters.get(key)
            if mine is None:
                self._counters[key] = Counter(counter.name, key[1], counter.value)
            else:
                mine.value += counter.value
        for key, gauge in other._gauges.items():
            mine = self._gauges.get(key)
            if mine is None:
                self._gauges[key] = Gauge(
                    gauge.name, key[1], gauge.value, gauge.max_value, gauge._written
                )
            elif gauge._written:
                mine.value = gauge.value
                if not mine._written or gauge.max_value > mine.max_value:
                    mine.max_value = gauge.max_value
                mine._written = True
        for key, histogram in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = Histogram(histogram.name, key[1])
            mine._samples.extend(histogram._samples)
            mine._dirty = bool(mine._samples)
            mine._timed.extend(histogram._timed)

    # -- readout ---------------------------------------------------------

    def counters(self) -> list[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> list[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> list[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def counter_value(self, name: str, **labels: str) -> int:
        """Current value of a counter (0 when never registered)."""
        instrument = self._counters.get((name, _labelset(labels)))
        return instrument.value if instrument is not None else 0

    def total(self, name: str) -> int:
        """Sum of a counter across all of its label sets."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def snapshot(
        self, percentiles: Iterable[float] = DEFAULT_PERCENTILES
    ) -> list[MetricRow]:
        """All instruments flattened to rows, sorted by kind then key."""
        levels = tuple(percentiles)
        rows: list[MetricRow] = []
        for counter in self.counters():
            rows.append(
                MetricRow("counter", counter.name, counter.labels,
                          (("value", float(counter.value)),))
            )
        for gauge in self.gauges():
            rows.append(
                MetricRow("gauge", gauge.name, gauge.labels,
                          (("value", gauge.value), ("max", gauge.max_value)))
            )
        for histogram in self.histograms():
            fields: list[tuple[str, float]] = [("count", float(histogram.count))]
            if histogram.count:
                fields.append(("mean", histogram.mean))
                fields.extend(
                    (f"p{level:g}", histogram.percentile(level)) for level in levels
                )
                fields.append(("max", histogram.max))
            rows.append(MetricRow("histogram", histogram.name, histogram.labels, tuple(fields)))
        return rows

    def render_table(
        self, percentiles: Iterable[float] = DEFAULT_PERCENTILES
    ) -> str:
        """Human-readable fixed-width metric table."""
        rows = self.snapshot(percentiles)
        if not rows:
            return "(no metrics registered)"
        rendered = [("KIND", "METRIC", "VALUE")]
        for row in rows:
            series = row.name + format_labels(row.labels)
            fields = " ".join(f"{k}={_fmt(v)}" for k, v in row.fields)
            rendered.append((row.kind, series, fields))
        kind_w = max(len(r[0]) for r in rendered)
        name_w = max(len(r[1]) for r in rendered)
        return "\n".join(
            f"{kind:<{kind_w}}  {name:<{name_w}}  {fields}"
            for kind, name, fields in rendered
        )

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"
