"""Time-series snapshots on a sim-time cadence.

The paper's operators watch congestion windows *in flight* (Section IV
samples every minute with ``ss``; Figures 7/8 plot learned windows over
time).  A :class:`Timeline` is the store for that view: periodic
``(time, source, series, value)`` points — per-destination learned
windows, installed-route counts, active-fault counts — recorded by a
sampler (:class:`~repro.cdn.monitors.TimelineSampler`) and exportable as
long-format CSV.

The store is bounded drop-newest with a total-recorded counter, so
merging per-worker timelines in task order reproduces a serial run's
retained points exactly (same scheme as :class:`~repro.obs.flow.FlowLog`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TimelinePoint:
    """One sampled value of one series on one source."""

    time: float
    source: str
    series: str
    value: float


class Timeline:
    """All timeline points of one run, bounded drop-newest."""

    def __init__(self, capacity: int = 200_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._points: list[TimelinePoint] = []
        self._recorded = 0

    def record(self, time: float, source: str, series: str, value: float) -> None:
        """Append one sample (counted but not stored past capacity)."""
        self._recorded += 1
        if len(self._points) < self.capacity:
            self._points.append(TimelinePoint(time, source, series, float(value)))

    def merge_from(self, other: "Timeline") -> None:
        """Append another timeline's retained points (drop-newest)."""
        room = self.capacity - len(self._points)
        self._points.extend(other._points[:room])
        self._recorded += other._recorded

    @property
    def recorded(self) -> int:
        """Total points ever recorded (not capacity-limited)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        return self._recorded - len(self._points)

    def points(
        self,
        series: str | None = None,
        source: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[TimelinePoint]:
        """Retained points, optionally filtered.

        ``since``/``until`` bound the sampled time, both inclusive, so a
        point exactly on either edge is kept.
        """
        selected = []
        for point in self._points:
            if series is not None and point.series != series:
                continue
            if source is not None and point.source != source:
                continue
            if since is not None and point.time < since:
                continue
            if until is not None and point.time > until:
                continue
            selected.append(point)
        return selected

    def series_names(self) -> list[str]:
        """Distinct ``(source, series)`` pairs flattened, sorted."""
        return sorted({f"{p.source}:{p.series}" for p in self._points})

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return (
            f"<Timeline retained={len(self._points)}/{self.capacity} "
            f"recorded={self._recorded} series={len(self.series_names())}>"
        )
