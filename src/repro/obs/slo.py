"""Declarative SLO engine with SRE-style multi-window burn-rate alerts.

The SafetyGuard makes *enforcement* decisions from raw loss/RTT signals;
this module adds the declarative *observability* tier above it: an
:class:`SloSpec` names a service-level indicator read from the windowed
time-series store (:mod:`repro.obs.tsdb`), an error budget, and a bad
threshold; a :class:`BurnRateRule` is the standard SRE multi-window
multi-burn-rate alert condition (fire when the budget burns at >= N x
the sustainable rate over *both* a long and a short lookback, so spikes
must persist and recoveries resolve quickly).

The engine is evaluated on a deterministic simulated-time cadence (see
``CdnCluster.start_slo``).  Each alert walks the Prometheus lifecycle —
``pending`` when the condition first holds, ``firing`` once it has held
for the rule's ``for_duration``, ``resolved`` when it clears — emitting
a trace event per transition, one span per firing interval (category
``"alert"``), and burn-rate metrics.  Episodes land in a bounded
:class:`AlertLog` whose ``merge_from`` renumbers dense ids exactly like
the span log, so parallel runs reproduce a serial run's alert report
byte-for-byte.

Sources are arm-qualified (``riptide:LHR-0|10.3.0.0/16``,
``control:probes``) and each cluster's engine only evaluates sources in
its own arm, which is what keeps serial shared-capture runs identical
to per-worker captures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs.metrics import Gauge, MetricsRegistry
from repro.obs.span import Span, SpanLog
from repro.obs.trace import EventType, TraceLog
from repro.obs.tsdb import WindowedStore

__all__ = [
    "DEFAULT_SLO_WINDOW",
    "VALID_SIGNAL_KINDS",
    "AlertEpisode",
    "AlertLog",
    "BurnRateRule",
    "SloEngine",
    "SloSignal",
    "SloSpec",
    "alert_report_to_json",
    "alert_report_to_markdown",
    "build_alert_report",
    "default_burn_rules",
    "default_slos",
    "source_matches_arm",
]

#: Default aligned-window width (simulated seconds) for SLI derivations.
DEFAULT_SLO_WINDOW = 5.0

VALID_SIGNAL_KINDS = ("percentile", "last", "sum", "rate", "sum_ratio")

_INACTIVE = "inactive"
_PENDING = "pending"
_FIRING = "firing"


def source_matches_arm(source: str, arm: str) -> bool:
    """Whether a tsdb/alert source belongs to an experiment arm.

    Arm labels prefix sources as ``label:rest`` (host names are already
    label-prefixed; fleet/agent taps follow the same convention).  The
    empty label matches only unqualified sources, so a serial run that
    captures two arms into one store never cross-reads.
    """
    if arm:
        return source == arm or source.startswith(arm + ":")
    return ":" not in source


@dataclass(frozen=True, slots=True)
class SloSignal:
    """How to read one SLI value for one aligned window from the tsdb."""

    #: One of :data:`VALID_SIGNAL_KINDS`.
    kind: str
    series: str
    #: Denominator series, ``sum_ratio`` only.
    denominator: str = ""
    #: Percentile rank, ``percentile`` only.
    p: float = 90.0
    #: Minimum denominator sum before a ratio window is judged.
    min_count: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in VALID_SIGNAL_KINDS:
            raise ValueError(
                f"kind must be one of {VALID_SIGNAL_KINDS}, got {self.kind!r}"
            )
        if self.kind == "sum_ratio" and not self.denominator:
            raise ValueError("sum_ratio signals need a denominator series")
        if self.kind != "sum_ratio" and self.denominator:
            raise ValueError(f"denominator is only valid for sum_ratio, got {self.kind!r}")
        if not 0.0 < self.p <= 100.0:
            raise ValueError(f"p must be in (0, 100], got {self.p}")
        if self.min_count < 0.0:
            raise ValueError(f"min_count must be >= 0, got {self.min_count}")

    def value(
        self, tsdb: WindowedStore, source: str, index: int, window: float
    ) -> float | None:
        """The SLI value of one window; None when there is no signal."""
        if self.kind == "percentile":
            return tsdb.percentile(source, self.series, index, window, self.p)
        if self.kind == "last":
            return tsdb.last(source, self.series, index, window)
        if self.kind == "sum":
            return tsdb.window_sum(source, self.series, index, window)
        if self.kind == "rate":
            return tsdb.rate(source, self.series, index, window)
        return tsdb.sum_ratio(
            source, self.series, self.denominator, index, window, self.min_count
        )


@dataclass(frozen=True, slots=True)
class SloSpec:
    """One service-level objective over a tsdb signal."""

    name: str
    description: str
    signal: SloSignal
    #: A window is *bad* when the signal crosses this value.
    threshold: float
    #: ``"above"``: bad when value > threshold; ``"below"``: bad when <.
    comparison: str = "above"
    #: Error budget — the tolerated fraction of bad windows.
    objective: float = 0.05

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("name must be non-empty")
        if self.comparison not in ("above", "below"):
            raise ValueError(
                f"comparison must be 'above' or 'below', got {self.comparison!r}"
            )
        if not 0.0 < self.objective <= 1.0:
            raise ValueError(f"objective must be in (0, 1], got {self.objective}")

    def window_is_bad(self, value: float) -> bool:
        if self.comparison == "above":
            return value > self.threshold
        return value < self.threshold


@dataclass(frozen=True, slots=True)
class BurnRateRule:
    """One SRE multi-window multi-burn-rate alert condition."""

    severity: str
    #: Long lookback (simulated seconds) — spikes must persist this scale.
    long_window: float
    #: Short lookback — lets recoveries resolve quickly.
    short_window: float
    #: Fire when burn >= factor over *both* lookbacks.
    burn_factor: float
    #: Pending dwell before firing (0 fires on the first bad evaluation).
    for_duration: float = 0.0

    def __post_init__(self) -> None:
        if not self.severity:
            raise ValueError("severity must be non-empty")
        if self.short_window <= 0.0:
            raise ValueError(f"short_window must be > 0, got {self.short_window}")
        if self.long_window < self.short_window:
            raise ValueError(
                f"long_window must be >= short_window, got "
                f"{self.long_window} < {self.short_window}"
            )
        if self.burn_factor <= 0.0:
            raise ValueError(f"burn_factor must be > 0, got {self.burn_factor}")
        if self.for_duration < 0.0:
            raise ValueError(f"for_duration must be >= 0, got {self.for_duration}")


def default_slos() -> tuple[SloSpec, ...]:
    """The stock SLO zoo evaluated by chaos and tournament runs."""
    return (
        SloSpec(
            name="probe_latency_p90",
            description="Probe completion p90 stays under 1s",
            signal=SloSignal(kind="percentile", series="probe_latency", p=90.0),
            threshold=1.0,
            objective=0.25,
        ),
        SloSpec(
            name="retransmit_ratio",
            description="Per-destination retransmit ratio stays under 5%",
            signal=SloSignal(
                kind="sum_ratio",
                series="dest_segments_retransmitted",
                denominator="dest_segments_sent",
                min_count=20.0,
            ),
            threshold=0.05,
            objective=0.10,
        ),
        SloSpec(
            name="guard_withdrawal_rate",
            description="SafetyGuard withdrawals are rare",
            signal=SloSignal(kind="rate", series="guard_trips"),
            threshold=0.0,
            objective=0.25,
        ),
        SloSpec(
            name="route_staleness",
            description="Learned routes are refreshed well inside their TTL",
            signal=SloSignal(kind="last", series="route_staleness"),
            threshold=45.0,
            objective=0.10,
        ),
    )


def default_burn_rules() -> tuple[BurnRateRule, ...]:
    """Stock page/ticket rule pair (Google SRE workbook shape, scaled
    to simulated chaos-run durations)."""
    return (
        BurnRateRule(
            severity="page", long_window=15.0, short_window=5.0, burn_factor=2.0
        ),
        BurnRateRule(
            severity="ticket",
            long_window=30.0,
            short_window=10.0,
            burn_factor=1.0,
            for_duration=5.0,
        ),
    )


@dataclass(slots=True)
class AlertEpisode:
    """One walk through the alert lifecycle for one (SLO, rule, source)."""

    alert_id: int
    slo: str
    severity: str
    source: str
    burn_factor: float
    long_window: float
    short_window: float
    pending_at: float
    firing_at: float | None = None
    resolved_at: float | None = None
    peak_burn: float = 0.0

    @property
    def fired(self) -> bool:
        return self.firing_at is not None

    @property
    def resolved(self) -> bool:
        return self.firing_at is not None and self.resolved_at is not None

    def to_dict(self) -> dict[str, object]:
        return {
            "alert_id": self.alert_id,
            "slo": self.slo,
            "severity": self.severity,
            "source": self.source,
            "burn_factor": self.burn_factor,
            "long_window": self.long_window,
            "short_window": self.short_window,
            "pending_at": self.pending_at,
            "firing_at": self.firing_at,
            "resolved_at": self.resolved_at,
            "peak_burn": round(self.peak_burn, 6),
        }


class AlertLog:
    """All alert episodes of one run, bounded drop-newest, dense ids."""

    __slots__ = ("capacity", "_episodes", "_next_id")

    def __init__(self, capacity: int = 50_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._episodes: list[AlertEpisode] = []
        self._next_id = 0

    def begin(
        self,
        time: float,
        slo: str,
        severity: str,
        source: str,
        rule: BurnRateRule,
    ) -> AlertEpisode | None:
        """Open an episode at pending.  None past capacity (still counted)."""
        alert_id = self._next_id
        self._next_id += 1
        if len(self._episodes) >= self.capacity:
            return None
        episode = AlertEpisode(
            alert_id=alert_id,
            slo=slo,
            severity=severity,
            source=source,
            burn_factor=rule.burn_factor,
            long_window=rule.long_window,
            short_window=rule.short_window,
            pending_at=time,
        )
        self._episodes.append(episode)
        return episode

    def merge_from(self, other: "AlertLog") -> None:
        """Fold another log's episodes in, renumbered byte-identically."""
        offset = self._next_id
        room = self.capacity - len(self._episodes)
        for index, episode in enumerate(other._episodes):
            episode.alert_id += offset
            if index < room:
                self._episodes.append(episode)
        self._next_id = offset + other._next_id

    def episodes(
        self,
        slo: str | None = None,
        source: str | None = None,
        fired_only: bool = False,
    ) -> list[AlertEpisode]:
        """Retained episodes in begin order, optionally filtered."""
        selected = []
        for episode in self._episodes:
            if slo is not None and episode.slo != slo:
                continue
            if source is not None and episode.source != source:
                continue
            if fired_only and not episode.fired:
                continue
            selected.append(episode)
        return selected

    @property
    def next_id(self) -> int:
        """Total episodes ever begun."""
        return self._next_id

    @property
    def dropped(self) -> int:
        return self._next_id - len(self._episodes)

    @property
    def fired_count(self) -> int:
        return sum(1 for e in self._episodes if e.fired)

    @property
    def resolved_count(self) -> int:
        return sum(1 for e in self._episodes if e.resolved)

    def __len__(self) -> int:
        return len(self._episodes)

    def __repr__(self) -> str:
        return (
            f"<AlertLog retained={len(self._episodes)}/{self.capacity} "
            f"begun={self._next_id} fired={self.fired_count} "
            f"resolved={self.resolved_count} dropped={self.dropped}>"
        )


class _AlertState:
    """Lifecycle state of one (SLO, rule, source)."""

    __slots__ = ("status", "pending_since", "episode", "span")

    def __init__(self) -> None:
        self.status = _INACTIVE
        self.pending_since = 0.0
        self.episode: AlertEpisode | None = None
        self.span: Span | None = None


class SloEngine:
    """Evaluates SLO specs against the tsdb on a deterministic cadence.

    Stateless with respect to the signals (burn rates are recomputed
    from the store every evaluation) and stateful only for the alert
    lifecycle.  Takes the stores explicitly rather than an
    :class:`~repro.obs.instrument.Instrumentation` to keep the import
    graph acyclic; ``CdnCluster.start_slo`` wires the live bundle in.
    """

    __slots__ = (
        "_tsdb",
        "_metrics",
        "_trace",
        "_spans",
        "_alerts",
        "_specs",
        "_rules",
        "_arm",
        "_window",
        "_states",
        "_m_evals",
        "_g_firing",
        "_burn_gauges",
        "_firing",
    )

    def __init__(
        self,
        tsdb: WindowedStore,
        metrics: MetricsRegistry,
        trace: TraceLog,
        spans: SpanLog,
        alerts: AlertLog,
        *,
        specs: tuple[SloSpec, ...] | None = None,
        rules: tuple[BurnRateRule, ...] | None = None,
        arm: str = "",
        window: float = DEFAULT_SLO_WINDOW,
    ) -> None:
        if window <= 0.0:
            raise ValueError(f"window must be > 0, got {window}")
        self._tsdb = tsdb
        self._metrics = metrics
        self._trace = trace
        self._spans = spans
        self._alerts = alerts
        self._specs = specs if specs is not None else default_slos()
        self._rules = rules if rules is not None else default_burn_rules()
        self._arm = arm
        self._window = window
        self._states: dict[tuple[str, str, str], _AlertState] = {}
        self._m_evals = metrics.counter("slo_evaluations")
        self._g_firing = metrics.gauge("slo_alerts_firing")
        self._burn_gauges: dict[tuple[str, str, str], Gauge] = {}
        self._firing = 0

    @property
    def specs(self) -> tuple[SloSpec, ...]:
        return self._specs

    @property
    def rules(self) -> tuple[BurnRateRule, ...]:
        return self._rules

    @property
    def window(self) -> float:
        return self._window

    def burn_rate(
        self, spec: SloSpec, source: str, now: float, lookback: float
    ) -> float | None:
        """Budget burn over the aligned windows intersecting a lookback.

        Burn 1.0 means the error budget is being spent exactly at the
        sustainable rate; None means no window in the lookback carried
        any signal (no opinion).
        """
        first = max(0, WindowedStore.window_index(now - lookback, self._window))
        last = WindowedStore.window_index(now, self._window)
        bad = 0
        judged = 0
        for index in range(first, last + 1):
            value = spec.signal.value(self._tsdb, source, index, self._window)
            if value is None:
                continue
            judged += 1
            if spec.window_is_bad(value):
                bad += 1
        if judged == 0:
            return None
        return (bad / judged) / spec.objective

    def evaluate(self, now: float) -> None:
        """One deterministic evaluation pass over every spec and source."""
        self._m_evals.inc()
        for spec in self._specs:
            sources = self._tsdb.sources_for(spec.signal.series)
            for source in sources:
                if not source_matches_arm(source, self._arm):
                    continue
                for rule in self._rules:
                    self._evaluate_rule(spec, rule, source, now)
        self._g_firing.set(float(self._firing))

    def _evaluate_rule(
        self, spec: SloSpec, rule: BurnRateRule, source: str, now: float
    ) -> None:
        burn_long = self.burn_rate(spec, source, now, rule.long_window)
        burn_short = self.burn_rate(spec, source, now, rule.short_window)
        condition = (
            burn_long is not None
            and burn_short is not None
            and burn_long >= rule.burn_factor
            and burn_short >= rule.burn_factor
        )
        key = (spec.name, rule.severity, source)
        if burn_long is not None:
            gauge = self._burn_gauges.get(key)
            if gauge is None:
                gauge = self._metrics.gauge(
                    "slo_burn_rate",
                    slo=spec.name,
                    severity=rule.severity,
                    source=source,
                )
                self._burn_gauges[key] = gauge
            gauge.set(round(burn_long, 6))
        state = self._states.get(key)
        if state is None:
            if not condition:
                return
            state = _AlertState()
            self._states[key] = state
        if condition:
            assert burn_long is not None and burn_short is not None
            self._advance(spec, rule, source, state, now, burn_long, burn_short)
        else:
            self._retreat(spec, rule, source, state, now)

    def _advance(
        self,
        spec: SloSpec,
        rule: BurnRateRule,
        source: str,
        state: _AlertState,
        now: float,
        burn_long: float,
        burn_short: float,
    ) -> None:
        if state.status == _INACTIVE:
            state.status = _PENDING
            state.pending_since = now
            state.episode = self._alerts.begin(now, spec.name, rule.severity, source, rule)
            self._trace.record(
                now,
                EventType.ALERT_PENDING,
                source,
                slo=spec.name,
                severity=rule.severity,
                burn_long=round(burn_long, 6),
                burn_short=round(burn_short, 6),
            )
        if state.status == _PENDING and now - state.pending_since >= rule.for_duration:
            state.status = _FIRING
            self._firing += 1
            if state.episode is not None:
                state.episode.firing_at = now
            self._trace.record(
                now,
                EventType.ALERT_FIRING,
                source,
                slo=spec.name,
                severity=rule.severity,
                burn_long=round(burn_long, 6),
                burn_short=round(burn_short, 6),
            )
            state.span = self._spans.begin(
                now,
                f"alert {spec.name}",
                "alert",
                source,
                slo=spec.name,
                severity=rule.severity,
                burn_factor=rule.burn_factor,
            )
        if state.episode is not None:
            state.episode.peak_burn = max(
                state.episode.peak_burn, burn_long, burn_short
            )

    def _retreat(
        self,
        spec: SloSpec,
        rule: BurnRateRule,
        source: str,
        state: _AlertState,
        now: float,
    ) -> None:
        if state.status == _PENDING:
            # A pending alert that clears goes back to inactive silently
            # (the Prometheus lifecycle); the episode records the washout.
            if state.episode is not None:
                state.episode.resolved_at = now
        elif state.status == _FIRING:
            self._firing -= 1
            if state.episode is not None:
                state.episode.resolved_at = now
            self._trace.record(
                now,
                EventType.ALERT_RESOLVED,
                source,
                slo=spec.name,
                severity=rule.severity,
            )
            self._spans.end(state.span, now, resolved=True)
        state.status = _INACTIVE
        state.episode = None
        state.span = None


# ----------------------------------------------------------------------
# Alert report artifact (JSON + markdown)


def build_alert_report(
    alerts: AlertLog,
    specs: tuple[SloSpec, ...] | None = None,
    experiment: str = "",
) -> dict[str, object]:
    """A deterministic, serializable summary of a run's alert activity."""
    if specs is None:
        specs = default_slos()
    episodes = alerts.episodes()
    by_slo: list[dict[str, object]] = []
    for spec in specs:
        mine = [e for e in episodes if e.slo == spec.name]
        by_slo.append(
            {
                "slo": spec.name,
                "description": spec.description,
                "threshold": spec.threshold,
                "objective": spec.objective,
                "episodes": len(mine),
                "fired": sum(1 for e in mine if e.fired),
                "resolved": sum(1 for e in mine if e.resolved),
                "peak_burn": round(max((e.peak_burn for e in mine), default=0.0), 6),
            }
        )
    return {
        "experiment": experiment,
        "slos": by_slo,
        "episodes": [e.to_dict() for e in episodes],
        "counts": {
            "recorded": alerts.next_id,
            "retained": len(alerts),
            "dropped": alerts.dropped,
            "fired": alerts.fired_count,
            "resolved": alerts.resolved_count,
        },
    }


def alert_report_to_json(report: dict[str, object]) -> str:
    return json.dumps(report, indent=2) + "\n"


def alert_report_to_markdown(report: dict[str, object]) -> str:
    """The alert report as a markdown artifact."""
    lines = [f"# SLO alert report — {report['experiment'] or 'run'}", ""]
    lines.append("| SLO | episodes | fired | resolved | peak burn |")
    lines.append("|---|---|---|---|---|")
    slos = report["slos"]
    assert isinstance(slos, list)
    for row in slos:
        lines.append(
            f"| {row['slo']} | {row['episodes']} | {row['fired']} "
            f"| {row['resolved']} | {row['peak_burn']:.2f} |"
        )
    lines.append("")
    lines.append("## Episodes")
    lines.append("")
    episodes = report["episodes"]
    assert isinstance(episodes, list)
    if not episodes:
        lines.append("_No alerts._")
    else:
        lines.append(
            "| id | SLO | severity | source | pending | firing | resolved | peak burn |"
        )
        lines.append("|---|---|---|---|---|---|---|---|")
        for ep in episodes:
            firing = "-" if ep["firing_at"] is None else f"{ep['firing_at']:.1f}"
            resolved = "-" if ep["resolved_at"] is None else f"{ep['resolved_at']:.1f}"
            lines.append(
                f"| {ep['alert_id']} | {ep['slo']} | {ep['severity']} "
                f"| {ep['source']} | {ep['pending_at']:.1f} | {firing} "
                f"| {resolved} | {ep['peak_burn']:.2f} |"
            )
    lines.append("")
    return "\n".join(lines)
