"""Windowed time-series store: aligned sim-time windows over raw samples.

The flow/span/timeline stores answer *forensic* questions after a run;
the SLO engine (:mod:`repro.obs.slo`) needs the *monitoring* shape of
the same data — "what was the p90 / ratio / rate of signal X over the
window ending now?".  :class:`WindowedStore` is the bridge: a bounded,
drop-newest sample log (exactly the :class:`~repro.obs.timeline.Timeline`
retention contract, so ``merge_from`` reproduces a serial run's retained
samples byte-for-byte) with *window-aligned derivations* computed on
read.

Windows are aligned to simulated time zero: sample ``t`` falls in window
``floor(t / window)`` for whatever width the reader chooses.  Aggregates
are always recomputed from the retained samples — never maintained
incrementally — so a parallel merge (which concatenates per-task sample
runs in task order) derives the exact floats a serial run would have.

Within one ``(source, series)`` key samples are kept in append order.
Every producer in the tree is single-writer per key (sources are
arm-qualified), so append order is also time order; ``last``-style
derivations are defined on append order and documented as such.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "TsdbPoint",
    "WindowAggregate",
    "WindowedStore",
]


@dataclass(frozen=True, slots=True)
class TsdbPoint:
    """One raw sample of one series on one source."""

    time: float
    source: str
    series: str
    value: float

    def window(self, width: float) -> int:
        """The aligned window index this sample falls in."""
        return math.floor(self.time / width)


@dataclass(frozen=True, slots=True)
class WindowAggregate:
    """Read-time aggregate of one window of one ``(source, series)``."""

    index: int
    count: int
    total: float
    minimum: float
    maximum: float
    #: Last *recorded* value in the window (append order == time order
    #: for the single-writer keys every producer uses).
    last: float

    @property
    def mean(self) -> float:
        return self.total / self.count


class WindowedStore:
    """Bounded drop-newest sample store with window-aligned readers.

    Mirrors :class:`~repro.obs.timeline.Timeline` retention semantics:
    ``record`` always counts, appends only under capacity, and
    ``merge_from`` appends another store's retained samples in *their*
    recorded order — the order a serial run interleaving the same tasks
    would have produced.
    """

    __slots__ = ("capacity", "_points", "_by_key", "_recorded")

    def __init__(self, capacity: int = 500_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._points: list[TsdbPoint] = []
        self._by_key: dict[tuple[str, str], list[TsdbPoint]] = {}
        self._recorded = 0

    def record(self, time: float, source: str, series: str, value: float) -> None:
        """Record one sample (drop-newest past capacity, still counted)."""
        self._recorded += 1
        if len(self._points) >= self.capacity:
            return
        point = TsdbPoint(time=time, source=source, series=series, value=value)
        self._points.append(point)
        self._by_key.setdefault((source, series), []).append(point)

    def merge_from(self, other: "WindowedStore") -> None:
        """Fold another store's samples into this one, byte-identically."""
        room = self.capacity - len(self._points)
        for point in other._points[:room]:
            self._points.append(point)
            self._by_key.setdefault((point.source, point.series), []).append(point)
        self._recorded += other._recorded

    # ------------------------------------------------------------------
    # Raw readers

    @property
    def recorded(self) -> int:
        """Samples ever recorded, including dropped ones."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Samples recorded past capacity and therefore not retained."""
        return self._recorded - len(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def points(
        self,
        series: str | None = None,
        source: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[TsdbPoint]:
        """Retained samples in recorded order, optionally filtered."""
        selected = []
        for point in self._points:
            if series is not None and point.series != series:
                continue
            if source is not None and point.source != source:
                continue
            if since is not None and point.time < since:
                continue
            if until is not None and point.time > until:
                continue
            selected.append(point)
        return selected

    def series_names(self) -> list[str]:
        """Sorted ``source:series`` names with at least one sample."""
        return sorted(f"{source}:{series}" for source, series in self._by_key)

    def sources_for(self, series: str) -> list[str]:
        """Sorted sources that recorded at least one sample of a series."""
        return sorted(source for source, name in self._by_key if name == series)

    # ------------------------------------------------------------------
    # Window-aligned derivations (window width chosen by the reader)

    @staticmethod
    def window_index(time: float, window: float) -> int:
        """The aligned window index containing a simulated instant."""
        return math.floor(time / window)

    def window_values(
        self, source: str, series: str, index: int, window: float
    ) -> list[float]:
        """Values recorded in one aligned window, in recorded order."""
        run = self._by_key.get((source, series))
        if not run:
            return []
        return [p.value for p in run if p.window(window) == index]

    def aggregate(
        self, source: str, series: str, index: int, window: float
    ) -> WindowAggregate | None:
        """Aggregate one window; None when it holds no samples."""
        values = self.window_values(source, series, index, window)
        if not values:
            return None
        return WindowAggregate(
            index=index,
            count=len(values),
            total=math.fsum(values),
            minimum=min(values),
            maximum=max(values),
            last=values[-1],
        )

    def last(self, source: str, series: str, index: int, window: float) -> float | None:
        """Last recorded value in a window; None when empty."""
        values = self.window_values(source, series, index, window)
        return values[-1] if values else None

    def window_sum(
        self, source: str, series: str, index: int, window: float
    ) -> float | None:
        """Sum of the values in a window; None when empty."""
        values = self.window_values(source, series, index, window)
        return math.fsum(values) if values else None

    def percentile(
        self, source: str, series: str, index: int, window: float, p: float
    ) -> float | None:
        """Nearest-rank percentile of a window's values; None when empty.

        Matches :meth:`repro.obs.metrics.Histogram.percentile` rank
        arithmetic so SLO thresholds and report percentiles agree.
        """
        values = self.window_values(source, series, index, window)
        if not values:
            return None
        values.sort()
        rank = max(0, math.ceil(p / 100.0 * len(values)) - 1)
        return values[min(rank, len(values) - 1)]

    def delta(self, source: str, series: str, index: int, window: float) -> float | None:
        """Change of a cumulative series across one window.

        ``last(index) - last(index - 1)``; None when either window holds
        no sample (no opinion rather than a fabricated zero).
        """
        current = self.last(source, series, index, window)
        if current is None:
            return None
        previous = self.last(source, series, index - 1, window)
        if previous is None:
            return None
        return current - previous

    def rate(self, source: str, series: str, index: int, window: float) -> float | None:
        """Per-second event rate of a window: sum of samples / width."""
        total = self.window_sum(source, series, index, window)
        if total is None:
            return None
        return total / window

    def sum_ratio(
        self,
        source: str,
        numerator: str,
        denominator: str,
        index: int,
        window: float,
        min_denominator: float = 0.0,
    ) -> float | None:
        """Ratio of two series' window sums on one source.

        None when either series has no samples in the window or the
        denominator sum is below ``min_denominator`` (too little signal
        to judge — mirrors the SafetyGuard's ``min_segments`` gate).
        """
        den = self.window_sum(source, denominator, index, window)
        if den is None or den <= 0.0 or den < min_denominator:
            return None
        num = self.window_sum(source, numerator, index, window)
        if num is None:
            return None
        return num / den

    def __repr__(self) -> str:
        return (
            f"<WindowedStore retained={len(self._points)}/{self.capacity} "
            f"series={len(self._by_key)} recorded={self._recorded} "
            f"dropped={self.dropped}>"
        )
