"""Instrumentation wiring: one metrics registry + trace log per run.

Every :class:`~repro.sim.kernel.Simulator` owns an
:class:`Instrumentation` (reachable as ``sim.obs``), and every component
already holds a simulator reference — so the registry threads through
all layers without widening a single constructor.

Experiments frequently build *several* simulators (figure sweeps run one
cluster per arm).  :func:`capture` installs a shared instrumentation for
the duration of a ``with`` block: simulators created inside the block
aggregate into it, which is how ``python -m repro metrics <experiment>``
collects one table across a whole sweep.  Capture contexts nest; outside
any context each simulator gets a private instrumentation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceLog


class Instrumentation:
    """The metrics registry and trace log of one run."""

    def __init__(self, trace_capacity: int = 10_000) -> None:
        self.metrics = MetricsRegistry()
        self.trace = TraceLog(capacity=trace_capacity)

    def __repr__(self) -> str:
        return f"<Instrumentation metrics={len(self.metrics)} trace={len(self.trace)}>"


_active: list[Instrumentation] = []


def active_instrumentation() -> Instrumentation | None:
    """The innermost :func:`capture` context's instrumentation, if any."""
    return _active[-1] if _active else None


def instrumentation_for_new_simulator() -> Instrumentation:
    """What a freshly constructed simulator should attach to."""
    shared = active_instrumentation()
    return shared if shared is not None else Instrumentation()


@contextmanager
def capture(trace_capacity: int = 10_000) -> Iterator[Instrumentation]:
    """Aggregate all simulators created in the block into one instrumentation."""
    instrumentation = Instrumentation(trace_capacity=trace_capacity)
    _active.append(instrumentation)
    try:
        yield instrumentation
    finally:
        _active.remove(instrumentation)
