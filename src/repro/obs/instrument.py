"""Instrumentation wiring: one metrics registry + trace log per run.

Every :class:`~repro.sim.kernel.Simulator` owns an
:class:`Instrumentation` (reachable as ``sim.obs``), and every component
already holds a simulator reference — so the registry threads through
all layers without widening a single constructor.

Experiments frequently build *several* simulators (figure sweeps run one
cluster per arm).  :func:`capture` installs a shared instrumentation for
the duration of a ``with`` block: simulators created inside the block
aggregate into it, which is how ``python -m repro metrics <experiment>``
collects one table across a whole sweep.  Capture contexts nest; outside
any context each simulator gets a private instrumentation.

Two additions serve the performance and parallelism work:

* :func:`disabled` installs an instrumentation whose ``enabled`` flag is
  False.  Hot paths (the kernel run loop, per-packet link counters, the
  TCP trace points) check the flag once at construction and skip metric
  work entirely — a true no-op fast path for benchmarking and for bulk
  sweeps that only consume experiment results.
* :meth:`Instrumentation.merge_from` folds another run's metrics and
  trace into this one, in a way that is byte-identical to having run the
  two workloads serially under one capture.  The parallel executor
  (:mod:`repro.parallel`) uses it to merge worker output back into the
  parent registry, in deterministic task order.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterator

from repro.obs.flow import FlowLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import AlertLog
from repro.obs.span import SpanLog
from repro.obs.timeline import Timeline
from repro.obs.trace import TraceLog
from repro.obs.tsdb import WindowedStore


class Instrumentation:
    """The metrics, traces, flows, spans, timeline and tsdb of one run."""

    def __init__(
        self,
        trace_capacity: int = 10_000,
        enabled: bool = True,
        flow_capacity: int = 100_000,
        span_capacity: int = 200_000,
        timeline_capacity: int = 200_000,
        tsdb_capacity: int = 500_000,
        alert_capacity: int = 50_000,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.trace = TraceLog(capacity=trace_capacity)
        self.flows = FlowLog(capacity=flow_capacity)
        self.spans = SpanLog(capacity=span_capacity)
        self.timeline = Timeline(capacity=timeline_capacity)
        self.tsdb = WindowedStore(capacity=tsdb_capacity)
        self.alerts = AlertLog(capacity=alert_capacity)
        #: When False, components skip instrumentation on their hot paths.
        #: The registry still works (handles can be created and read) so
        #: nothing needs to special-case a disabled run.
        self.enabled = enabled

    def merge_from(self, other: "Instrumentation") -> None:
        """Fold another run's measurements into this one.

        Counters add, gauges adopt the other run's last write (tracking
        the combined high-water mark), histograms merge their samples,
        trace events append in order, and flow/span/timeline stores
        append with dense-id renumbering — the same end state a serial
        execution of both workloads under one capture would produce.
        """
        self.metrics.merge_from(other.metrics)
        self.trace.merge_from(other.trace)
        self.flows.merge_from(other.flows)
        self.spans.merge_from(other.spans)
        self.timeline.merge_from(other.timeline)
        self.tsdb.merge_from(other.tsdb)
        self.alerts.merge_from(other.alerts)

    def __repr__(self) -> str:
        state = "" if self.enabled else " disabled"
        return (
            f"<Instrumentation metrics={len(self.metrics)} "
            f"trace={len(self.trace)} flows={len(self.flows)} "
            f"spans={len(self.spans)}{state}>"
        )


_active: list[Instrumentation] = []


def active_instrumentation() -> Instrumentation | None:
    """The innermost :func:`capture` context's instrumentation, if any."""
    return _active[-1] if _active else None


def instrumentation_for_new_simulator() -> Instrumentation:
    """What a freshly constructed simulator should attach to."""
    shared = active_instrumentation()
    return shared if shared is not None else Instrumentation()


@contextmanager
def capture(trace_capacity: int = 10_000, **capacities: int) -> Iterator[Instrumentation]:
    """Aggregate all simulators created in the block into one instrumentation."""
    instrumentation = Instrumentation(trace_capacity=trace_capacity, **capacities)
    _active.append(instrumentation)
    try:
        yield instrumentation
    finally:
        _active.remove(instrumentation)


@contextmanager
def disabled() -> Iterator[Instrumentation]:
    """Run the block with instrumentation off for new simulators.

    Simulators created inside the block attach to a shared instrumentation
    whose ``enabled`` flag is False; their hot paths do no metric or trace
    work at all.  Used by ``python -m repro bench`` to measure the raw
    kernel rate, and available to bulk sweeps that only need results.
    """
    instrumentation = Instrumentation(enabled=False)
    _active.append(instrumentation)
    try:
        yield instrumentation
    finally:
        _active.remove(instrumentation)
