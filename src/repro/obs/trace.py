"""Structured trace of typed events.

Where the metrics registry answers "how many / how large", the trace log
answers "what happened, when, where": each record is one discrete system
event — a route installed, an RTO fired, a connection opened at IW=N —
with its simulation time, its source component, and typed detail fields.

The log is a bounded ring (old events fall off) so long simulations do
not accumulate unbounded state, but *totals per event type* are counted
separately and never truncate — the auditor and the CLI metric readout
rely on those totals.
"""

from __future__ import annotations

import enum
from collections import Counter as TallyCounter
from collections import deque
from dataclasses import dataclass, field


class EventType(enum.Enum):
    """The typed events the reproduction traces."""

    ROUTE_INSTALLED = "route_installed"
    ROUTE_WITHDRAWN = "route_withdrawn"
    ROUTE_EXPIRED = "route_expired"
    ADVISORY_START = "advisory_start"
    ADVISORY_END = "advisory_end"
    RTO_FIRED = "rto_fired"
    FAST_RETRANSMIT = "fast_retransmit"
    CONN_OPENED = "conn_opened"
    AUDIT_DIVERGENCE = "audit_divergence"
    FAULT_INJECTED = "fault_injected"
    FAULT_CLEARED = "fault_cleared"
    TOOL_ERROR = "tool_error"
    AGENT_CRASHED = "agent_crashed"
    AGENT_RESTARTED = "agent_restarted"
    GUARD_TRIPPED = "guard_tripped"
    GUARD_RELEASED = "guard_released"
    ALERT_PENDING = "alert_pending"
    ALERT_FIRING = "alert_firing"
    ALERT_RESOLVED = "alert_resolved"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    type: EventType
    source: str
    details: tuple[tuple[str, object], ...] = ()

    def detail(self, key: str, default: object = None) -> object:
        for k, v in self.details:
            if k == key:
                return v
        return default

    def format(self) -> str:
        detail_text = " ".join(f"{k}={v}" for k, v in self.details)
        return f"[{self.time:.6f}] {self.type.value} {self.source} {detail_text}".rstrip()


@dataclass
class TraceLog:
    """Bounded ring of :class:`TraceEvent` with untruncated type totals."""

    capacity: int = 10_000
    _events: deque[TraceEvent] = field(default_factory=deque, repr=False)
    _totals: TallyCounter[EventType] = field(default_factory=TallyCounter, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self._events = deque(maxlen=self.capacity)

    def record(
        self, time: float, type: EventType, source: str, **details: object
    ) -> TraceEvent:
        """Append one event (oldest events fall off past ``capacity``)."""
        event = TraceEvent(
            time=time, type=type, source=source, details=tuple(details.items())
        )
        self._events.append(event)
        self._totals[type] += 1
        return event

    def merge_from(self, other: "TraceLog") -> None:
        """Append another log's retained events and add its totals.

        Appending respects this ring's capacity (old events fall off),
        which matches what recording the other log's stream directly into
        this one would have retained.
        """
        self._events.extend(other._events)
        self._totals.update(other._totals)

    def events(
        self,
        type: EventType | None = None,
        source: str | None = None,
        since: float | None = None,
    ) -> list[TraceEvent]:
        """Retained events, optionally filtered by type/source/time."""
        selected = []
        for event in self._events:
            if type is not None and event.type is not type:
                continue
            if source is not None and event.source != source:
                continue
            if since is not None and event.time < since:
                continue
            selected.append(event)
        return selected

    def count(self, type: EventType) -> int:
        """Total events of one type ever recorded (not ring-limited)."""
        return self._totals[type]

    def totals(self) -> dict[EventType, int]:
        """Total events per type ever recorded (not ring-limited)."""
        return dict(self._totals)

    @property
    def recorded(self) -> int:
        """Total events ever recorded, across all types (not ring-limited)."""
        return sum(self._totals.values())

    @property
    def dropped(self) -> int:
        """Events that fell off the ring (recorded minus retained).

        The per-type totals never truncate, so this is exact; a non-zero
        value means :meth:`events` is a *suffix* of the run, not the
        whole story — ``repro metrics`` warns when that happens.
        """
        return self.recorded - len(self._events)

    def last(self, type: EventType | None = None) -> TraceEvent | None:
        """Most recent retained event (of one type, when given)."""
        if type is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.type is type:
                return event
        return None

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"<TraceLog retained={len(self._events)}/{self.capacity} "
            f"recorded={self.recorded} dropped={self.dropped}>"
        )
