"""Per-connection flow records (the NetFlow-style accounting layer).

Where the trace log records discrete events and the metrics registry
aggregates, a :class:`FlowRecord` is the forensic unit the paper's
argument turns on: one structured record per TCP connection, joining the
initial congestion window a connection *started* with (and whether that
window came from a Riptide-learned route), the handshake RTT it paid,
when and at what window it left slow start, how many recovery episodes
it suffered, and how it ended.  ``repro.obs.report`` joins these records
against probe spans and route/guard/fault traces to answer "why was
*this* probe slow?".

Records are emitted by :class:`~repro.tcp.socket.TcpSocket` (creation,
establishment, slow-start exit, teardown) and collected on the run's
:class:`~repro.obs.instrument.Instrumentation`.  The log is bounded
drop-*newest*: once ``capacity`` records are retained, later flows are
counted in ``dropped`` but not stored, so a serial run and a merged
parallel run retain exactly the same prefix of flows (see
:meth:`FlowLog.merge_from`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class FlowRecord:
    """One TCP connection's life, as a structured record.

    Mutable by design: the owning socket fills fields in as the
    connection progresses; ``final_state``/``closed_at`` and the counter
    snapshot land at teardown.  Flows still open when a run ends keep
    ``final_state="open"`` with counters as of the last sync (see
    :meth:`~repro.tcp.socket.TcpSocket.sync_flow`).
    """

    flow_id: int
    #: Host name of the endpoint that owns this record (one record per
    #: socket, so every connection appears twice — once per side).
    host: str
    local: str
    local_port: int
    remote: str
    remote_port: int
    opened_at: float
    is_client: bool
    #: The initial congestion window this side sends with, and where it
    #: came from: ``"route"`` (a learned/installed route), ``"hook"``
    #: (an in-kernel resolver) or ``"default"`` (the sysctl default).
    initial_cwnd: int = 0
    cwnd_source: str = "default"
    established_at: float | None = None
    #: Handshake time: first SYN (socket creation) to ESTABLISHED.
    syn_rtt: float | None = None
    #: First exit from slow start (loss or cwnd >= ssthresh), and the
    #: window in segments at that moment — the paper's "transfers die
    #: inside slow start" observation made measurable per flow.
    ss_exit_at: float | None = None
    ss_exit_cwnd: int | None = None
    closed_at: float | None = None
    #: TCP state when the socket tore down; ``"open"`` while alive.
    final_state: str = "open"
    error: str | None = None
    rtos: int = 0
    fast_retransmits: int = 0
    bytes_acked: int = 0
    bytes_received: int = 0
    segments_sent: int = 0
    segments_retransmitted: int = 0

    def to_dict(self) -> dict[str, object]:
        """Stable-ordered plain dict (the JSONL/JSON export shape)."""
        return {
            "flow_id": self.flow_id,
            "host": self.host,
            "local": self.local,
            "local_port": self.local_port,
            "remote": self.remote,
            "remote_port": self.remote_port,
            "opened_at": self.opened_at,
            "is_client": self.is_client,
            "initial_cwnd": self.initial_cwnd,
            "cwnd_source": self.cwnd_source,
            "established_at": self.established_at,
            "syn_rtt": self.syn_rtt,
            "ss_exit_at": self.ss_exit_at,
            "ss_exit_cwnd": self.ss_exit_cwnd,
            "closed_at": self.closed_at,
            "final_state": self.final_state,
            "error": self.error,
            "rtos": self.rtos,
            "fast_retransmits": self.fast_retransmits,
            "bytes_acked": self.bytes_acked,
            "bytes_received": self.bytes_received,
            "segments_sent": self.segments_sent,
            "segments_retransmitted": self.segments_retransmitted,
        }


class FlowLog:
    """All flow records of one run, bounded drop-newest.

    Flow ids are dense (0, 1, 2, ...) in begin order and keep counting
    past capacity, so ``next_id`` is the total number of flows ever
    begun and ``dropped`` falls out as ``next_id - retained``.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: list[FlowRecord] = []
        self._next_id = 0

    def begin(
        self,
        host: str,
        local: str,
        local_port: int,
        remote: str,
        remote_port: int,
        opened_at: float,
        is_client: bool,
        initial_cwnd: int,
        cwnd_source: str,
    ) -> FlowRecord | None:
        """Open a record for a new connection.

        Returns None past capacity (the flow is counted, not stored);
        callers must tolerate a None handle.
        """
        flow_id = self._next_id
        self._next_id += 1
        if len(self._records) >= self.capacity:
            return None
        record = FlowRecord(
            flow_id=flow_id,
            host=host,
            local=local,
            local_port=local_port,
            remote=remote,
            remote_port=remote_port,
            opened_at=opened_at,
            is_client=is_client,
            initial_cwnd=initial_cwnd,
            cwnd_source=cwnd_source,
        )
        self._records.append(record)
        return record

    def merge_from(self, other: "FlowLog") -> None:
        """Fold another log's flows into this one, byte-identically.

        The other log's ids are renumbered by this log's ``next_id``
        offset, reproducing the dense ids a serial run recording both
        workloads in task order would have assigned; its retained
        records append until this log's capacity, so the retained prefix
        (and the dropped count) also match the serial run exactly.
        """
        offset = self._next_id
        room = self.capacity - len(self._records)
        for index, record in enumerate(other._records):
            record.flow_id += offset
            if index < room:
                self._records.append(record)
        self._next_id = offset + other._next_id

    @property
    def next_id(self) -> int:
        """Total flows ever begun (dense ids make this the next id)."""
        return self._next_id

    @property
    def dropped(self) -> int:
        """Flows begun past capacity and therefore not retained."""
        return self._next_id - len(self._records)

    def records(
        self,
        host: str | None = None,
        is_client: bool | None = None,
        open_only: bool = False,
        since: float | None = None,
        until: float | None = None,
    ) -> list[FlowRecord]:
        """Retained records, optionally filtered.

        ``since``/``until`` select flows whose lifetime overlaps the
        closed sim-time window ``[since, until]``; a still-open flow
        extends to the end of the run.
        """
        selected = []
        for record in self._records:
            if host is not None and record.host != host:
                continue
            if is_client is not None and record.is_client != is_client:
                continue
            if open_only and record.closed_at is not None:
                continue
            if until is not None and record.opened_at > until:
                continue
            if (
                since is not None
                and record.closed_at is not None
                and record.closed_at < since
            ):
                continue
            selected.append(record)
        return selected

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"<FlowLog retained={len(self._records)}/{self.capacity} "
            f"begun={self._next_id} dropped={self.dropped}>"
        )
