"""The tail-latency attribution report.

The paper's promise is a better *tail*: probes that used to crawl
through slow start finish fast once the route is learned.  When a probe
in the reproduction still lands above the p90, this module answers the
operator's next question — *why this one?* — by joining the probe's span
against the server-side flow record that carried its data, the
guard/route trace, and the fault-injection spans, and assigning exactly
one cause:

``guard_withdrawal``
    A safety-guard hold covering the probe's client prefix was in force
    on a destination-PoP host during the transfer: the learned window
    was deliberately withdrawn, so the probe ran at the kernel default.
``route_not_yet_learned``
    The probe opened a new connection whose server-side socket resolved
    its initial window from the sysctl default — Riptide had not (yet)
    installed a route for the client's prefix.
``loss_storm``
    An injected loss storm window overlapped the transfer on the
    probe's source or destination PoP.
``rto_stall``
    The carrying connection suffered retransmission timeouts or fast
    retransmits during the transfer window.
``genuinely_fast_path``
    None of the above: the probe is in the tail because its path is
    long (the >150ms bucket dominates every tail), not because
    anything went wrong.

Causes are assigned in that priority order, so every above-threshold
probe gets exactly one.  The report is a plain dict built in
deterministic order — ``report_to_json`` output is byte-identical
between a serial run and a merged parallel run of the same experiment.
"""

from __future__ import annotations

import json
from typing import Any

from repro.net.addresses import AddressError, Prefix
from repro.obs.flow import FlowRecord
from repro.obs.instrument import Instrumentation
from repro.obs.slo import AlertEpisode, source_matches_arm
from repro.obs.span import Span
from repro.obs.trace import EventType, TraceEvent

#: The attribution taxonomy, in assignment priority order.
ATTRIBUTION_CAUSES = (
    "guard_withdrawal",
    "route_not_yet_learned",
    "loss_storm",
    "rto_stall",
    "genuinely_fast_path",
)

#: Tail threshold: probes strictly above this percentile get a cause.
TAIL_PERCENTILE = 90.0


def _nearest_rank(sorted_values: list[float], p: float) -> float:
    rank = max(0, min(len(sorted_values) - 1, round(p / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[rank]


def _host_in_arm(host: str, arm: str) -> bool:
    """Does a host name belong to the given experiment arm?

    Paired studies prefix host names with their cluster label
    (``riptide:LHR-0``); single-cluster runs use bare names and an
    empty arm tag.
    """
    if arm:
        return host.startswith(arm + ":")
    return ":" not in host


def _host_pop(host: str) -> str:
    """The PoP code of a (possibly arm-prefixed) ``CODE-index`` host name."""
    bare = host.rsplit(":", 1)[-1]
    return bare.rsplit("-", 1)[0]


def _overlaps(span: Span, begin: float, end: float) -> bool:
    return span.begin <= end and (span.end is None or span.end >= begin)


def build_report(
    instrumentation: Instrumentation,
    experiment: str = "",
    since: float | None = None,
    until: float | None = None,
) -> dict[str, Any]:
    """Join probe spans, flow records and traces into the attribution report.

    ``since``/``until`` restrict the attribution to probes whose span
    overlaps the closed sim-time window ``[since, until]`` — the tail
    thresholds, cause counts and slow-probe list are all computed over
    the window's probes only.  Store-level counts (flows/trace/timeline/
    alerts) always describe the whole run.
    """
    spans = instrumentation.spans
    flows = instrumentation.flows
    trace = instrumentation.trace
    timeline = instrumentation.timeline
    alerts = instrumentation.alerts

    probe_spans = spans.spans(category="probe")
    guard_spans = spans.spans(category="guard")
    fault_spans = spans.spans(category="fault")

    completed = [
        span
        for span in probe_spans
        if span.end is not None
        and span.detail("completed") is True
        and (until is None or span.begin <= until)
        and (since is None or span.end >= since)
    ]
    failed = sum(
        1
        for span in probe_spans
        if span.end is not None and span.detail("completed") is not True
    )
    still_open = sum(1 for span in probe_spans if span.end is None)

    # Server-side flow index: (server addr, client addr, client port) is
    # the join key a probe span carries; arm membership disambiguates the
    # control and Riptide clusters of a paired study, which share the
    # same address plan and ephemeral-port sequences.
    flow_index: dict[tuple[str, str, object], list[FlowRecord]] = {}
    for record in flows.records(is_client=False):
        key = (record.local, record.remote, record.remote_port)
        flow_index.setdefault(key, []).append(record)

    # RTO / fast-retransmit evidence, keyed for both ends of a flow.
    loss_events = [
        event
        for event in trace.events()
        if event.type in (EventType.RTO_FIRED, EventType.FAST_RETRANSMIT)
    ]

    arms = sorted({str(span.detail("arm", "")) for span in completed})
    arm_stats: dict[str, dict[str, float]] = {}
    slow_by_arm: dict[str, list[Span]] = {}
    for arm in arms:
        durations = sorted(
            span.duration for span in completed if span.detail("arm", "") == arm
        )
        threshold = _nearest_rank(durations, TAIL_PERCENTILE)
        slow = [
            span
            for span in completed
            if span.detail("arm", "") == arm and span.duration > threshold
        ]
        arm_stats[arm] = {
            "completed": len(durations),
            "p90_threshold": threshold,
            "slow": len(slow),
        }
        slow_by_arm[arm] = slow

    fired_episodes = alerts.episodes(fired_only=True)
    cause_counts = {cause: 0 for cause in ATTRIBUTION_CAUSES}
    slow_probes: list[dict[str, Any]] = []
    for arm in arms:
        for span in slow_by_arm[arm]:
            entry = _attribute(
                span,
                arm,
                flow_index,
                guard_spans,
                fault_spans,
                loss_events,
                fired_episodes,
            )
            cause_counts[entry["cause"]] += 1
            slow_probes.append(entry)

    closed_flows = sum(
        1 for record in flows.records() if record.closed_at is not None
    )
    by_source: dict[str, int] = {}
    for record in flows.records():
        by_source[record.cwnd_source] = by_source.get(record.cwnd_source, 0) + 1

    report: dict[str, Any] = {
        "experiment": experiment,
        "probes": {
            "total": len(probe_spans),
            "completed": len(completed),
            "failed": failed,
            "incomplete": still_open,
        },
        "arms": arm_stats,
        "causes": cause_counts,
        "slow_probes": slow_probes,
        "flows": {
            "recorded": flows.next_id,
            "retained": len(flows),
            "dropped": flows.dropped,
            "closed": closed_flows,
            "open": len(flows) - closed_flows,
            "by_cwnd_source": {key: by_source[key] for key in sorted(by_source)},
        },
        "trace": {
            "recorded": trace.recorded,
            "retained": len(trace),
            "dropped": trace.dropped,
        },
        "timeline": {
            "recorded": timeline.recorded,
            "retained": len(timeline),
            "dropped": timeline.dropped,
            "series": len(timeline.series_names()),
        },
        "alerts": {
            "recorded": alerts.next_id,
            "retained": len(alerts),
            "dropped": alerts.dropped,
            "fired": alerts.fired_count,
            "resolved": alerts.resolved_count,
        },
    }
    if since is not None or until is not None:
        report["window"] = {"since": since, "until": until}
    return report


def _attribute(
    span: Span,
    arm: str,
    flow_index: dict[tuple[str, str, object], list[FlowRecord]],
    guard_spans: list[Span],
    fault_spans: list[Span],
    loss_events: list[TraceEvent],
    fired_episodes: list[AlertEpisode],
) -> dict[str, Any]:
    begin, end = span.begin, span.end
    client = str(span.detail("client", ""))
    dest = str(span.detail("dest", ""))
    client_port = span.detail("client_port", 0)
    src_pop = str(span.detail("src_pop", ""))
    dst_pop = str(span.detail("dst_pop", ""))

    server_flow = None
    for record in flow_index.get((dest, client, client_port), []):
        if _host_in_arm(record.host, arm) and record.opened_at <= end:
            server_flow = record

    cause = "genuinely_fast_path"
    evidence: dict[str, Any] = {}

    guard = _covering_guard(guard_spans, arm, dst_pop, client, begin, end)
    if guard is not None:
        cause = "guard_withdrawal"
        evidence = {
            "guard_host": guard.source,
            "guard_destination": str(guard.detail("destination", "")),
            "guard_reason": str(guard.detail("reason", "")),
            "guard_begin": guard.begin,
        }
    elif (
        arm != "control"
        and span.detail("new_connection") is True
        and server_flow is not None
        and server_flow.cwnd_source == "default"
    ):
        cause = "route_not_yet_learned"
        evidence = {
            "server_host": server_flow.host,
            "server_initial_cwnd": server_flow.initial_cwnd,
        }
    else:
        storm = _covering_storm(fault_spans, src_pop, dst_pop, begin, end)
        if storm is not None:
            cause = "loss_storm"
            evidence = {"fault": storm.name, "fault_begin": storm.begin}
        else:
            rtos, rexmits = _loss_episodes(
                loss_events, span, server_flow, client_port, dest, begin, end
            )
            if rtos or rexmits:
                cause = "rto_stall"
                evidence = {"rtos": rtos, "fast_retransmits": rexmits}

    entry = {
        "span_id": span.span_id,
        "arm": arm,
        "src_pop": src_pop,
        "dst_pop": dst_pop,
        "size": span.detail("size", 0),
        "bucket": str(span.detail("bucket", "")),
        "begin": begin,
        "duration": span.duration,
        "new_connection": span.detail("new_connection") is True,
        "cwnd_source": str(span.detail("cwnd_source", "default")),
        "cause": cause,
        "evidence": evidence,
        # Cross-link: SLO alerts firing in this probe's arm while it ran.
        # An episode's firing interval is [firing_at, resolved_at] (open
        # to the end of the run when never resolved).
        "alerts_active": [
            {
                "alert_id": episode.alert_id,
                "slo": episode.slo,
                "severity": episode.severity,
                "source": episode.source,
            }
            for episode in fired_episodes
            if source_matches_arm(episode.source, arm)
            and episode.firing_at is not None
            and episode.firing_at <= end
            and (episode.resolved_at is None or episode.resolved_at >= begin)
        ],
    }
    if server_flow is not None:
        entry["server_flow_id"] = server_flow.flow_id
        entry["server_cwnd_source"] = server_flow.cwnd_source
    return entry


def _covering_guard(
    guard_spans: list[Span],
    arm: str,
    dst_pop: str,
    client: str,
    begin: float,
    end: float,
) -> Span | None:
    """A guard hold on a destination-PoP host covering the client's prefix."""
    for guard in guard_spans:
        if not _overlaps(guard, begin, end):
            continue
        if not _host_in_arm(guard.source, arm):
            continue
        if _host_pop(guard.source) != dst_pop:
            continue
        destination = guard.detail("destination")
        if destination is None:
            continue
        try:
            prefix = Prefix.parse(str(destination))
        except AddressError:
            continue
        if prefix.contains(client):
            return guard
    return None


def _covering_storm(
    fault_spans: list[Span],
    src_pop: str,
    dst_pop: str,
    begin: float,
    end: float,
) -> Span | None:
    for fault in fault_spans:
        if fault.detail("kind") != "loss_storm":
            continue
        if not _overlaps(fault, begin, end):
            continue
        pop = fault.detail("pop")
        if pop is None or pop in (src_pop, dst_pop):
            return fault
    return None


def _loss_episodes(
    loss_events: list[TraceEvent],
    span: Span,
    server_flow: FlowRecord | None,
    client_port: object,
    dest: str,
    begin: float,
    end: float,
) -> tuple[int, int]:
    """Count RTO / fast-retransmit episodes touching the probe's flow."""
    rtos = 0
    rexmits = 0
    for event in loss_events:
        if not begin <= event.time <= end:
            continue
        on_server = (
            server_flow is not None
            and event.source == server_flow.host
            and event.detail("remote") == server_flow.remote
            and event.detail("remote_port") == server_flow.remote_port
        )
        on_client = (
            event.source == span.source
            and event.detail("remote") == dest
            and event.detail("port") == client_port
        )
        if not (on_server or on_client):
            continue
        if event.type is EventType.RTO_FIRED:
            rtos += 1
        else:
            rexmits += 1
    return rtos, rexmits


def render_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`build_report` output."""
    lines: list[str] = []
    title = report.get("experiment") or "run"
    lines.append(f"Tail-latency attribution: {title}")
    window = report.get("window")
    if window is not None:
        since = window["since"]
        until = window["until"]
        lines.append(
            "window: "
            f"[{since if since is not None else 'start'}, "
            f"{until if until is not None else 'end'}]s sim time"
        )
    probes = report["probes"]
    lines.append(
        f"probes: {probes['total']} issued, {probes['completed']} completed, "
        f"{probes['failed']} failed, {probes['incomplete']} incomplete"
    )
    for arm, stats in report["arms"].items():
        label = arm or "(unlabelled)"
        lines.append(
            f"  arm {label}: {stats['completed']} completed, "
            f"p90={stats['p90_threshold'] * 1000:.0f}ms, "
            f"{stats['slow']} above"
        )
    lines.append("causes (probes above their arm's p90):")
    for cause in ATTRIBUTION_CAUSES:
        lines.append(f"  {cause:<24} {report['causes'][cause]}")
    slow = report["slow_probes"]
    if slow:
        lines.append("slowest attributed probes:")
        for entry in sorted(slow, key=lambda e: -e["duration"])[:10]:
            active = entry.get("alerts_active", ())
            alert_tag = (
                "  [alerts: "
                + ", ".join(
                    f"{a['slo']}/{a['severity']}" for a in active
                )
                + "]"
                if active
                else ""
            )
            lines.append(
                f"  [{entry['arm'] or '-'}] {entry['src_pop']}->{entry['dst_pop']} "
                f"{entry['size'] // 1000}KB {entry['duration'] * 1000:.0f}ms "
                f"({'new' if entry['new_connection'] else 'reused'}, "
                f"{entry['cwnd_source']}) -> {entry['cause']}{alert_tag}"
            )
    flows = report["flows"]
    lines.append(
        f"flows: {flows['recorded']} recorded ({flows['dropped']} dropped), "
        f"{flows['closed']} closed / {flows['open']} open; by cwnd source: "
        + ", ".join(f"{k}={v}" for k, v in flows["by_cwnd_source"].items())
    )
    trace = report["trace"]
    if trace["dropped"]:
        lines.append(
            f"WARNING: trace ring dropped {trace['dropped']} of "
            f"{trace['recorded']} events; attribution joins may be partial "
            f"(raise capture(trace_capacity=...))"
        )
    timeline = report["timeline"]
    lines.append(
        f"timeline: {timeline['retained']} points over "
        f"{timeline['series']} series"
    )
    alerts = report.get("alerts")
    if alerts is not None:
        lines.append(
            f"alerts: {alerts['recorded']} episodes "
            f"({alerts['fired']} fired, {alerts['resolved']} resolved, "
            f"{alerts['dropped']} dropped)"
        )
    return "\n".join(lines)


def report_to_json(report: dict[str, Any]) -> str:
    """The report as deterministic, indented JSON."""
    return json.dumps(report, indent=2)
