"""The window-decision protocol behind :class:`RiptideAgent`.

Riptide's contribution is one *policy* for choosing initial congestion
windows; the agent's poll/install machinery (``ss`` polling, route
programming, TTL sweep, safety guard) is policy-agnostic.  This module
extracts the decision step of Algorithm 1 behind a small protocol so
the same agent can run the paper's EWMA learner or any competitor from
the zoo (:mod:`repro.policy.zoo`, :mod:`repro.policy.learners`,
:mod:`repro.policy.tunable`).

A policy sees exactly what the agent's decision step saw before the
refactor: the destination key, this tick's grouped observations, and
the simulation clock.  It returns the *raw* (pre-clamp) window; the
agent clamps to ``[c_min, c_max]`` and applies advisory scaling via
:func:`finalize_window` so every policy inherits the paper's safety
rails identically.

Lifecycle hooks mirror the agent's route lifecycle: :meth:`~WindowPolicy.
forget` on TTL expiry, :meth:`~WindowPolicy.on_guard_trip` when the
safety guard reverts a destination, :meth:`~WindowPolicy.reset` on
agent stop/crash.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.core.combiners import Observation
from repro.net.addresses import Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.config import RiptideConfig


class WindowPolicy(ABC):
    """One strategy for choosing a destination's initial window."""

    #: Registry name; also the ``policy`` label on decision metrics.
    name = "abstract"

    @abstractmethod
    def decide(
        self, destination: Prefix, samples: list[Observation], now: float
    ) -> float:
        """Return the raw window for ``destination`` given this tick's
        observations.  ``samples`` is non-empty; the caller clamps."""

    def forget(self, destination: Prefix) -> None:
        """Drop all state for ``destination`` (route TTL expiry)."""

    def on_guard_trip(self, destination: Prefix, reason: str, now: float) -> None:
        """The safety guard reverted ``destination`` to the kernel
        default.  The default reaction matches the pre-refactor agent:
        forget the destination so relearning starts from scratch."""
        self.forget(destination)

    def reset(self) -> None:
        """Drop all state (agent stop with route removal, or crash)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name}>"


def finalize_window(
    config: "RiptideConfig", final: float, advisory_scale: float
) -> tuple[int, str | None]:
    """Clamp a policy's raw window and apply advisory scaling.

    Returns ``(window, bound)`` where ``bound`` names the clamp bound
    the raw value violated (``"c_min"``/``"c_max"``) or ``None``.
    Advisories scale the *clamped* window (flooring at ``c_min``) so an
    operator halving windows actually halves them even when the raw
    value sits above ``c_max`` — the exact arithmetic of the
    pre-refactor ``RiptideAgent._tick``.
    """
    bound: str | None = None
    if final > config.c_max:
        bound = "c_max"
    elif final < config.c_min:
        bound = "c_min"
    window = config.clamp(final)
    if advisory_scale < 1.0:
        window = max(config.c_min, round(window * advisory_scale))
    return window, bound
