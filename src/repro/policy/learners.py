"""Learning policies: the paper's EWMA pipeline and two variants.

:class:`EwmaPolicy` is the pre-refactor agent decision step moved
verbatim behind the :class:`~repro.policy.base.WindowPolicy` protocol —
combiner, history smoothing and optional trend detection in the same
order with the same arithmetic, so paired probe studies stay
bit-identical.

:class:`PercentilePolicy` replaces the mean-of-means with a
per-destination percentile of the sampled windows: a p90 learner jumps
to what the *fast* connections achieved instead of averaging them with
the stragglers.

:class:`RttClassPolicy` keeps the EWMA learner but makes ``c_max``
RTT-class-aware: short paths (where an oversized initial window dumps
a burst into a shallow pipe) get a tighter cap than long fat paths,
using the smoothed RTT observed on the destination's own connections.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.core.combiners import Combiner, Observation, make_combiner
from repro.core.history import HistoryPolicy, make_history_policy
from repro.core.trend import TrendDetector
from repro.net.addresses import Prefix
from repro.policy.base import WindowPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.config import RiptideConfig


def _make_trend(config: "RiptideConfig") -> TrendDetector | None:
    if not config.trend_detection:
        return None
    return TrendDetector(
        drop_threshold=config.trend_drop_threshold,
        penalty=config.trend_penalty,
        hold=config.trend_hold,
    )


class EwmaPolicy(WindowPolicy):
    """The paper's learner: combiner -> history EWMA -> trend penalty."""

    name = "ewma"

    def __init__(self, config: "RiptideConfig") -> None:
        self._config = config
        self._combiner: Combiner = make_combiner(config.combiner)
        self._history: HistoryPolicy = make_history_policy(
            config.history, config.alpha, config.history_window
        )
        #: Exposed for introspection (``RiptideAgent.trend_detector``).
        self.trend: TrendDetector | None = _make_trend(config)

    def decide(
        self, destination: Prefix, samples: list[Observation], now: float
    ) -> float:
        candidate = self._combiner.combine(samples)
        final = self._history.update(destination, candidate)
        if self.trend is not None:
            final *= self.trend.observe(destination, candidate, now)
        return final

    def forget(self, destination: Prefix) -> None:
        self._history.forget(destination)
        if self.trend is not None:
            self.trend.forget(destination)

    def reset(self) -> None:
        self._history = make_history_policy(
            self._config.history, self._config.alpha, self._config.history_window
        )
        self.trend = _make_trend(self._config)


class PercentilePolicy(WindowPolicy):
    """Per-destination nearest-rank percentile of sampled windows."""

    #: Samples retained per destination (a few polls' worth of sockets).
    SAMPLE_WINDOW = 64

    def __init__(self, percentile: float, sample_window: int | None = None) -> None:
        if not 0.0 < percentile <= 100.0:
            raise ValueError(
                f"percentile must be in (0, 100], got {percentile}"
            )
        self.percentile = percentile
        self.sample_window = (
            sample_window if sample_window is not None else self.SAMPLE_WINDOW
        )
        if self.sample_window < 1:
            raise ValueError(
                f"sample_window must be >= 1, got {self.sample_window}"
            )
        self.name = f"p{percentile:g}"
        self._samples: dict[Prefix, deque[int]] = {}

    def decide(
        self, destination: Prefix, samples: list[Observation], now: float
    ) -> float:
        window = self._samples.get(destination)
        if window is None:
            window = deque(maxlen=self.sample_window)
            self._samples[destination] = window
        for sample in samples:
            window.append(sample.cwnd)
        ordered = sorted(window)
        rank = max(
            0,
            min(
                len(ordered) - 1,
                round(self.percentile / 100.0 * (len(ordered) - 1)),
            ),
        )
        return float(ordered[rank])

    def forget(self, destination: Prefix) -> None:
        self._samples.pop(destination, None)

    def reset(self) -> None:
        self._samples.clear()


#: RTT-class caps: ``(upper bound in seconds, window cap)``; paths
#: slower than the last bound fall through to the configured ``c_max``.
RTT_CLASS_CAPS: tuple[tuple[float, int], ...] = ((0.050, 25), (0.150, 50))


class RttClassPolicy(WindowPolicy):
    """EWMA learning under an RTT-class-aware ``c_max``.

    The effective cap for a destination is the class cap of its
    smoothed RTT (never above the configured ``c_max``); destinations
    with no RTT evidence yet keep the configured cap.
    """

    name = "rtt_cmax"

    #: Weight of the historical value in the per-destination RTT EWMA.
    RTT_ALPHA = 0.7

    def __init__(self, config: "RiptideConfig") -> None:
        self._config = config
        self._learner = EwmaPolicy(config)
        self._srtt: dict[Prefix, float] = {}

    def decide(
        self, destination: Prefix, samples: list[Observation], now: float
    ) -> float:
        final = self._learner.decide(destination, samples, now)
        rtts = [s.srtt for s in samples if s.srtt is not None]
        if rtts:
            observed = sum(rtts) / len(rtts)
            previous = self._srtt.get(destination)
            smoothed = (
                observed
                if previous is None
                else self.RTT_ALPHA * previous + (1.0 - self.RTT_ALPHA) * observed
            )
            self._srtt[destination] = smoothed
        return min(final, float(self.cap_for(destination)))

    def cap_for(self, destination: Prefix) -> int:
        """The effective ``c_max`` for ``destination``'s RTT class."""
        srtt = self._srtt.get(destination)
        if srtt is None:
            return self._config.c_max
        for bound, cap in RTT_CLASS_CAPS:
            if srtt < bound:
                return min(cap, self._config.c_max)
        return self._config.c_max

    def forget(self, destination: Prefix) -> None:
        self._learner.forget(destination)
        self._srtt.pop(destination, None)

    def reset(self) -> None:
        self._learner.reset()
        self._srtt.clear()
