"""The policy registry: name -> factory over a :class:`RiptideConfig`.

Every zoo member registers here; ``RiptideConfig.policy`` selects by
name and :func:`make_policy` instantiates at agent construction.  The
name list is duplicated as ``repro.core.config.VALID_POLICIES`` (the
config module cannot import this one without a cycle); a test pins the
two lists together.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.policy.base import WindowPolicy
from repro.policy.learners import EwmaPolicy, PercentilePolicy, RttClassPolicy
from repro.policy.tunable import TunablePolicy
from repro.policy.zoo import HostClassStaticPolicy, StaticPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.config import RiptideConfig

_FACTORIES: dict[str, Callable[["RiptideConfig"], WindowPolicy]] = {
    "ewma": EwmaPolicy,
    "iw10": lambda config: StaticPolicy(10),
    "iw16": lambda config: StaticPolicy(16),
    "iw32": lambda config: StaticPolicy(32),
    "iw46": lambda config: StaticPolicy(46),
    "hostclass": lambda config: HostClassStaticPolicy(),
    "p75": lambda config: PercentilePolicy(75.0),
    "p90": lambda config: PercentilePolicy(90.0),
    "rtt_cmax": RttClassPolicy,
    "tunable": TunablePolicy,
}


def policy_names() -> tuple[str, ...]:
    """All registered policy names, sorted."""
    return tuple(sorted(_FACTORIES))


def make_policy(name: str, config: "RiptideConfig") -> WindowPolicy:
    """Instantiate a window policy by its registered name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        # A config typo is a plain ValueError; the internal KeyError is
        # an implementation detail and would only muddy the traceback.
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(f"unknown policy {name!r} (known: {known})") from None
    return factory(config)
