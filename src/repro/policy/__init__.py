"""Initial-window decision policies (the zoo) behind one protocol.

The Riptide agent's poll/install machinery is policy-agnostic; this
package holds the decision step: the paper's EWMA learner, the static
CDN configurations measured by Rüth & Hohlfeld, percentile and
RTT-class learners, and a TCPTuner-style runtime-tunable policy.
``repro.experiments.tournament`` races them against each other.
"""

from repro.policy.base import WindowPolicy, finalize_window
from repro.policy.learners import (
    EwmaPolicy,
    PercentilePolicy,
    RttClassPolicy,
    RTT_CLASS_CAPS,
)
from repro.policy.registry import make_policy, policy_names
from repro.policy.tunable import TunablePolicy
from repro.policy.zoo import (
    HOST_CLASS_WINDOWS,
    HostClassStaticPolicy,
    StaticPolicy,
)

__all__ = [
    "EwmaPolicy",
    "HOST_CLASS_WINDOWS",
    "HostClassStaticPolicy",
    "PercentilePolicy",
    "RTT_CLASS_CAPS",
    "RttClassPolicy",
    "StaticPolicy",
    "TunablePolicy",
    "WindowPolicy",
    "finalize_window",
    "make_policy",
    "policy_names",
]
