"""Static competitor policies from production CDN measurements.

Rüth & Hohlfeld (*Demystifying TCP Initial Window Configurations of
CDNs*) scanned the major CDNs and found them running fixed initial
windows well above the IW10 default — IW16, IW32 and IW46 tiers — with
several providers differentiating by *host class*: edge caches get an
aggressive window while origin-facing hosts stay conservative.  These
policies reproduce that competitor field: no learning, no history, the
same window every tick.

They still ride the full agent machinery — routes, TTL, safety guard —
so the tournament compares *decision policies*, not deployment
mechanics.
"""

from __future__ import annotations

from repro.core.combiners import Observation
from repro.net.addresses import Prefix
from repro.policy.base import WindowPolicy


class StaticPolicy(WindowPolicy):
    """A fixed initial window regardless of observations (IW*n*)."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"static window must be >= 1, got {window}")
        self.window = window
        self.name = f"iw{window}"

    def decide(
        self, destination: Prefix, samples: list[Observation], now: float
    ) -> float:
        return float(self.window)


#: Host classes and their windows: edge caches run hot, origin-facing
#: hosts stay conservative (the Rüth & Hohlfeld host-class split).
HOST_CLASS_WINDOWS = {"edge": 46, "origin": 16}


class HostClassStaticPolicy(WindowPolicy):
    """Host-class-dependent static IW (edge vs origin).

    The measurement study can read a CDN's provisioning database; the
    reproduction cannot, so destinations are classified by a stable
    deterministic rule on the prefix — the second octet's parity.  This
    is a modelling stand-in: it yields a fixed, seed-independent split
    of the address plan into the two classes, which is all the
    tournament needs from the policy.
    """

    name = "hostclass"

    def decide(
        self, destination: Prefix, samples: list[Observation], now: float
    ) -> float:
        return float(HOST_CLASS_WINDOWS[self.classify(destination)])

    @staticmethod
    def classify(destination: Prefix) -> str:
        second_octet = (destination.network.value >> 16) & 0xFF
        return "edge" if second_octet % 2 == 0 else "origin"
