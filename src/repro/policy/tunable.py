"""A TCPTuner-style runtime-tunable window policy.

TCPTuner (Miller & Hsiao) exposed the kernel's congestion-control
parameters as live knobs an operator (or controller loop) can turn
while traffic flows.  This policy does the same for the initial-window
decision: an EWMA learner whose gain and cap are runtime-settable via
:meth:`TunablePolicy.set_knob`, with the cap wired into the safety
guard as an AIMD control surface — every guard trip multiplicatively
backs the cap off toward ``c_min``, and sustained clean operation
additively recovers it toward ``c_max``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.combiners import Observation
from repro.net.addresses import Prefix
from repro.policy.base import WindowPolicy
from repro.policy.learners import EwmaPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.config import RiptideConfig


class TunablePolicy(WindowPolicy):
    """EWMA learning behind runtime-tunable gain and an AIMD cap."""

    name = "tunable"

    #: Multiplicative cap backoff per guard trip (TCP's beta).
    BACKOFF = 0.5
    #: Additive cap recovery per step, in segments.
    RECOVERY_STEP = 4.0
    #: Seconds of trip-free operation per recovery step.
    RECOVERY_INTERVAL = 10.0

    def __init__(self, config: "RiptideConfig") -> None:
        self._config = config
        self._learner = EwmaPolicy(config)
        self._knobs: dict[str, float] = {
            "gain": 1.0,
            "cap": float(config.c_max),
            "backoff": self.BACKOFF,
            "recovery_step": self.RECOVERY_STEP,
            "recovery_interval": self.RECOVERY_INTERVAL,
        }
        self._last_adjust: float | None = None

    # -- the runtime control surface ----------------------------------

    def knobs(self) -> dict[str, float]:
        """A snapshot of the current knob values."""
        return dict(self._knobs)

    def set_knob(self, name: str, value: float) -> None:
        """Turn one knob while the agent runs."""
        if name not in self._knobs:
            known = ", ".join(sorted(self._knobs))
            raise ValueError(f"unknown knob {name!r} (known: {known})")
        value = float(value)
        if name == "gain" and value <= 0.0:
            raise ValueError(f"gain must be positive, got {value}")
        if name == "cap" and not (
            self._config.c_min <= value <= self._config.c_max
        ):
            raise ValueError(
                f"cap must be in [{self._config.c_min}, "
                f"{self._config.c_max}], got {value}"
            )
        if name == "backoff" and not 0.0 < value < 1.0:
            raise ValueError(f"backoff must be in (0, 1), got {value}")
        if name == "recovery_step" and value <= 0.0:
            raise ValueError(f"recovery_step must be positive, got {value}")
        if name == "recovery_interval" and value <= 0.0:
            raise ValueError(
                f"recovery_interval must be positive, got {value}"
            )
        self._knobs[name] = value

    # -- the decision step --------------------------------------------

    def decide(
        self, destination: Prefix, samples: list[Observation], now: float
    ) -> float:
        self._recover(now)
        learned = self._learner.decide(destination, samples, now)
        return min(learned * self._knobs["gain"], self._knobs["cap"])

    def _recover(self, now: float) -> None:
        """Additive increase: walk the cap back up while trips stay away."""
        if self._last_adjust is None:
            self._last_adjust = now
            return
        interval = self._knobs["recovery_interval"]
        while (
            now - self._last_adjust >= interval
            and self._knobs["cap"] < self._config.c_max
        ):
            self._knobs["cap"] = min(
                float(self._config.c_max),
                self._knobs["cap"] + self._knobs["recovery_step"],
            )
            self._last_adjust += interval
        if self._knobs["cap"] >= self._config.c_max:
            self._last_adjust = now

    # -- lifecycle ----------------------------------------------------

    def on_guard_trip(self, destination: Prefix, reason: str, now: float) -> None:
        """Multiplicative decrease: a trip anywhere backs the cap off."""
        self._learner.forget(destination)
        self._knobs["cap"] = max(
            float(self._config.c_min),
            self._knobs["cap"] * self._knobs["backoff"],
        )
        self._last_adjust = now

    def forget(self, destination: Prefix) -> None:
        self._learner.forget(destination)

    def reset(self) -> None:
        self._learner.reset()
        self._knobs["gain"] = 1.0
        self._knobs["cap"] = float(self._config.c_max)
        self._last_adjust = None
