"""The fork-based task executor.

Tasks are zero-argument callables (typically closures over a seed or an
experiment config).  The pool uses the ``fork`` start method, so tasks
are inherited by workers through the process image and never pickled —
closures and lambdas work exactly as they do serially.  Only *results*
cross the process boundary, together with each task's captured
``repro.obs`` instrumentation, and both are pickled explicitly inside
the worker so that an unpicklable result surfaces as that task's
failure rather than a hang.

Scheduling is static round-robin (worker ``w`` runs tasks ``w``,
``w + W``, ...): with deterministic per-task cost it keeps the load
balanced, and it lets the parent attribute every task to a worker so a
worker that dies without reporting is converted into per-task failures
instead of blocking the collection loop forever.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import traceback
from collections.abc import Callable, Sequence
from typing import Any

from repro.obs.instrument import Instrumentation, active_instrumentation, capture

#: Seconds between liveness checks while waiting for worker results.
_POLL_INTERVAL = 0.2


class WorkerFailure(RuntimeError):
    """A task raised (or its worker died) during a parallel run.

    Carries enough context to reproduce the failure serially: the task
    index, the caller-supplied label (seed, arm, config description) and
    the worker-side traceback text.
    """

    def __init__(
        self,
        index: int,
        label: str,
        message: str,
        original_type: str | None = None,
        worker_traceback: str | None = None,
    ) -> None:
        self.index = index
        self.label = label
        self.original_type = original_type
        self.worker_traceback = worker_traceback
        detail = f"task {index} ({label}) failed: {message}"
        if worker_traceback:
            detail += f"\n--- worker traceback ---\n{worker_traceback.rstrip()}"
        super().__init__(detail)


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """Worker count when the caller does not choose one."""
    return os.cpu_count() or 1


def run_tasks(
    tasks: Sequence[Callable[[], Any]],
    workers: int | None = None,
    labels: Sequence[str] | None = None,
    merge_into: Instrumentation | None = None,
) -> list[Any]:
    """Run independent tasks, possibly in parallel, preserving order.

    Returns ``[tasks[0](), tasks[1](), ...]`` — results in task order,
    regardless of completion order.  With ``workers`` <= 1 (or on a
    platform without ``fork``) the tasks run serially in-process, which
    is also the reference semantics the parallel path reproduces.

    Each worker runs its tasks under a fresh ``repro.obs`` capture; the
    parent merges those captures in task order into ``merge_into`` (or,
    by default, into the innermost active capture, if any).  A failing
    task raises :class:`WorkerFailure` for the lowest failing index, and
    only instrumentation of tasks *before* that index is merged — the
    state a serial run stopping at the same failure would have left.
    """
    tasks = list(tasks)
    count = len(tasks)
    if labels is None:
        labels = [f"task-{index}" for index in range(count)]
    elif len(labels) != count:
        raise ValueError(f"got {len(labels)} labels for {count} tasks")
    else:
        labels = [str(label) for label in labels]
    if count == 0:
        return []

    if workers is None:
        workers = default_workers()
    workers = max(1, min(int(workers), count))
    if workers == 1 or not fork_available():
        return _run_serial(tasks, labels)
    return _run_forked(tasks, labels, workers, merge_into)


# ----------------------------------------------------------------------
# serial reference path
# ----------------------------------------------------------------------


def _run_serial(tasks: list[Callable[[], Any]], labels: list[str]) -> list[Any]:
    results = []
    for index, task in enumerate(tasks):
        try:
            results.append(task())
        except Exception as error:
            raise WorkerFailure(
                index,
                labels[index],
                str(error),
                original_type=type(error).__name__,
            ) from error
    return results


# ----------------------------------------------------------------------
# forked pool
# ----------------------------------------------------------------------


def _worker_main(
    worker_id: int,
    stride: int,
    tasks: list[Callable[[], Any]],
    results: multiprocessing.queues.Queue,
) -> None:
    for index in range(worker_id, len(tasks), stride):
        try:
            with capture() as instrumentation:
                result = tasks[index]()
            payload = pickle.dumps(("ok", result, instrumentation))
        except BaseException as error:  # report, keep serving later tasks
            payload = pickle.dumps(
                ("err", type(error).__name__, str(error), traceback.format_exc())
            )
        results.put((index, payload))


def _run_forked(
    tasks: list[Callable[[], Any]],
    labels: list[str],
    workers: int,
    merge_into: Instrumentation | None,
) -> list[Any]:
    context = multiprocessing.get_context("fork")
    result_queue = context.Queue()
    processes = {}
    assignment = {}
    for worker_id in range(workers):
        assignment[worker_id] = list(range(worker_id, len(tasks), workers))
        process = context.Process(
            target=_worker_main,
            args=(worker_id, workers, tasks, result_queue),
            daemon=True,
        )
        process.start()
        processes[worker_id] = process

    outcomes: dict[int, tuple[Any, ...]] = {}
    try:
        _collect(len(tasks), result_queue, processes, assignment, labels, outcomes)
    finally:
        for process in processes.values():
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join(timeout=5.0)
        result_queue.close()

    return _resolve(outcomes, labels, merge_into)


def _collect(
    count: int,
    result_queue: multiprocessing.queues.Queue,
    processes: dict[int, multiprocessing.Process],
    assignment: dict[int, list[int]],
    labels: list[str],
    outcomes: dict[int, tuple[Any, ...]],
) -> None:
    """Drain worker results, converting dead workers into failures."""

    def absorb(index: int, payload: bytes) -> None:
        outcomes[index] = pickle.loads(payload)

    while len(outcomes) < count:
        try:
            index, payload = result_queue.get(timeout=_POLL_INTERVAL)
        except queue_mod.Empty:
            dead = [w for w, p in processes.items() if not p.is_alive()]
            # A worker may die after flushing results: drain before blaming.
            try:
                while True:
                    index, payload = result_queue.get_nowait()
                    absorb(index, payload)
            except queue_mod.Empty:
                pass
            for worker_id in dead:
                process = processes[worker_id]
                for index in assignment[worker_id]:
                    if index not in outcomes:
                        outcomes[index] = (
                            "err",
                            "WorkerDied",
                            f"worker process died (exitcode={process.exitcode}) "
                            "before reporting this task",
                            None,
                        )
            continue
        absorb(index, payload)


def _resolve(
    outcomes: dict[int, tuple[Any, ...]],
    labels: list[str],
    merge_into: Instrumentation | None,
) -> list[Any]:
    """Merge instrumentation in task order; return results or raise."""
    target = merge_into if merge_into is not None else active_instrumentation()
    results = []
    for index in sorted(outcomes):
        outcome = outcomes[index]
        if outcome[0] != "ok":
            _, original_type, message, worker_tb = outcome
            raise WorkerFailure(
                index,
                labels[index],
                message,
                original_type=original_type,
                worker_traceback=worker_tb,
            )
        _, result, instrumentation = outcome
        if target is not None:
            target.merge_from(instrumentation)
        results.append(result)
    return results
