"""``repro.parallel`` — the multiprocessing run executor.

Every simulation-backed reproduction is a set of *independent* seeded
runs (seeds of a stability sweep, deployments of a c_max sweep, the
control and Riptide arms of a paired probe study).  This package fans
those runs out across a pool of forked worker processes while keeping
the three guarantees the serial path gives:

* **Deterministic results.**  Task ``i``'s return value lands at index
  ``i`` regardless of which worker ran it or when it finished, and each
  run is a pure function of its seed — so a parallel sweep returns
  byte-identical values in identical order to the serial sweep.
* **Observability.**  Each worker runs its task under its own
  ``repro.obs`` capture and ships the instrumentation back; the parent
  merges worker registries in task order, producing the same aggregate
  a serial run under one capture would have produced.
* **Attributable failures.**  A task that raises surfaces as a
  :class:`WorkerFailure` carrying the task index, its label (seed,
  config, arm name) and the worker-side traceback; a worker that dies
  outright is detected and reported the same way instead of hanging the
  parent.

See ``docs/ARCHITECTURE.md`` ("Parallel execution") for the merge
semantics, and :mod:`repro.bench` for the tracked performance baseline.
"""

from repro.parallel.executor import (
    WorkerFailure,
    default_workers,
    fork_available,
    run_tasks,
)

__all__ = [
    "WorkerFailure",
    "default_workers",
    "fork_available",
    "run_tasks",
]
