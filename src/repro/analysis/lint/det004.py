"""DET004 — interprocedural nondeterminism taint reaching a sink.

The per-file rules catch a wall-clock read (DET001) or a set iteration
(DET002) *at the hazard site*.  They are blind to laundering: a helper
that returns ``list(set(hosts))`` looks harmless in its own file, and the
caller's loop over its result looks like iteration over a plain list.
DET004 closes that gap using the project index — it resolves call chains
across functions, methods, properties and module boundaries, and reports
when a wall-clock/RNG-derived *value* or a hash-order-dependent
*iteration order* flows into an order-sensitive sink
(:data:`~repro.analysis.lint.det002.ORDER_SENSITIVE_SINKS`).

Division of labour with the per-file rules is strict, so one hazard is
never reported twice:

* a sink-reaching value tainted by a source *in the same function* is
  DET001's finding — DET004 only reports taint that arrived **via a
  resolved call**;
* a loop over a *syntactically visible* set/dict is DET002's finding —
  DET004 only reports loops whose order taint is invisible per-file.

Unresolvable calls contribute no taint (optimistic), so DET004 never
fires on speculation; the conservative per-file rules still cover
unknown-provenance hazards.
"""

from __future__ import annotations

from repro.analysis.lint.base import FileContext, Finding, Rule


class Det004InterproceduralTaint(Rule):
    code = "DET004"
    summary = (
        "wall-clock/RNG value or set-iteration order reaches an "
        "order-sensitive sink through a call chain"
    )
    exempt_modules = (
        "repro.cli",
        "repro.bench",
        "repro.parallel",
        "repro.analysis",
        "repro.testing",
    )

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        index = ctx.index
        mod = ctx.module_index
        if index is None or mod is None:
            return []
        findings: list[Finding] = []
        for qualname in sorted(mod.functions):
            summary = mod.functions[qualname]
            scope_class = qualname.split(".")[0] if "." in qualname else None
            for event in summary.sink_events:
                resolved_value, _ = index.resolve_via(
                    mod, scope_class, event.value_via
                )
                # Direct in-function sources are DET001's findings; only
                # report taint that arrived through a resolved call.
                if not event.value and resolved_value:
                    reason = sorted(resolved_value)[0]
                    findings.append(
                        Finding(
                            code=self.code,
                            message=(
                                f"value passed to order-sensitive sink "
                                f"`.{event.sink}()` derives from {reason}; "
                                "thread sim time / a seeded stream through "
                                "the call chain instead"
                            ),
                            path=ctx.path,
                            line=event.line,
                            col=event.col,
                        )
                    )
                _, resolved_order = index.resolve_via(
                    mod, scope_class, event.order_via
                )
                if not event.order and resolved_order:
                    reason = sorted(resolved_order)[0]
                    findings.append(
                        Finding(
                            code=self.code,
                            message=(
                                f"argument of order-sensitive sink "
                                f"`.{event.sink}()` carries hash-order from "
                                f"{reason}; sort it before it crosses the "
                                "call boundary"
                            ),
                            path=ctx.path,
                            line=event.line,
                            col=event.col,
                        )
                    )
            for event in summary.loop_events:
                # Syntactically visible sets/dicts are DET002's findings.
                if event.order:
                    continue
                _, resolved_order = index.resolve_via(
                    mod, scope_class, event.order_via
                )
                if resolved_order:
                    reason = sorted(resolved_order)[0]
                    findings.append(
                        Finding(
                            code=self.code,
                            message=(
                                f"loop feeding order-sensitive sink "
                                f"`.{event.sink}()` iterates in hash order "
                                f"from {reason}; wrap the call result in "
                                "sorted(...)"
                            ),
                            path=ctx.path,
                            line=event.line,
                            col=event.col,
                        )
                    )
        return findings
