"""DET002 — unordered-collection iteration feeding order-sensitive sinks.

Set iteration order depends on hash seeding and insertion history; dict
iteration order is reproducible only if every insertion site is.  When a
loop over such a collection *schedules events*, *appends to an obs
store* (trace records, spans, flows, histogram observations) or *feeds a
``merge_from``*, the iteration order becomes part of the simulation
state — the precise hazard class that breaks byte-identity between
serial and ``--workers N`` runs.  Wrapping the iterable in ``sorted()``
(or restructuring onto a list) removes the hazard.

The rule is deliberately conservative about *sinks*: loops that only
increment counters or write gauges are order-insensitive (those merges
are commutative) and are not flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import FileContext, Finding, Rule

#: Method names whose call order is part of observable simulation state.
ORDER_SENSITIVE_SINKS = frozenset({
    "schedule", "schedule_at",   # event scheduling
    "record", "begin", "observe",  # trace / span / flow / histogram appends
    "merge_from",                # store merges
})

#: Wrappers that neutralize the hazard.
_ORDERING_WRAPPERS = frozenset({"sorted"})
#: Wrappers that preserve the underlying order (look through them).
_TRANSPARENT_WRAPPERS = frozenset({"list", "tuple", "reversed", "enumerate", "iter"})

_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})


class Det002UnorderedIteration(Rule):
    code = "DET002"
    summary = (
        "iteration over a set/dict feeding an order-sensitive sink "
        "(wrap the iterable in sorted(...))"
    )
    exempt_modules = ("repro.analysis.lint",)

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        visitor = _Visitor(ctx)
        visitor.visit(ctx.tree)
        return visitor.findings


def _classify(node: ast.expr, bindings: dict[str, str]) -> str | None:
    """"set" / "dict" / "dict view" when ``node`` is hazard-ordered."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, ast.Name):
        return bindings.get(node.id)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return "set"
            if func.id == "dict":
                return "dict"
            if func.id in _ORDERING_WRAPPERS:
                return None
            if func.id in _TRANSPARENT_WRAPPERS and node.args:
                return _classify(node.args[0], bindings)
            return None
        if isinstance(func, ast.Attribute) and func.attr in _DICT_VIEW_METHODS:
            if not node.args and not node.keywords:
                return "dict view"
    return None


class _SinkScan(ast.NodeVisitor):
    """Find the first order-sensitive sink call inside a subtree."""

    def __init__(self) -> None:
        self.sink: str | None = None

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.sink is None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ORDER_SENSITIVE_SINKS
        ):
            self.sink = node.func.attr
        self.generic_visit(node)


def _first_sink(nodes: list[ast.AST]) -> str | None:
    scan = _SinkScan()
    for node in nodes:
        scan.visit(node)
        if scan.sink is not None:
            return scan.sink
    return None


class _Visitor(ast.NodeVisitor):
    """Tracks per-scope set/dict bindings and inspects loops."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._scopes: list[dict[str, str]] = [{}]

    @property
    def _bindings(self) -> dict[str, str]:
        return self._scopes[-1]

    # -- scope handling ---------------------------------------------------

    def _visit_scope(self, node: ast.AST) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    # -- binding inference ------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = _classify(node.value, self._bindings)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if kind in ("set", "dict"):
                    self._bindings[target.id] = kind
                else:
                    self._bindings.pop(target.id, None)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            kind = _classify(node.value, self._bindings)
            if kind in ("set", "dict"):
                self._bindings[node.target.id] = kind
            else:
                self._bindings.pop(node.target.id, None)
        self.generic_visit(node)

    # -- the rule ---------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        kind = _classify(node.iter, self._bindings)
        if kind is not None:
            sink = _first_sink(list(node.body))
            if sink is not None:
                self._report(node.iter, kind, sink)
        self.generic_visit(node)

    def _visit_comprehension(
        self, node: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp
    ) -> None:
        elements: list[ast.AST]
        if isinstance(node, ast.DictComp):
            elements = [node.key, node.value]
        else:
            elements = [node.elt]
        for generator in node.generators:
            kind = _classify(generator.iter, self._bindings)
            if kind is not None:
                sink = _first_sink(elements)
                if sink is not None:
                    self._report(generator.iter, kind, sink)
        self._visit_scope(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def _report(self, node: ast.AST, kind: str, sink: str) -> None:
        self.findings.append(
            self.ctx.finding(
                "DET002",
                node,
                f"iteration over a {kind} feeds order-sensitive sink "
                f"`.{sink}()`; wrap the iterable in sorted(...) or "
                "restructure onto an ordered collection",
            )
        )
