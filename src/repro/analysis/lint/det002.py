"""DET002 — unordered-collection iteration feeding order-sensitive sinks.

Set iteration order depends on hash seeding and insertion history; dict
iteration order is reproducible only if every insertion site is.  When a
loop over such a collection *schedules events*, *appends to an obs
store* (trace records, spans, flows, histogram observations) or *feeds a
``merge_from``*, the iteration order becomes part of the simulation
state — the precise hazard class that breaks byte-identity between
serial and ``--workers N`` runs.  Wrapping the iterable in ``sorted()``
(or restructuring onto a list) removes the hazard.

The rule is deliberately conservative about *sinks*: loops that only
increment counters or write gauges are order-insensitive (those merges
are commutative) and are not flagged.

When the engine provides the project index, the rule also resolves
*dict views of call results*: ``for k, v in self._group().items()`` is
conservative-flagged per-file, but if ``_group`` resolves in the index
and its return carries no order taint, the insertion order is proven
deterministic and the finding is dropped.  (A resolvable *tainted*
return is DET004's finding — per-channel ownership keeps every hazard
reported exactly once.)
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import FileContext, Finding, Rule

#: Method names whose call order is part of observable simulation state.
ORDER_SENSITIVE_SINKS = frozenset({
    "schedule", "schedule_at",   # event scheduling
    "record", "begin", "observe",  # trace / span / flow / histogram appends
    "merge_from",                # store merges
})

#: Wrappers that neutralize the hazard.
_ORDERING_WRAPPERS = frozenset({"sorted"})
#: Wrappers that preserve the underlying order (look through them).
_TRANSPARENT_WRAPPERS = frozenset({"list", "tuple", "reversed", "enumerate", "iter"})

_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})


class Det002UnorderedIteration(Rule):
    code = "DET002"
    summary = (
        "iteration over a set/dict feeding an order-sensitive sink "
        "(wrap the iterable in sorted(...))"
    )
    exempt_modules = ("repro.analysis.lint",)

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        visitor = _Visitor(ctx)
        visitor.visit(ctx.tree)
        return visitor.findings


def _call_ref(node: ast.expr) -> str | None:
    """Dotted callee ref when ``node`` is a plain call, else None."""
    if not isinstance(node, ast.Call):
        return None
    parts: list[str] = []
    func: ast.expr = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if not isinstance(func, ast.Name):
        return None
    parts.append(func.id)
    parts.reverse()
    return ".".join(parts)


def _classify(node: ast.expr, bindings: dict[str, str]) -> str | None:
    """"set" / "dict" / "dict view" when ``node`` is hazard-ordered."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, ast.Name):
        return bindings.get(node.id)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return "set"
            if func.id == "dict":
                return "dict"
            if func.id in _ORDERING_WRAPPERS:
                return None
            if func.id in _TRANSPARENT_WRAPPERS and node.args:
                return _classify(node.args[0], bindings)
            return None
        if isinstance(func, ast.Attribute) and func.attr in _DICT_VIEW_METHODS:
            if not node.args and not node.keywords:
                return "dict view"
    return None


class _SinkScan(ast.NodeVisitor):
    """Find the first order-sensitive sink call inside a subtree."""

    def __init__(self) -> None:
        self.sink: str | None = None

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.sink is None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ORDER_SENSITIVE_SINKS
        ):
            self.sink = node.func.attr
        self.generic_visit(node)


def _first_sink(nodes: list[ast.AST]) -> str | None:
    scan = _SinkScan()
    for node in nodes:
        scan.visit(node)
        if scan.sink is not None:
            return scan.sink
    return None


class _Visitor(ast.NodeVisitor):
    """Tracks per-scope set/dict bindings and inspects loops."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._scopes: list[dict[str, str]] = [{}]
        #: name -> callee ref of the call it was bound from, per scope —
        #: what lets the index prove a dict view deterministic.
        self._call_bindings: list[dict[str, str]] = [{}]
        self._class_stack: list[str] = []

    @property
    def _bindings(self) -> dict[str, str]:
        return self._scopes[-1]

    # -- scope handling ---------------------------------------------------

    def _visit_scope(self, node: ast.AST) -> None:
        self._scopes.append({})
        self._call_bindings.append({})
        self.generic_visit(node)
        self._scopes.pop()
        self._call_bindings.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self._visit_scope(node)
        self._class_stack.pop()

    # -- binding inference ------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = _classify(node.value, self._bindings)
        call_ref = _call_ref(node.value)
        targets = list(node.targets)
        if (
            len(targets) == 1
            and isinstance(targets[0], (ast.Tuple, ast.List))
            and call_ref is not None
        ):
            # ``a, b = self._compute()`` — both names come from the call.
            targets = list(targets[0].elts)
        for target in targets:
            if isinstance(target, ast.Name):
                if kind in ("set", "dict"):
                    self._bindings[target.id] = kind
                else:
                    self._bindings.pop(target.id, None)
                if call_ref is not None:
                    self._call_bindings[-1][target.id] = call_ref
                else:
                    self._call_bindings[-1].pop(target.id, None)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            kind = _classify(node.value, self._bindings)
            if kind in ("set", "dict"):
                self._bindings[node.target.id] = kind
            else:
                self._bindings.pop(node.target.id, None)
            call_ref = _call_ref(node.value)
            if call_ref is not None:
                self._call_bindings[-1][node.target.id] = call_ref
            else:
                self._call_bindings[-1].pop(node.target.id, None)
        self.generic_visit(node)

    # -- the rule ---------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        kind = _classify(node.iter, self._bindings)
        if kind is not None and not self._proven_deterministic(node.iter, kind):
            sink = _first_sink(list(node.body))
            if sink is not None:
                self._report(node.iter, kind, sink)
        self.generic_visit(node)

    def _proven_deterministic(self, iterable: ast.expr, kind: str) -> bool:
        """Index-resolved dict views of untainted calls are not hazards.

        Applies only to ``dict view`` classifications whose receiver is
        bound from a call the project index can resolve: if the resolved
        return carries order taint the finding belongs to DET004, and if
        it carries none the insertion order is a pure function of the
        run — either way the conservative per-file finding would be
        noise.  Unresolvable receivers keep it.
        """
        if kind != "dict view" or self.ctx.index is None:
            return False
        mod = self.ctx.module_index
        if mod is None:
            return False
        if not isinstance(iterable, ast.Call) or not isinstance(
            iterable.func, ast.Attribute
        ):
            return False
        receiver = iterable.func.value
        ref: str | None = None
        if isinstance(receiver, ast.Name):
            ref = self._call_bindings[-1].get(receiver.id)
        elif isinstance(receiver, ast.Call):
            ref = _call_ref(receiver)
        if ref is None:
            return False
        scope_class = self._class_stack[-1] if self._class_stack else None
        order = self.ctx.index.call_order_taint(mod, scope_class, ref)
        return order is not None

    def _visit_comprehension(
        self, node: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp
    ) -> None:
        elements: list[ast.AST]
        if isinstance(node, ast.DictComp):
            elements = [node.key, node.value]
        else:
            elements = [node.elt]
        for generator in node.generators:
            kind = _classify(generator.iter, self._bindings)
            if kind is not None and not self._proven_deterministic(
                generator.iter, kind
            ):
                sink = _first_sink(elements)
                if sink is not None:
                    self._report(generator.iter, kind, sink)
        self._visit_scope(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def _report(self, node: ast.AST, kind: str, sink: str) -> None:
        self.findings.append(
            self.ctx.finding(
                "DET002",
                node,
                f"iteration over a {kind} feeds order-sensitive sink "
                f"`.{sink}()`; wrap the iterable in sorted(...) or "
                "restructure onto an ordered collection",
            )
        )
