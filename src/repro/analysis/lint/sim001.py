"""SIM001 — kernel invariants: no clock/queue poking, no real sleeps.

The :class:`~repro.sim.kernel.Simulator` owns the clock and the event
queue; every other component interacts with time exclusively through
``schedule``/``schedule_at``/``cancel``.  Two violations break that
contract:

* assigning a kernel-private field (``sim._now = ...``, ``sim._queue =
  ...``, ``queue._heap = ...``) from outside the kernel modules — the
  clock silently diverges from the queue and events fire "in the past".
  Since the event-core rewrite the run loop and :class:`EventQueue`
  share the entry heap and tombstone counter, so those fields are
  covered too.  Assignments through ``self`` are exempt: a class
  managing its *own* ``_running`` flag is not touching the kernel's;
* calling ``time.sleep`` anywhere in simulation code — an event
  callback that blocks the process stalls every simulated component at
  once and couples results to host scheduling.

``repro.parallel`` may block on real time (it coordinates worker
processes, not simulated ones) and is exempt from the sleep check via
the shared exemption list.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import FileContext, Finding, Rule

#: Fields of ``Simulator`` and ``EventQueue`` that only the kernel
#: modules themselves may assign.  ``_heap`` and ``_tombstones`` are the
#: event queue's entry heap and tombstone count — the run loop pops and
#: compacts them under invariants an outside writer cannot see.
KERNEL_PRIVATE_FIELDS = frozenset({
    "_now", "_queue", "_seq", "_running", "_events_processed",
    "_heap", "_tombstones",
})

#: The modules allowed to assign those fields: the kernel itself and the
#: event-queue module whose structures it shares.
_KERNEL_MODULES = frozenset({"repro.sim.kernel", "repro.sim.events"})


class Sim001KernelInvariants(Rule):
    code = "SIM001"
    summary = (
        "kernel-private field assigned outside the kernel, or "
        "time.sleep in simulation code"
    )
    exempt_modules = (
        "repro.cli",
        "repro.bench",
        "repro.parallel",
        "repro.analysis",
        "repro.testing",
    )

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        visitor = _Visitor(ctx, in_kernel=ctx.module in _KERNEL_MODULES)
        visitor.visit(ctx.tree)
        return visitor.findings


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext, in_kernel: bool) -> None:
        self.ctx = ctx
        self.in_kernel = in_kernel
        self.findings: list[Finding] = []
        self._time_aliases: set[str] = set()
        self._bare_sleeps: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._time_aliases.add(alias.asname or "time")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    self._bare_sleeps.add(alias.asname or "sleep")
        self.generic_visit(node)

    # -- kernel-private assignment ---------------------------------------

    def _check_store_target(self, target: ast.expr) -> None:
        if self.in_kernel:
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element)
            return
        if (
            isinstance(target, ast.Attribute)
            and target.attr in KERNEL_PRIVATE_FIELDS
            and not (
                # ``self._running = ...`` is a class managing its *own*
                # field of the same name (workload generators have one);
                # the hazard is poking a field on a *held* simulator.
                isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
            )
        ):
            self.findings.append(
                self.ctx.finding(
                    "SIM001",
                    target,
                    f"assignment to kernel-private field `{target.attr}` "
                    "outside repro/sim/kernel.py; go through "
                    "schedule()/cancel()/run() instead",
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    # -- real sleeps ------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        sleeping = (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_aliases
        ) or (
            isinstance(func, ast.Name) and func.id in self._bare_sleeps
        )
        if sleeping:
            self.findings.append(
                self.ctx.finding(
                    "SIM001",
                    node,
                    "time.sleep() in simulation code blocks the whole "
                    "process; schedule a sim event instead",
                )
            )
        self.generic_visit(node)
