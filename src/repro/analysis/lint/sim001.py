"""SIM001 — kernel invariants: no clock/queue poking, no real sleeps.

The :class:`~repro.sim.kernel.Simulator` owns the clock and the event
queue; every other component interacts with time exclusively through
``schedule``/``schedule_at``/``cancel``.  Two violations break that
contract:

* assigning a kernel-private field (``sim._now = ...``, ``sim._queue =
  ...``, ``queue._heap = ...``) from outside the kernel modules — the
  clock silently diverges from the queue and events fire "in the past".
  Since the event-core rewrite the run loop and :class:`EventQueue`
  share the entry heap and tombstone counter, so those fields are
  covered too.  Assignments through ``self`` are exempt: a class
  managing its *own* ``_running`` flag is not touching the kernel's;
* calling ``time.sleep`` anywhere in simulation code — an event
  callback that blocks the process stalls every simulated component at
  once and couples results to host scheduling.

The mean-field engine (:mod:`repro.sim.fluid`) has the same shape of
invariant: :class:`CwndDistribution` keeps its histogram (``_bin_mass``)
and active range (``_lo_bin``/``_hi_bin``) consistent with the cached
``flows`` total, so an outside writer desynchronizes mass accounting
just like poking the kernel heap desynchronizes the clock.  Those
fields get the same protection, scoped to their own owning module.

``repro.parallel`` may block on real time (it coordinates worker
processes, not simulated ones) and is exempt from the sleep check via
the shared exemption list.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import FileContext, Finding, Rule

#: Fields of ``Simulator`` and ``EventQueue`` that only the kernel
#: modules themselves may assign.  ``_heap`` and ``_tombstones`` are the
#: event queue's entry heap and tombstone count — the run loop pops and
#: compacts them under invariants an outside writer cannot see.
KERNEL_PRIVATE_FIELDS = frozenset({
    "_now", "_queue", "_seq", "_running", "_events_processed",
    "_heap", "_tombstones",
})

#: The modules allowed to assign those fields: the kernel itself and the
#: event-queue module whose structures it shares.
_KERNEL_MODULES = frozenset({"repro.sim.kernel", "repro.sim.events"})

#: Fields of the fluid engine's ``CwndDistribution`` that only
#: ``repro.sim.fluid`` may assign: the histogram and its active range
#: are kept consistent with the cached ``flows`` total by the stepping
#: code; writers go through ``add_mass``/``remove_fraction``/``step``.
FLUID_PRIVATE_FIELDS = frozenset({"_bin_mass", "_lo_bin", "_hi_bin"})

_FLUID_MODULES = frozenset({"repro.sim.fluid"})

#: protected field -> (modules allowed to assign it, owning module shown
#: in the finding message).
_PROTECTED_FIELDS: dict[str, tuple[frozenset[str], str]] = {
    **{
        field: (_KERNEL_MODULES, "repro/sim/kernel.py")
        for field in KERNEL_PRIVATE_FIELDS
    },
    **{
        field: (_FLUID_MODULES, "repro/sim/fluid.py")
        for field in FLUID_PRIVATE_FIELDS
    },
}


class Sim001KernelInvariants(Rule):
    code = "SIM001"
    summary = (
        "kernel- or fluid-private field assigned outside its owning "
        "module, or time.sleep in simulation code"
    )
    exempt_modules = (
        "repro.cli",
        "repro.bench",
        "repro.parallel",
        "repro.analysis",
        "repro.testing",
    )

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        visitor = _Visitor(ctx)
        visitor.visit(ctx.tree)
        return visitor.findings


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = ctx.module
        self.findings: list[Finding] = []
        self._time_aliases: set[str] = set()
        self._bare_sleeps: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._time_aliases.add(alias.asname or "time")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    self._bare_sleeps.add(alias.asname or "sleep")
        self.generic_visit(node)

    # -- kernel-private assignment ---------------------------------------

    def _check_store_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element)
            return
        if not isinstance(target, ast.Attribute):
            return
        protected = _PROTECTED_FIELDS.get(target.attr)
        if protected is None:
            return
        allowed_modules, owner = protected
        if self.module in allowed_modules:
            return
        if (
            # ``self._running = ...`` is a class managing its *own*
            # field of the same name (workload generators have one);
            # the hazard is poking a field on a *held* simulator.
            isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
        ):
            return
        self.findings.append(
            self.ctx.finding(
                "SIM001",
                target,
                f"assignment to private field `{target.attr}` outside "
                f"{owner}; go through the owning class's methods instead",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    # -- real sleeps ------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        sleeping = (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_aliases
        ) or (
            isinstance(func, ast.Name) and func.id in self._bare_sleeps
        )
        if sleeping:
            self.findings.append(
                self.ctx.finding(
                    "SIM001",
                    node,
                    "time.sleep() in simulation code blocks the whole "
                    "process; schedule a sim event instead",
                )
            )
        self.generic_visit(node)
