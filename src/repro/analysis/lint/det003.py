"""DET003 — ordering by object identity.

``id(x)`` is an address: it differs between processes and between runs,
so any ordering derived from it (sort keys, ``min``/``max`` keys,
``id(a) < id(b)`` comparisons) is nondeterministic even under a fixed
seed.  ``is``-based tie-breaks inside key functions are the same hazard
wearing a different syntax — identity tests are fine as *predicates*,
but must never decide *order*.  Deterministic orderings come from stable
fields: sequence numbers, names, addresses (the event queue's
``(time, seq)`` pair is the house pattern).
"""

from __future__ import annotations

import ast
from collections.abc import Callable

from repro.analysis.lint.base import FileContext, Finding, Rule

_ORDERING_CALLS = frozenset({"sorted", "min", "max"})
_ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _contains(
    node: ast.AST, predicate: Callable[[ast.AST], bool]
) -> ast.AST | None:
    for child in ast.walk(node):
        if predicate(child):
            return child
    return None


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        and len(node.args) == 1
    )


def _is_identity_compare(node: ast.AST) -> bool:
    return isinstance(node, ast.Compare) and any(
        isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
    )


class Det003IdentityOrdering(Rule):
    code = "DET003"
    summary = "ordering derived from object identity (id()/is) is nondeterministic"
    exempt_modules = ("repro.analysis.lint",)

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        visitor = _Visitor(ctx)
        visitor.visit(ctx.tree)
        return visitor.findings


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_ordering_call(node):
            key = next(
                (kw.value for kw in node.keywords if kw.arg == "key"), None
            )
            if key is not None:
                if isinstance(key, ast.Name) and key.id == "id":
                    self._report(key, "id used as a sort/min/max key")
                hit = _contains(key, _is_id_call)
                if hit is not None:
                    self._report(hit, "id() used inside a sort/min/max key")
                hit = _contains(key, _is_identity_compare)
                if hit is not None:
                    self._report(
                        hit, "`is` tie-break inside a sort/min/max key"
                    )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, _ORDER_OPS) for op in node.ops):
            for operand in [node.left, *node.comparators]:
                if _is_id_call(operand):
                    self._report(
                        operand, "ordered comparison of id() values"
                    )
                    break
        self.generic_visit(node)

    @staticmethod
    def _is_ordering_call(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDERING_CALLS:
            return True
        return isinstance(func, ast.Attribute) and func.attr == "sort"

    def _report(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            self.ctx.finding(
                "DET003",
                node,
                f"{what}; order by a stable field (seq, name, address) "
                "instead of object identity",
            )
        )
