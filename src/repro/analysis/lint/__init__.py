"""``repro.analysis.lint`` — determinism & sim-invariant static analysis.

An AST-based analyzer with codebase-specific rules, run as
``python -m repro lint [paths]``:

========  ==============================================================
DET001    wall-clock / global-RNG reads in simulation code
DET002    set/dict iteration feeding order-sensitive sinks
DET003    ordering by object identity (``id()`` keys, ``is`` tie-breaks)
DET004    interprocedural nondeterminism taint reaching a sink
FRK001    unpicklable attribute in a class crossing the fork boundary
FRK002    Instrumentation store without an order-stable ``merge_from``
FLT001    bare ``sum()``/``+=`` float accumulation (use ``math.fsum``)
SIM001    kernel-private field pokes and ``time.sleep`` in sim code
SLOT001   ``self`` attributes missing from a class's ``__slots__``
OBS001    metric/trace/span taxonomy drift against ARCHITECTURE.md
========  ==============================================================

The analyzer runs in two passes: pass 1 builds a whole-program
:class:`~repro.analysis.lint.index.ProjectIndex` (per-module symbol
tables, import/call graphs, per-function nondeterminism summaries —
cacheable by content hash), pass 2 runs the rules against it.

See the "Static analysis" section of ``docs/ARCHITECTURE.md`` for a
motivating example per rule, and :mod:`repro.analysis.lint.engine` for
the suppression layers (inline ``# lint: ignore[CODE]`` comments and
the JSON baseline).
"""

from repro.analysis.lint.base import FileContext, Finding, ProjectContext, Rule
from repro.analysis.lint.engine import (
    ALL_RULES,
    LINT_SCHEMA_VERSION,
    RULE_CODES,
    LintResult,
    LintUsageError,
    collect_files,
    load_baseline,
    run_lint,
    select_rules,
)
from repro.analysis.lint.index import (
    INDEX_SCHEMA_VERSION,
    ModuleIndex,
    ProjectIndex,
    index_module,
)

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "INDEX_SCHEMA_VERSION",
    "LINT_SCHEMA_VERSION",
    "LintResult",
    "LintUsageError",
    "ModuleIndex",
    "ProjectContext",
    "ProjectIndex",
    "RULE_CODES",
    "Rule",
    "collect_files",
    "index_module",
    "load_baseline",
    "run_lint",
    "select_rules",
]
