"""OBS001 — observability taxonomy drift between code and docs.

``docs/ARCHITECTURE.md`` carries three reference tables — the metric
reference, the trace event reference and the span source reference —
that PR 4's tail-latency attribution and every dashboard built on the
exporters depend on.  This rule keeps them honest in both directions:

* a metric name passed to ``counter()``/``gauge()``/``histogram()``, a
  member of the ``EventType`` enum, or a literal span source passed to
  ``*spans*.begin(...)`` that is **missing from its table** is flagged
  at the emission site;
* a documented name that **no scanned source emits** is flagged at its
  table row — but only when the scan demonstrably covered the whole
  tree (gated on ``repro/obs/metrics.py`` being among the scanned
  files), so linting a single file never claims the rest of the tree
  went silent.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

from repro.analysis.lint.base import FileContext, Finding, ProjectContext, Rule

#: Doc (relative to the repo root) holding the reference tables.
TAXONOMY_DOC = os.path.join("docs", "ARCHITECTURE.md")

#: Marker text locating each reference table inside the doc.
METRIC_TABLE_MARKER = "Metric reference"
TRACE_TABLE_MARKER = "Trace event reference"
SPAN_TABLE_MARKER = "Span source reference"

#: The scan is considered whole-tree when this file was covered.
_FULL_TREE_SENTINEL = "repro/obs/metrics.py"

_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})
_NAME_TOKEN = re.compile(r"`([A-Za-z0-9_]+)`")


@dataclass(frozen=True)
class _Emission:
    name: str
    kind: str        # "metric" | "trace event" | "span source"
    path: str
    line: int
    col: int


@dataclass
class _DocTable:
    names: dict[str, int] = field(default_factory=dict)  # name -> doc line
    found: bool = False


class Obs001TaxonomyDrift(Rule):
    code = "OBS001"
    summary = "metric/trace/span name out of sync with docs/ARCHITECTURE.md"
    exempt_modules = (
        "repro.bench",      # scratch instruments for throughput scoring
        "repro.testing",
        "repro.analysis.lint",
    )

    def __init__(self) -> None:
        self.emissions: list[_Emission] = []

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        visitor = _Collector(ctx)
        visitor.visit(ctx.tree)
        self.emissions.extend(visitor.emissions)
        return []

    def finalize(self, project: ProjectContext) -> list[Finding]:
        if project.root is None:
            return []
        doc_path = os.path.join(project.root, TAXONOMY_DOC)
        if not os.path.exists(doc_path):
            return []
        with open(doc_path, encoding="utf-8") as handle:
            doc_lines = handle.read().splitlines()
        tables = {
            "metric": _parse_table(doc_lines, METRIC_TABLE_MARKER),
            "trace event": _parse_table(doc_lines, TRACE_TABLE_MARKER),
            "span source": _parse_table(doc_lines, SPAN_TABLE_MARKER),
        }
        doc_rel = TAXONOMY_DOC.replace(os.sep, "/")
        findings: list[Finding] = []

        for emission in self.emissions:
            table = tables[emission.kind]
            if table.found and emission.name not in table.names:
                findings.append(
                    Finding(
                        code="OBS001",
                        message=(
                            f"{emission.kind} `{emission.name}` is emitted "
                            f"here but missing from the "
                            f"{emission.kind} reference table in {doc_rel}"
                        ),
                        path=emission.path,
                        line=emission.line,
                        col=emission.col,
                    )
                )

        if project.scanned_module(_FULL_TREE_SENTINEL):
            emitted: dict[str, set[str]] = {
                "metric": set(), "trace event": set(), "span source": set(),
            }
            for emission in self.emissions:
                emitted[emission.kind].add(emission.name)
            for kind, table in tables.items():
                for name, doc_line in sorted(table.names.items()):
                    if name not in emitted[kind]:
                        findings.append(
                            Finding(
                                code="OBS001",
                                message=(
                                    f"{kind} `{name}` is documented in the "
                                    f"{kind} reference table but never "
                                    "emitted by the scanned sources"
                                ),
                                path=doc_rel,
                                line=doc_line,
                            )
                        )
        return findings


def _parse_table(doc_lines: list[str], marker: str) -> _DocTable:
    """Names from the first markdown table following ``marker``."""
    table = _DocTable()
    in_table = False
    for index, line in enumerate(doc_lines, start=1):
        if not table.found:
            if marker in line:
                table.found = True
            continue
        stripped = line.strip()
        if stripped.startswith("|"):
            in_table = True
            first_cell = stripped.strip("|").split("|", 1)[0]
            for name in _NAME_TOKEN.findall(first_cell):
                table.names.setdefault(name, index)
        elif in_table:
            break   # table ended
    return table


class _Collector(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.emissions: list[_Emission] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                func.attr in _METRIC_FACTORIES
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                self._emit(node.args[0], "metric", node.args[0].value)
            elif func.attr == "begin" and _receiver_mentions_span(func.value):
                if (
                    len(node.args) >= 3
                    and isinstance(node.args[2], ast.Constant)
                    and isinstance(node.args[2].value, str)
                ):
                    self._emit(node.args[2], "span source", node.args[2].value)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name == "EventType":
            for statement in node.body:
                if (
                    isinstance(statement, ast.Assign)
                    and isinstance(statement.value, ast.Constant)
                    and isinstance(statement.value.value, str)
                ):
                    self._emit(
                        statement.value, "trace event", statement.value.value
                    )
        self.generic_visit(node)

    def _emit(self, node: ast.AST, kind: str, name: str) -> None:
        self.emissions.append(
            _Emission(
                name=name,
                kind=kind,
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
            )
        )


def _receiver_mentions_span(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute):
        return "span" in node.attr.lower()
    if isinstance(node, ast.Name):
        return "span" in node.id.lower()
    return False
