"""Shared vocabulary of the ``repro lint`` analyzer.

A :class:`Finding` is one diagnostic; a :class:`Rule` turns a parsed
file into findings.  Rules come in two shapes:

* **file rules** inspect one module at a time (``visit_file``);
* **project rules** additionally accumulate cross-file facts and emit
  findings after every file has been seen (``finalize``) — the
  taxonomy-drift rule OBS001 works this way, because "emitted but not
  documented" is only decidable once the whole tree has been scanned.

Scoping: the determinism rules only make sense inside simulation code —
``repro.bench`` measuring wall time is the point of that module, not a
bug.  Each rule declares the module prefixes it exempts; files that do
not resolve to a ``repro.*`` module at all (rule fixtures in tests,
scratch scripts) are linted with every rule, which is what lets the
fixture corpus prove each rule fires.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:
    from repro.analysis.lint.index import ModuleIndex, ProjectIndex


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule code anchored to a file position."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes the line/column so that unrelated edits
        above a suppressed finding do not churn the baseline file.
        """
        raw = f"{self.code}::{self.path}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class FileContext:
    """One parsed source file as rules see it."""

    path: str
    module: str | None
    tree: ast.Module
    source_lines: list[str] = field(default_factory=list)
    #: The whole-program index (pass 2), when the engine built one.
    index: ProjectIndex | None = None
    #: This file's own pass-1 summary, when the engine built the index.
    module_index: ModuleIndex | None = None

    def finding(
        self, code: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            code=code,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


@dataclass
class ProjectContext:
    """Cross-file facts available to ``Rule.finalize``."""

    #: Repository root (directory holding ``pyproject.toml``), when found.
    root: str | None
    #: Repo-relative paths of every file scanned in this run.
    scanned: list[str] = field(default_factory=list)
    #: The whole-program index (covers the index scope, a superset of
    #: ``scanned`` — project rules must still filter findings to
    #: ``scanned`` paths).
    index: ProjectIndex | None = None

    def scanned_module(self, suffix: str) -> bool:
        """True when a scanned file path ends with ``suffix``.

        Used to gate whole-tree directions ("documented but never
        emitted") on the run actually having covered the emitting
        packages — linting a single file must not claim the rest of the
        tree went silent.
        """
        normalized = suffix.replace("\\", "/")
        return any(p.replace("\\", "/").endswith(normalized) for p in self.scanned)


class Rule:
    """Base class: one code, one summary, one visitor."""

    code: ClassVar[str]
    summary: ClassVar[str]
    #: Module prefixes this rule does not apply to (``repro.bench`` is
    #: allowed to read the wall clock; the linter does not lint itself).
    exempt_modules: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, module: str | None) -> bool:
        if module is None:
            return True
        return not any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.exempt_modules
        )

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finalize(self, project: ProjectContext) -> list[Finding]:
        return []


def module_name_for(path: str) -> str | None:
    """``repro.*`` dotted module for a path, or None outside the package.

    ``src/repro/sim/kernel.py`` -> ``repro.sim.kernel``;
    ``/tmp/fixture.py`` -> None (linted with every rule).
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" not in parts:
        return None
    tail = parts[parts.index("repro"):]
    if not tail[-1].endswith(".py"):
        return None
    tail[-1] = tail[-1][:-3]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail)


def rightmost_name(node: ast.expr) -> str | None:
    """The trailing identifier of a name/attribute chain.

    ``self._spans`` -> ``_spans``; ``sim`` -> ``sim``; anything else
    (calls, subscripts) -> None.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
