"""DET001 — wall-clock or ambient-entropy reads in simulation code.

A run must be a pure function of ``(topology, config, seed)``.  Reading
the host clock (``time.time``, ``datetime.now``) or the process-global
RNG (``random.random``, ``numpy.random.*``, unseeded ``random.Random()``)
injects machine state into that function, which is exactly the class of
bug the serial-vs-parallel bit-identity guarantee cannot survive.  Sim
code draws time from ``Simulator.now`` and randomness from a named
:class:`repro.sim.rand.RandomStreams` stream instead.

``repro.cli``, ``repro.bench`` and ``repro.parallel`` are exempt: wall
time there *measures the machine* (progress lines, benchmark scores,
worker poll timeouts) and never feeds simulation state.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import FileContext, Finding, Rule

#: ``time`` module functions that read the host clock.
_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
})

#: ``datetime``/``date`` constructors that read the host clock.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: ``random`` module-level functions backed by the shared global RNG.
_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "vonmisesvariate", "paretovariate", "weibullvariate",
    "getrandbits", "randbytes", "seed",
})


class Det001WallClockEntropy(Rule):
    code = "DET001"
    summary = (
        "wall-clock or global-RNG read in simulation code "
        "(use Simulator.now / an injected seeded stream)"
    )
    exempt_modules = (
        "repro.cli",
        "repro.bench",
        "repro.parallel",
        "repro.analysis",
        "repro.testing",
    )

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        visitor = _Visitor(ctx)
        visitor.visit(ctx.tree)
        return visitor.findings


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        #: local alias -> canonical module ("time", "random", "numpy",
        #: "numpy.random", "datetime") or class ("datetime.datetime").
        self.aliases: dict[str, str] = {}
        #: bare names imported from ``time``/``random`` that are hazards.
        self.bare_hazards: dict[str, str] = {}

    # -- import tracking --------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name in ("time", "random", "datetime", "numpy", "numpy.random"):
                target = alias.name
                if alias.asname is None and "." in alias.name:
                    # ``import numpy.random`` binds ``numpy``.
                    target = alias.name.split(".")[0]
                self.aliases[bound] = target
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_FUNCS or alias.name == "sleep":
                    self.bare_hazards[alias.asname or alias.name] = f"time.{alias.name}"
        elif node.module == "random":
            for alias in node.names:
                if alias.name in _RANDOM_FUNCS:
                    self.bare_hazards[alias.asname or alias.name] = f"random.{alias.name}"
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.aliases[alias.asname or alias.name] = "datetime.datetime"
        elif node.module in ("numpy", "numpy.random"):
            for alias in node.names:
                if node.module == "numpy" and alias.name == "random":
                    self.aliases[alias.asname or alias.name] = "numpy.random"
        self.generic_visit(node)

    # -- hazard detection -------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            origin = self.bare_hazards.get(func.id)
            if origin is not None and origin != "time.sleep":
                self._report(node, f"call to {origin}()")
        elif isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        self.generic_visit(node)

    def _check_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        base = func.value
        if isinstance(base, ast.Name):
            origin = self.aliases.get(base.id)
            if origin == "time" and func.attr in _CLOCK_FUNCS:
                self._report(node, f"call to time.{func.attr}()")
            elif origin == "random" and func.attr in _RANDOM_FUNCS:
                self._report(node, f"call to global-RNG random.{func.attr}()")
            elif origin == "random" and func.attr == "Random" and not node.args:
                self._report(node, "random.Random() seeded from OS entropy (pass a seed)")
            elif origin in ("datetime", "datetime.datetime") and func.attr in _DATETIME_FUNCS:
                self._report(node, f"call to datetime {func.attr}()")
            elif origin == "numpy.random":
                self._report(node, f"call to numpy.random.{func.attr}()")
        elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            # ``np.random.X(...)`` / ``datetime.datetime.now(...)``
            outer = self.aliases.get(base.value.id)
            if outer == "numpy" and base.attr == "random":
                self._report(node, f"call to numpy.random.{func.attr}()")
            elif outer == "datetime" and base.attr in ("datetime", "date"):
                if func.attr in _DATETIME_FUNCS:
                    self._report(node, f"call to datetime.{base.attr}.{func.attr}()")

    def _report(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            self.ctx.finding(
                "DET001",
                node,
                f"{what} in simulation code; inject sim time / a seeded "
                "RandomStreams stream instead",
            )
        )
