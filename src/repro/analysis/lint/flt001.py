"""FLT001 — float accumulation that breaks last-ulp byte identity.

``sum()`` and ``+=`` over floats are order- and grouping-sensitive in
the last ulp: a merged store that adds per-worker subtotals produces a
different 64-bit pattern than the serial run that added every sample in
one pass, even though both are "correct".  The tsdb/export contract
(:mod:`repro.obs.tsdb`, :mod:`repro.analysis.export`) therefore requires
``math.fsum`` — the correctly-rounded true sum, which is independent of
both order and grouping — on every derivation path that feeds a
byte-compared artifact.

The rule is scoped to those derivation packages (``repro.obs``,
``repro.analysis``) rather than exempting a blocklist, and uses the
project index's per-class attribute evidence to decide floatness:

* ``sum(xs)`` fires when ``xs`` is float-evidenced — an attribute
  annotated ``list[float]``, an attribute assigned from float-producing
  expressions, or a comprehension whose element is a float expression.
  ``sum(1 for ...)`` and integer counters never fire.
* ``acc += x`` fires for a running float accumulator: a local
  initialized to a float literal and incremented in a loop, or a
  float-annotated ``self`` attribute incremented in a method.

Unknown types stay silent (optimistic) — mypy owns type errors; this
rule owns the determinism contract.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import FileContext, Finding, Rule
from repro.analysis.lint.index import ClassSummary, ModuleIndex, _value_kind

#: Annotations that evidence a float sequence / float scalar.
_FLOAT_SEQ_MARKERS = ("list[float]", "tuple[float", "Sequence[float]", "set[float]")


class Flt001FloatIdentity(Rule):
    code = "FLT001"
    summary = (
        "bare sum()/+= float accumulation on a derivation path; the "
        "byte-identity contract requires math.fsum"
    )
    #: Inclusion scope: only the derivation packages (and fixtures).
    _included = ("repro.obs", "repro.analysis")
    exempt_modules = ("repro.analysis.lint",)

    def applies_to(self, module: str | None) -> bool:
        if module is None:
            return True
        if not super().applies_to(module):
            return False
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self._included
        )

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        visitor = _Visitor(ctx)
        visitor.visit(ctx.tree)
        return visitor.findings


def _attr_is_float_seq(cls: ClassSummary | None, attr: str) -> bool:
    if cls is None:
        return False
    annotation = cls.attr_type(attr)
    if annotation is not None:
        return any(marker in annotation for marker in _FLOAT_SEQ_MARKERS)
    return cls.attr_kind(attr) == "float_seq"


def _attr_is_float(cls: ClassSummary | None, attr: str) -> bool:
    if cls is None:
        return False
    annotation = cls.attr_type(attr)
    if annotation is not None:
        return annotation == "float"
    return cls.attr_kind(attr) == "float"


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._class_stack: list[str] = []
        #: local name -> inferred kind, per function scope.
        self._scopes: list[dict[str, str]] = [{}]
        self._loop_depth = 0

    def _module_class(self, name: str) -> ClassSummary | None:
        mod: ModuleIndex | None = self.ctx.module_index
        if mod is None:
            return None
        return mod.classes.get(name)

    def _current_class(self) -> ClassSummary | None:
        if not self._class_stack:
            return None
        return self._module_class(self._class_stack[-1])

    # -- scope / class tracking -------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._scopes.append({})
        depth, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = depth
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_For(self, node: ast.For) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_While = visit_For  # type: ignore[assignment]

    # -- evidence tracking -------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = _value_kind(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if kind is not None:
                    self._scopes[-1][target.id] = kind
                else:
                    self._scopes[-1].pop(target.id, None)
        self.generic_visit(node)

    # -- the rule ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and len(node.args) >= 1
            and not node.keywords
            and self._is_float_sequence(node.args[0])
        ):
            self.findings.append(
                self.ctx.finding(
                    "FLT001",
                    node,
                    "bare sum() over floats is order/grouping-sensitive in "
                    "the last ulp; use math.fsum for byte-identical "
                    "derivations",
                )
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Add) and self._is_float_accumulator(node):
            self.findings.append(
                self.ctx.finding(
                    "FLT001",
                    node,
                    "running float += accumulation is grouping-sensitive in "
                    "the last ulp; collect samples and math.fsum on read",
                )
            )
        self.generic_visit(node)

    # -- float evidence ----------------------------------------------------

    def _is_float_sequence(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return self._scopes[-1].get(node.id) == "float_seq"
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                return _attr_is_float_seq(self._current_class(), node.attr)
            return False
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._is_float_element(node.elt)
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("list", "sorted")
                and node.args
            ):
                return self._is_float_sequence(node.args[0])
            if isinstance(func, ast.Attribute) and func.attr == "values":
                # ``sum(histogram.values())`` — unresolvable receiver type;
                # stay optimistic.
                return False
        kind = _value_kind(node)
        return kind == "float_seq"

    def _is_float_element(self, node: ast.expr) -> bool:
        if _value_kind(node) == "float":
            return True
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                return _attr_is_float(self._current_class(), node.attr)
        if isinstance(node, ast.Name):
            return self._scopes[-1].get(node.id) == "float"
        return False

    def _is_float_accumulator(self, node: ast.AugAssign) -> bool:
        target = node.target
        if isinstance(target, ast.Name):
            return (
                self._loop_depth > 0
                and self._scopes[-1].get(target.id) == "float"
            )
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if _value_kind(node.value) == "int":
                return False
            return _attr_is_float(self._current_class(), target.attr)
        return False
