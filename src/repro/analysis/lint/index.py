"""The whole-program project index behind the two-pass analyzer.

Pass 1 (:func:`index_module`) is a pure function of one file's content:
it extracts a :class:`ModuleIndex` — imports, per-function
nondeterminism summaries (returns-tainted / sink-reaching / pure), and
per-class fork/merge facts.  Because it depends on nothing but the
source text, summaries are cached across invocations keyed by content
hash (:func:`ModuleIndex.to_payload` / :func:`ModuleIndex.from_payload`).

Pass 2 (:class:`ProjectIndex`) stitches the per-module summaries into a
whole program: it resolves call references across imports, star imports,
re-exports and class hierarchies, and computes each function's *resolved*
return taint as a fixpoint over the call graph (cycles resolve
optimistically to untainted).

Taint is tracked on two channels:

* **value** — the value derives from the wall clock or an unseeded RNG
  (the DET001 hazard class, but propagated interprocedurally);
* **order** — the value is a collection whose iteration order depends on
  hash seeding / insertion history (the DET002 hazard class).

The evaluator is *optimistic on unresolved*: a call or attribute the
index cannot resolve contributes no taint.  That keeps DET004 free of
false positives — the conservative per-file rules still cover syntactic
hazards of unknown provenance.
"""

from __future__ import annotations

import ast
import builtins
import hashlib
import os
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.lint.base import module_name_for
from repro.analysis.lint.det001 import (
    _CLOCK_FUNCS,
    _DATETIME_FUNCS,
    _RANDOM_FUNCS,
)
from repro.analysis.lint.det002 import ORDER_SENSITIVE_SINKS, _first_sink

#: Bump when the summary shape changes; stale caches are discarded.
INDEX_SCHEMA_VERSION = 1

_BUILTIN_NAMES = frozenset(dir(builtins))
_TRANSPARENT = frozenset({"list", "tuple", "reversed", "enumerate", "iter"})
_DICT_VIEWS = frozenset({"keys", "values", "items"})
_MUTATORS = frozenset({"append", "add", "update", "setdefault", "insert", "extend"})

#: ``self.X = <one of these>`` makes a class unpicklable across the fork
#: boundary: constructor attribute chain -> human description.
_PICKLE_HAZARD_CALLS: dict[str, str] = {
    "threading.Lock": "a threading lock",
    "threading.RLock": "a threading lock",
    "threading.Condition": "a threading condition",
    "threading.Event": "a threading event",
    "threading.Semaphore": "a threading semaphore",
    "threading.BoundedSemaphore": "a threading semaphore",
    "multiprocessing.Lock": "a multiprocessing lock",
    "multiprocessing.RLock": "a multiprocessing lock",
    "multiprocessing.Queue": "a multiprocessing queue",
    "open": "an open file handle",
    "os.fdopen": "an open file handle",
    "weakref.ref": "a weak reference",
}


@dataclass(frozen=True)
class Taint:
    """Two-channel taint: direct reasons plus unresolved callee refs."""

    value: frozenset[str] = frozenset()
    order: frozenset[str] = frozenset()
    value_via: frozenset[str] = frozenset()
    order_via: frozenset[str] = frozenset()

    def __or__(self, other: "Taint") -> "Taint":
        return Taint(
            self.value | other.value,
            self.order | other.order,
            self.value_via | other.value_via,
            self.order_via | other.order_via,
        )

    def only_value(self) -> "Taint":
        """The value channel alone (order does not survive a call)."""
        return Taint(value=self.value, value_via=self.value_via)

    @property
    def any_order(self) -> bool:
        return bool(self.order or self.order_via)


EMPTY_TAINT = Taint()


@dataclass(frozen=True)
class SinkEvent:
    """A tainted argument reaching an order-sensitive sink call."""

    sink: str
    line: int
    col: int
    value: tuple[str, ...]
    value_via: tuple[str, ...]
    order: tuple[str, ...]
    order_via: tuple[str, ...]


@dataclass(frozen=True)
class LoopEvent:
    """A loop over an order-tainted iterable whose body hits a sink."""

    sink: str
    line: int
    col: int
    order: tuple[str, ...]
    order_via: tuple[str, ...]


@dataclass(frozen=True)
class FunctionSummary:
    """One function's nondeterminism summary (pass-1, per-module)."""

    name: str
    lineno: int
    kind: str
    calls: tuple[str, ...]
    return_value: tuple[str, ...]
    return_value_via: tuple[str, ...]
    return_order: tuple[str, ...]
    return_order_via: tuple[str, ...]
    sink_events: tuple[SinkEvent, ...]
    loop_events: tuple[LoopEvent, ...]

    @property
    def pure(self) -> bool:
        """No taint returned, no sink reached — trivially safe."""
        return not (
            self.return_value
            or self.return_value_via
            or self.return_order
            or self.return_order_via
            or self.sink_events
            or self.loop_events
        )


@dataclass(frozen=True)
class ClassSummary:
    """One class's fork/merge-safety and float-identity facts."""

    name: str
    lineno: int
    bases: tuple[str, ...]
    methods: tuple[tuple[str, str], ...]
    slots: tuple[str, ...]
    has_slots: bool
    hazards: tuple[tuple[str, str, int], ...]
    store_attrs: tuple[tuple[str, str, int], ...]
    constructed: tuple[str, ...]
    attr_types: tuple[tuple[str, str], ...]
    attr_kinds: tuple[tuple[str, str], ...]
    writes_next_id: bool
    has_merge_from: bool
    merge_from_line: int
    merge_reads_next_id: bool
    merge_writes_next_id: bool

    def method_kind(self, name: str) -> str | None:
        for method, kind in self.methods:
            if method == name:
                return kind
        return None

    def attr_type(self, name: str) -> str | None:
        for attr, annotation in self.attr_types:
            if attr == name:
                return annotation
        return None

    def attr_kind(self, name: str) -> str | None:
        for attr, kind in self.attr_kinds:
            if attr == name:
                return kind
        return None


@dataclass
class ModuleIndex:
    """Everything pass 2 needs to know about one module."""

    path: str
    module: str | None
    import_name: str
    content_hash: str
    imports: dict[str, str] = field(default_factory=dict)
    star_imports: tuple[str, ...] = ()
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "import_name": self.import_name,
            "content_hash": self.content_hash,
            "imports": dict(sorted(self.imports.items())),
            "star_imports": list(self.star_imports),
            "functions": {
                name: _function_payload(fn)
                for name, fn in sorted(self.functions.items())
            },
            "classes": {
                name: _class_payload(cls)
                for name, cls in sorted(self.classes.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ModuleIndex":
        return cls(
            path=payload["path"],
            module=payload["module"],
            import_name=payload["import_name"],
            content_hash=payload["content_hash"],
            imports=dict(payload["imports"]),
            star_imports=tuple(payload["star_imports"]),
            functions={
                name: _function_from_payload(raw)
                for name, raw in payload["functions"].items()
            },
            classes={
                name: _class_from_payload(raw)
                for name, raw in payload["classes"].items()
            },
        )


def _function_payload(fn: FunctionSummary) -> dict[str, Any]:
    return {
        "name": fn.name,
        "lineno": fn.lineno,
        "kind": fn.kind,
        "calls": list(fn.calls),
        "return_value": list(fn.return_value),
        "return_value_via": list(fn.return_value_via),
        "return_order": list(fn.return_order),
        "return_order_via": list(fn.return_order_via),
        "sink_events": [
            [e.sink, e.line, e.col, list(e.value), list(e.value_via),
             list(e.order), list(e.order_via)]
            for e in fn.sink_events
        ],
        "loop_events": [
            [e.sink, e.line, e.col, list(e.order), list(e.order_via)]
            for e in fn.loop_events
        ],
    }


def _function_from_payload(raw: dict[str, Any]) -> FunctionSummary:
    return FunctionSummary(
        name=raw["name"],
        lineno=raw["lineno"],
        kind=raw["kind"],
        calls=tuple(raw["calls"]),
        return_value=tuple(raw["return_value"]),
        return_value_via=tuple(raw["return_value_via"]),
        return_order=tuple(raw["return_order"]),
        return_order_via=tuple(raw["return_order_via"]),
        sink_events=tuple(
            SinkEvent(e[0], e[1], e[2], tuple(e[3]), tuple(e[4]),
                      tuple(e[5]), tuple(e[6]))
            for e in raw["sink_events"]
        ),
        loop_events=tuple(
            LoopEvent(e[0], e[1], e[2], tuple(e[3]), tuple(e[4]))
            for e in raw["loop_events"]
        ),
    )


def _class_payload(cls: ClassSummary) -> dict[str, Any]:
    return {
        "name": cls.name,
        "lineno": cls.lineno,
        "bases": list(cls.bases),
        "methods": [list(pair) for pair in cls.methods],
        "slots": list(cls.slots),
        "has_slots": cls.has_slots,
        "hazards": [list(entry) for entry in cls.hazards],
        "store_attrs": [list(entry) for entry in cls.store_attrs],
        "constructed": list(cls.constructed),
        "attr_types": [list(pair) for pair in cls.attr_types],
        "attr_kinds": [list(pair) for pair in cls.attr_kinds],
        "writes_next_id": cls.writes_next_id,
        "has_merge_from": cls.has_merge_from,
        "merge_from_line": cls.merge_from_line,
        "merge_reads_next_id": cls.merge_reads_next_id,
        "merge_writes_next_id": cls.merge_writes_next_id,
    }


def _class_from_payload(raw: dict[str, Any]) -> ClassSummary:
    return ClassSummary(
        name=raw["name"],
        lineno=raw["lineno"],
        bases=tuple(raw["bases"]),
        methods=tuple((m[0], m[1]) for m in raw["methods"]),
        slots=tuple(raw["slots"]),
        has_slots=raw["has_slots"],
        hazards=tuple((h[0], h[1], h[2]) for h in raw["hazards"]),
        store_attrs=tuple((s[0], s[1], s[2]) for s in raw["store_attrs"]),
        constructed=tuple(raw["constructed"]),
        attr_types=tuple((a[0], a[1]) for a in raw["attr_types"]),
        attr_kinds=tuple((a[0], a[1]) for a in raw["attr_kinds"]),
        writes_next_id=raw["writes_next_id"],
        has_merge_from=raw["has_merge_from"],
        merge_from_line=raw["merge_from_line"],
        merge_reads_next_id=raw["merge_reads_next_id"],
        merge_writes_next_id=raw["merge_writes_next_id"],
    )


def import_name_for(path: str) -> str:
    """Dotted import name by walking enclosing ``__init__.py`` packages.

    ``src/repro/sim/kernel.py`` -> ``repro.sim.kernel``;
    ``/tmp/fixtures/helper.py`` -> ``helper`` (no enclosing package).
    Distinct from :func:`~repro.analysis.lint.base.module_name_for`,
    which anchors on a ``repro`` path segment for *rule scoping* — this
    name exists so import resolution works in any fixture directory.
    """
    absolute = os.path.abspath(path)
    directory, filename = os.path.split(absolute)
    parts = [filename[:-3]] if filename.endswith(".py") else [filename]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.append(package)
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


# -- pass 1: per-module extraction ----------------------------------------


class _SourceTables:
    """DET001-style alias tracking for direct entropy-source detection."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}
        self.bare: dict[str, str] = {}

    def scan(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name in (
                    "time", "random", "datetime", "numpy", "numpy.random",
                    "os", "uuid", "secrets",
                ):
                    target = alias.name
                    if alias.asname is None and "." in alias.name:
                        target = alias.name.split(".")[0]
                    self.aliases[bound] = target
            return
        if node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_FUNCS:
                    self.bare[alias.asname or alias.name] = f"time.{alias.name}"
        elif node.module == "random":
            for alias in node.names:
                if alias.name in _RANDOM_FUNCS:
                    self.bare[alias.asname or alias.name] = f"random.{alias.name}"
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.aliases[alias.asname or alias.name] = "datetime.datetime"
        elif node.module in ("numpy", "numpy.random"):
            for alias in node.names:
                if node.module == "numpy" and alias.name == "random":
                    self.aliases[alias.asname or alias.name] = "numpy.random"
        elif node.module == "os":
            for alias in node.names:
                if alias.name == "urandom":
                    self.bare[alias.asname or alias.name] = "os.urandom"
        elif node.module == "uuid":
            for alias in node.names:
                if alias.name in ("uuid1", "uuid4"):
                    self.bare[alias.asname or alias.name] = f"uuid.{alias.name}"
        elif node.module == "secrets":
            for alias in node.names:
                self.bare[alias.asname or alias.name] = f"secrets.{alias.name}"

    def source_reason(self, node: ast.Call) -> str | None:
        """Why this call reads the wall clock / ambient entropy, if it does."""
        func = node.func
        if isinstance(func, ast.Name):
            origin = self.bare.get(func.id)
            return f"{origin}()" if origin is not None else None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name):
            origin = self.aliases.get(base.id)
            if origin == "time" and func.attr in _CLOCK_FUNCS:
                return f"time.{func.attr}()"
            if origin == "random" and func.attr in _RANDOM_FUNCS:
                return f"random.{func.attr}()"
            if origin == "random" and func.attr == "Random" and not node.args:
                return "random.Random() (unseeded)"
            if origin in ("datetime", "datetime.datetime") and func.attr in _DATETIME_FUNCS:
                return f"datetime {func.attr}()"
            if origin == "numpy.random":
                return f"numpy.random.{func.attr}()"
            if origin == "os" and func.attr == "urandom":
                return "os.urandom()"
            if origin == "uuid" and func.attr in ("uuid1", "uuid4"):
                return f"uuid.{func.attr}()"
            if origin == "secrets":
                return f"secrets.{func.attr}()"
        elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            outer = self.aliases.get(base.value.id)
            if outer == "numpy" and base.attr == "random":
                return f"numpy.random.{func.attr}()"
            if outer == "datetime" and base.attr in ("datetime", "date"):
                if func.attr in _DATETIME_FUNCS:
                    return f"datetime.{base.attr}.{func.attr}()"
        return None


class _ClassFacts:
    """Mutable accumulator for one class's FRK/FLT facts."""

    def __init__(self) -> None:
        self.hazards: list[tuple[str, str, int]] = []
        self.store_attrs: list[tuple[str, str, int]] = []
        self.constructed: list[str] = []
        self.attr_types: dict[str, str] = {}
        self.attr_kinds: dict[str, str] = {}
        self.writes_next_id = False
        self.merge_reads_next_id = False
        self.merge_writes_next_id = False


def _callee_ref(func: ast.expr) -> str | None:
    """Textual reference of a call target: ``f``, ``mod.f``, ``self.m``."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return ".".join(parts)


def _hazard_reason(node: ast.expr) -> str | None:
    """Why this constructor value is unpicklable, if it is."""
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.GeneratorExp):
        return "a generator"
    if isinstance(node, ast.Call):
        ref = _callee_ref(node.func)
        if ref is not None:
            return _PICKLE_HAZARD_CALLS.get(ref)
    return None


def _value_kind(node: ast.expr) -> str | None:
    """Shallow type evidence for FLT001: float / int / float_seq."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool):
            return None
        if isinstance(node.value, float):
            return "float"
        if isinstance(node.value, int):
            return "int"
        return None
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "float":
                return "float"
            if func.id == "int":
                return "int"
            if func.id in ("sorted", "list") and node.args:
                inner = _value_kind(node.args[0])
                if inner in ("float", "float_seq"):
                    return "float_seq"
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        if _value_kind(node.elt) == "float":
            return "float_seq"
    if isinstance(node, (ast.List, ast.Tuple)) and node.elts:
        kinds = {_value_kind(elt) for elt in node.elts}
        if kinds == {"float"}:
            return "float_seq"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return "float"
    return None


class _FunctionTaint:
    """Single-pass taint walk over one function body.

    Resolution is deferred: calls the walk cannot classify locally are
    recorded as symbolic ``via`` references for pass 2 to resolve.
    """

    def __init__(
        self,
        tables: _SourceTables,
        class_name: str | None,
        property_names: frozenset[str],
        facts: _ClassFacts | None,
        method_name: str | None,
    ) -> None:
        self.tables = tables
        self.class_name = class_name
        self.property_names = property_names
        self.facts = facts
        self.in_init = method_name == "__init__"
        self.in_merge_from = method_name == "merge_from"
        self.env: dict[str, Taint] = {}
        self.var_kinds: dict[str, str] = {}
        self.calls: list[str] = []
        self.ret = EMPTY_TAINT
        self.sink_events: list[SinkEvent] = []
        self.loop_events: list[LoopEvent] = []
        self._order_ctx: list[Taint] = []

    def run(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for stmt in node.body:
            self._stmt(stmt)

    # -- statements --------------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            taint = self._expr(node.value)
            for target in node.targets:
                self._bind(target, taint, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self._expr(node.value), node.value)
            self._record_annotation(node)
        elif isinstance(node, ast.AugAssign):
            taint = self._expr(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = self.env.get(
                    node.target.id, EMPTY_TAINT
                ) | taint
            elif self._is_self_attr(node.target, "_next_id"):
                self._note_next_id_write()
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.ret = self.ret | self._expr(node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._loop(node)
        elif isinstance(node, ast.While):
            self._expr(node.test)
            for stmt in node.body + node.orelse:
                self._stmt(stmt)
        elif isinstance(node, ast.If):
            self._expr(node.test)
            for stmt in node.body + node.orelse:
                self._stmt(stmt)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                taint = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint, item.context_expr)
            for stmt in node.body:
                self._stmt(stmt)
        elif isinstance(node, ast.Try):
            for stmt in node.body + node.orelse + node.finalbody:
                self._stmt(stmt)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._stmt(stmt)
        elif isinstance(node, ast.Expr):
            self._expr(node.value)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)
        # Nested function/class definitions are deliberately skipped:
        # their bodies run in a different dynamic context and the
        # optimistic design prefers silence over mis-attributed taint.

    def _loop(self, node: ast.For | ast.AsyncFor) -> None:
        taint = self._expr(node.iter)
        # Elements carry the iterable's *value* taint; iteration order
        # carries its *order* taint.
        self._bind(node.target, taint.only_value(), None)
        if taint.any_order:
            sink = _first_sink(list(node.body))
            if sink is not None:
                self.loop_events.append(
                    LoopEvent(
                        sink=sink,
                        line=node.iter.lineno,
                        col=node.iter.col_offset,
                        order=tuple(sorted(taint.order)),
                        order_via=tuple(sorted(taint.order_via)),
                    )
                )
        self._order_ctx.append(Taint(order=taint.order, order_via=taint.order_via))
        for stmt in node.body + node.orelse:
            self._stmt(stmt)
        self._order_ctx.pop()

    # -- binding -----------------------------------------------------------

    def _bind(
        self, target: ast.expr, taint: Taint, value: ast.expr | None
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
            if value is not None:
                kind = _value_kind(value)
                if kind is not None:
                    self.var_kinds[target.id] = kind
                else:
                    self.var_kinds.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._bind(inner, taint, None)
        elif isinstance(target, ast.Attribute):
            self._bind_attribute(target, value)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name) and self._loop_order().any_order:
                # Building a dict/list keyed in tainted iteration order.
                self.env[base.id] = self.env.get(base.id, EMPTY_TAINT) | (
                    self._loop_order() | taint.only_value()
                )

    def _bind_attribute(self, target: ast.Attribute, value: ast.expr | None) -> None:
        if self.facts is None or not self._is_self_attr(target, None):
            return
        attr = target.attr
        if attr == "_next_id":
            self._note_next_id_write()
        if value is None:
            return
        kind = _value_kind(value)
        if kind is None and isinstance(value, ast.Name):
            kind = self.var_kinds.get(value.id)
        if kind is not None and attr not in self.facts.attr_kinds:
            self.facts.attr_kinds[attr] = kind
        hazard = _hazard_reason(value)
        if hazard is not None:
            self.facts.hazards.append((attr, hazard, target.lineno))
        if self.in_init and isinstance(value, ast.Call):
            ref = _callee_ref(value.func)
            if ref is not None and not ref.startswith(("self.", "cls.")):
                head = ref.split(".", 1)[0]
                if head and (head[0].isupper() or "." in ref):
                    self.facts.store_attrs.append((attr, ref, target.lineno))

    def _record_annotation(self, node: ast.AnnAssign) -> None:
        if self.facts is None:
            return
        if isinstance(node.target, ast.Attribute) and self._is_self_attr(
            node.target, None
        ):
            self.facts.attr_types[node.target.attr] = ast.unparse(node.annotation)

    def _is_self_attr(self, node: ast.expr, attr: str | None) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
            and (attr is None or node.attr == attr)
        )

    def _note_next_id_write(self) -> None:
        if self.facts is None:
            return
        if self.in_merge_from:
            self.facts.merge_writes_next_id = True
        else:
            self.facts.writes_next_id = True

    def _loop_order(self) -> Taint:
        merged = EMPTY_TAINT
        for ctx in self._order_ctx:
            merged = merged | ctx
        return merged

    # -- expressions -------------------------------------------------------

    def _expr(self, node: ast.expr) -> Taint:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY_TAINT)
        if isinstance(node, ast.Constant):
            return EMPTY_TAINT
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            inner = EMPTY_TAINT
            if isinstance(node, ast.Set):
                for elt in node.elts:
                    inner = inner | self._expr(elt)
            else:
                inner = self._comprehension(node, [node.elt])
            return inner.only_value() | Taint(order=frozenset({"a set literal"}))
        if isinstance(node, ast.Dict):
            merged = EMPTY_TAINT
            for key in node.keys:
                if key is not None:
                    merged = merged | self._expr(key)
            for dict_value in node.values:
                merged = merged | self._expr(dict_value)
            return merged
        if isinstance(node, ast.DictComp):
            return self._comprehension(node, [node.key, node.value])
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._comprehension(node, [node.elt])
        if isinstance(node, ast.Attribute):
            base = self._expr(node.value)
            if (
                self.class_name is not None
                and self._is_self_attr(node, None)
                and node.attr in self.property_names
            ):
                ref = f"self.{node.attr}"
                self.calls.append(ref)
                return Taint(
                    value_via=frozenset({ref}), order_via=frozenset({ref})
                )
            return base
        if isinstance(node, ast.Subscript):
            return self._expr(node.value) | self._expr(node.slice).only_value()
        if isinstance(node, ast.BoolOp):
            merged = EMPTY_TAINT
            for operand in node.values:
                merged = merged | self._expr(operand)
            return merged
        if isinstance(node, ast.BinOp):
            return self._expr(node.left) | self._expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._expr(node.operand)
        if isinstance(node, ast.Compare):
            merged = self._expr(node.left)
            for comparator in node.comparators:
                merged = merged | self._expr(comparator)
            return merged.only_value()
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            return self._expr(node.body) | self._expr(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            merged = EMPTY_TAINT
            for elt in node.elts:
                merged = merged | self._expr(elt)
            return merged
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        if isinstance(node, ast.JoinedStr):
            merged = EMPTY_TAINT
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    merged = merged | self._expr(part.value)
            return merged.only_value()
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._expr(node.value) if node.value is not None else EMPTY_TAINT
        if isinstance(node, ast.NamedExpr):
            taint = self._expr(node.value)
            self._bind(node.target, taint, node.value)
            return taint
        return EMPTY_TAINT

    def _comprehension(
        self,
        node: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp,
        elements: list[ast.expr],
    ) -> Taint:
        merged = EMPTY_TAINT
        order = EMPTY_TAINT
        for generator in node.generators:
            taint = self._expr(generator.iter)
            self._bind(generator.target, taint.only_value(), None)
            merged = merged | taint
            order = order | Taint(order=taint.order, order_via=taint.order_via)
        element_taint = EMPTY_TAINT
        for element in elements:
            element_taint = element_taint | self._expr(element)
        if order.any_order:
            sink = _first_sink(list(elements))
            if sink is not None:
                self.loop_events.append(
                    LoopEvent(
                        sink=sink,
                        line=node.generators[0].iter.lineno,
                        col=node.generators[0].iter.col_offset,
                        order=tuple(sorted(order.order)),
                        order_via=tuple(sorted(order.order_via)),
                    )
                )
        # The produced collection inherits element value taint and the
        # generators' iteration-order taint.
        return element_taint.only_value() | order | merged.only_value()

    def _call(self, node: ast.Call) -> Taint:
        arg_taints = [self._expr(arg) for arg in node.args]
        arg_taints.extend(self._expr(kw.value) for kw in node.keywords)
        args_full = EMPTY_TAINT
        for taint in arg_taints:
            args_full = args_full | taint
        args_value = args_full.only_value()
        func = node.func

        if isinstance(func, ast.Attribute) and func.attr in ORDER_SENSITIVE_SINKS:
            self._expr(func.value)
            if args_full is not EMPTY_TAINT and (
                args_full.value or args_full.value_via
                or args_full.order or args_full.order_via
            ):
                self.sink_events.append(
                    SinkEvent(
                        sink=func.attr,
                        line=node.lineno,
                        col=node.col_offset,
                        value=tuple(sorted(args_full.value)),
                        value_via=tuple(sorted(args_full.value_via)),
                        order=tuple(sorted(args_full.order)),
                        order_via=tuple(sorted(args_full.order_via)),
                    )
                )
            return EMPTY_TAINT

        reason = self.tables.source_reason(node)
        if reason is not None:
            return Taint(value=frozenset({reason}))

        if isinstance(func, ast.Name):
            name = func.id
            first = arg_taints[0] if node.args else EMPTY_TAINT
            if name == "sorted":
                return first.only_value() | args_value
            if name in _TRANSPARENT:
                return first | args_value
            if name in ("set", "frozenset"):
                return args_value | Taint(
                    order=frozenset({f"a {name}() call"})
                )
            if name == "dict":
                return first | args_value
            ref = _callee_ref(func)
            if ref is not None and name not in _BUILTIN_NAMES:
                self.calls.append(ref)
                return args_value | Taint(
                    value_via=frozenset({ref}), order_via=frozenset({ref})
                )
            return args_value

        if isinstance(func, ast.Attribute):
            receiver = self._expr(func.value)
            if func.attr in _DICT_VIEWS and not node.args and not node.keywords:
                return receiver
            if func.attr in _MUTATORS:
                self._mutate_receiver(func.value, args_full)
                return EMPTY_TAINT
            if func.attr in ("pop", "popitem", "copy", "get"):
                return receiver.only_value() | args_value
            ref = _callee_ref(func)
            if ref is not None:
                self.calls.append(ref)
                return args_value | Taint(
                    value_via=frozenset({ref}), order_via=frozenset({ref})
                )
            return args_value | receiver.only_value()

        return args_value

    def _mutate_receiver(self, receiver: ast.expr, args: Taint) -> None:
        """``x.append(...)`` in a tainted-order loop taints ``x``'s order."""
        if not isinstance(receiver, ast.Name):
            return
        loop = self._loop_order()
        if loop.any_order or args.value or args.value_via:
            self.env[receiver.id] = self.env.get(receiver.id, EMPTY_TAINT) | (
                loop | args.only_value()
            )


def _method_kind(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name):
            if decorator.id == "property":
                return "property"
            if decorator.id == "classmethod":
                return "classmethod"
            if decorator.id == "staticmethod":
                return "staticmethod"
        elif isinstance(decorator, ast.Attribute) and decorator.attr == "setter":
            return "property"
    return "method"


def _literal_slots(node: ast.expr) -> tuple[str, ...] | None:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        names: list[str] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                names.append(elt.value)
            else:
                return None
        return tuple(names)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return (node.value,)
    return None


class _NextIdReads(ast.NodeVisitor):
    """Detect ``self._next_id`` loads inside a ``merge_from`` body."""

    def __init__(self) -> None:
        self.found = False

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and node.attr == "_next_id"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            self.found = True
        self.generic_visit(node)


def index_module(
    path: str, display_path: str, source: str, tree: ast.Module
) -> ModuleIndex:
    """Pass 1: extract one module's summary (pure function of content)."""
    mod = ModuleIndex(
        path=display_path,
        module=module_name_for(path),
        import_name=import_name_for(path),
        content_hash=content_hash(source),
    )
    tables = _SourceTables()

    for node in tree.body:
        if isinstance(node, ast.Import):
            tables.scan(node)
            for alias in node.names:
                if alias.asname:
                    mod.imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    mod.imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            tables.scan(node)
            base = node.module or ""
            if node.level:
                # Relative import: anchor on the enclosing package.
                parts = mod.import_name.split(".")
                anchor = parts[: len(parts) - node.level]
                base = ".".join(anchor + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    mod.star_imports = mod.star_imports + (base,)
                else:
                    mod.imports[alias.asname or alias.name] = f"{base}.{alias.name}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions[node.name] = _summarize_function(
                node, tables, None, frozenset(), None
            )
        elif isinstance(node, ast.ClassDef):
            _index_class(mod, node, tables)
    return mod


def _summarize_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    tables: _SourceTables,
    class_name: str | None,
    property_names: frozenset[str],
    facts: _ClassFacts | None,
    kind: str = "function",
) -> FunctionSummary:
    walker = _FunctionTaint(
        tables, class_name, property_names, facts,
        node.name if class_name else None,
    )
    walker.run(node)
    name = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionSummary(
        name=name,
        lineno=node.lineno,
        kind=kind,
        calls=tuple(sorted(set(walker.calls))),
        return_value=tuple(sorted(walker.ret.value)),
        return_value_via=tuple(sorted(walker.ret.value_via)),
        return_order=tuple(sorted(walker.ret.order)),
        return_order_via=tuple(sorted(walker.ret.order_via)),
        sink_events=tuple(walker.sink_events),
        loop_events=tuple(walker.loop_events),
    )


def _index_class(mod: ModuleIndex, node: ast.ClassDef, tables: _SourceTables) -> None:
    methods: dict[str, str] = {}
    bodies: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    slots: tuple[str, ...] = ()
    has_slots = False
    facts = _ClassFacts()
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[item.name] = _method_kind(item)
            bodies.append(item)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    declared = _literal_slots(item.value)
                    if declared is not None:
                        slots = declared
                        has_slots = True
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            facts.attr_types[item.target.id] = ast.unparse(item.annotation)
            if item.value is not None:
                kind = _value_kind(item.value)
                if kind is not None:
                    facts.attr_kinds[item.target.id] = kind

    property_names = frozenset(
        name for name, kind in methods.items() if kind == "property"
    )
    merge_from_line = 0
    for body in bodies:
        kind = methods[body.name]
        mod.functions[f"{node.name}.{body.name}"] = _summarize_function(
            body, tables, node.name, property_names, facts, kind
        )
        if body.name == "merge_from":
            merge_from_line = body.lineno
            reads = _NextIdReads()
            reads.visit(body)
            facts.merge_reads_next_id = reads.found
        for call in mod.functions[f"{node.name}.{body.name}"].calls:
            if not call.startswith(("self.", "cls.")):
                head = call.split(".", 1)[0]
                if head and head[0].isupper():
                    facts.constructed.append(call)

    mod.classes[node.name] = ClassSummary(
        name=node.name,
        lineno=node.lineno,
        bases=tuple(
            ref for ref in (_callee_ref(base) for base in node.bases)
            if ref is not None
        ),
        methods=tuple(sorted(methods.items())),
        slots=slots,
        has_slots=has_slots,
        hazards=tuple(facts.hazards),
        store_attrs=tuple(facts.store_attrs),
        constructed=tuple(sorted(set(facts.constructed))),
        attr_types=tuple(sorted(facts.attr_types.items())),
        attr_kinds=tuple(sorted(facts.attr_kinds.items())),
        writes_next_id=facts.writes_next_id,
        has_merge_from="merge_from" in methods,
        merge_from_line=merge_from_line,
        merge_reads_next_id=facts.merge_reads_next_id,
        merge_writes_next_id=facts.merge_writes_next_id,
    )


def content_hash(source: str) -> str:
    """Cache key of one file's pass-1 summary."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# -- pass 2: whole-program resolution -------------------------------------


@dataclass(frozen=True)
class ResolvedTaint:
    """Taint with every reachable ``via`` reference folded in."""

    value: frozenset[str] = frozenset()
    order: frozenset[str] = frozenset()


EMPTY_RESOLVED = ResolvedTaint()

_MAX_RESOLVE_DEPTH = 8


def _annotate(reason: str, label: str) -> str:
    """Attach the defining call site once; inner hops keep their label."""
    if " via " in reason:
        return reason
    return f"{reason} via {label}()"


class ProjectIndex:
    """The stitched whole-program view rules run against."""

    def __init__(self, modules: list[ModuleIndex]) -> None:
        self.modules: dict[str, ModuleIndex] = {m.path: m for m in modules}
        self.by_import_name: dict[str, ModuleIndex] = {}
        for mod in modules:
            self.by_import_name.setdefault(mod.import_name, mod)
        self._return_memo: dict[tuple[str, str], ResolvedTaint] = {}
        self._in_progress: set[tuple[str, str]] = set()

    def module_for(self, display_path: str) -> ModuleIndex | None:
        return self.modules.get(display_path)

    # -- symbol resolution -------------------------------------------------

    def resolve_callable(
        self,
        mod: ModuleIndex,
        scope_class: str | None,
        ref: str,
        depth: int = 0,
    ) -> tuple[ModuleIndex, str] | None:
        """``(defining module, qualified name)`` for a call ref, or None."""
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        parts = ref.split(".")
        if parts[0] in ("self", "cls"):
            if scope_class is None or len(parts) != 2:
                return None
            return self._resolve_method(mod, scope_class, parts[1])
        if len(parts) == 1:
            name = parts[0]
            if name in mod.functions:
                return (mod, name)
            if name in mod.classes:
                return None  # constructor: optimistically untainted
            target = mod.imports.get(name)
            if target is not None and target != name:
                return self._resolve_fq(target, depth + 1)
            for star in mod.star_imports:
                hit = self._resolve_fq(f"{star}.{name}", depth + 1)
                if hit is not None:
                    return hit
            return None
        head = parts[0]
        if head in mod.classes and len(parts) == 2:
            return self._resolve_method(mod, head, parts[1])
        target = mod.imports.get(head)
        if target is not None:
            return self._resolve_fq(
                ".".join([target] + parts[1:]), depth + 1
            )
        return None

    def _resolve_fq(
        self, fq: str, depth: int
    ) -> tuple[ModuleIndex, str] | None:
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        parts = fq.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            owner = self.by_import_name.get(".".join(parts[:cut]))
            if owner is None:
                continue
            symbol = ".".join(parts[cut:])
            if symbol in owner.functions:
                return (owner, symbol)
            first = parts[cut]
            rest = parts[cut + 1:]
            if first in owner.classes and len(rest) == 1:
                return self._resolve_method(owner, first, rest[0])
            reexport = owner.imports.get(first)
            if reexport is not None and reexport != first:
                return self._resolve_fq(
                    ".".join([reexport] + rest), depth + 1
                )
            for star in owner.star_imports:
                hit = self._resolve_fq(
                    ".".join([star, first] + rest), depth + 1
                )
                if hit is not None:
                    return hit
            return None
        return None

    def _resolve_method(
        self,
        mod: ModuleIndex,
        class_name: str,
        method: str,
        depth: int = 0,
    ) -> tuple[ModuleIndex, str] | None:
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        cls = mod.classes.get(class_name)
        if cls is None:
            return None
        qualified = f"{class_name}.{method}"
        if qualified in mod.functions:
            return (mod, qualified)
        for base_ref in cls.bases:
            base = self.resolve_class(mod, base_ref)
            if base is not None:
                hit = self._resolve_method(base[0], base[1].name, method, depth + 1)
                if hit is not None:
                    return hit
        return None

    def resolve_class(
        self, mod: ModuleIndex, ref: str, depth: int = 0
    ) -> tuple[ModuleIndex, ClassSummary] | None:
        """``(defining module, class summary)`` for a class ref, or None."""
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        parts = ref.split(".")
        if len(parts) == 1:
            summary = mod.classes.get(ref)
            if summary is not None:
                return (mod, summary)
            target = mod.imports.get(ref)
            if target is not None and target != ref:
                return self._resolve_class_fq(target, depth + 1)
            for star in mod.star_imports:
                hit = self._resolve_class_fq(f"{star}.{ref}", depth + 1)
                if hit is not None:
                    return hit
            return None
        target = mod.imports.get(parts[0])
        if target is not None:
            return self._resolve_class_fq(
                ".".join([target] + parts[1:]), depth + 1
            )
        return None

    def _resolve_class_fq(
        self, fq: str, depth: int
    ) -> tuple[ModuleIndex, ClassSummary] | None:
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        parts = fq.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            owner = self.by_import_name.get(".".join(parts[:cut]))
            if owner is None:
                continue
            symbol = ".".join(parts[cut:])
            summary = owner.classes.get(symbol)
            if summary is not None:
                return (owner, summary)
            first = parts[cut]
            rest = parts[cut + 1:]
            reexport = owner.imports.get(first)
            if reexport is not None and reexport != first:
                return self._resolve_class_fq(
                    ".".join([reexport] + rest), depth + 1
                )
            for star in owner.star_imports:
                hit = self._resolve_class_fq(
                    ".".join([star, first] + rest), depth + 1
                )
                if hit is not None:
                    return hit
            return None
        return None

    # -- taint fixpoint ----------------------------------------------------

    def return_taint(self, mod: ModuleIndex, qualname: str) -> ResolvedTaint:
        """A function's resolved return taint (cycles resolve untainted)."""
        key = (mod.path, qualname)
        cached = self._return_memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return EMPTY_RESOLVED
        summary = mod.functions.get(qualname)
        if summary is None:
            return EMPTY_RESOLVED
        self._in_progress.add(key)
        try:
            scope_class = qualname.split(".")[0] if "." in qualname else None
            value = set(summary.return_value)
            order = set(summary.return_order)
            resolved_value, _ = self.resolve_via(
                mod, scope_class, summary.return_value_via
            )
            _, resolved_order = self.resolve_via(
                mod, scope_class, summary.return_order_via
            )
            value |= resolved_value
            order |= resolved_order
            result = ResolvedTaint(frozenset(value), frozenset(order))
        finally:
            self._in_progress.discard(key)
        self._return_memo[key] = result
        return result

    def resolve_via(
        self,
        mod: ModuleIndex,
        scope_class: str | None,
        refs: tuple[str, ...] | frozenset[str],
    ) -> tuple[frozenset[str], frozenset[str]]:
        """Resolved ``(value, order)`` taint contributed by callee refs."""
        value: set[str] = set()
        order: set[str] = set()
        for ref in sorted(refs):
            target = self.resolve_callable(mod, scope_class, ref)
            if target is None:
                continue  # optimistic: unresolved calls contribute nothing
            taint = self.return_taint(*target)
            label = f"{target[0].import_name}.{target[1]}"
            value |= {_annotate(reason, label) for reason in taint.value}
            order |= {_annotate(reason, label) for reason in taint.order}
        return frozenset(value), frozenset(order)

    def call_order_taint(
        self, mod: ModuleIndex, scope_class: str | None, ref: str
    ) -> frozenset[str] | None:
        """Resolved order taint of a call's return, or None if unresolvable.

        DET002 uses this to tell *proven-ordered* dict views (resolvable,
        untainted: skip the conservative finding) apart from unknown ones
        (unresolvable: keep it) — tainted resolvable ones are DET004's.
        """
        target = self.resolve_callable(mod, scope_class, ref)
        if target is None:
            return None
        return self.return_taint(*target).order
