"""The ``repro lint`` engine: file walking, rule driving, baselines.

The engine parses each file once, hands the tree to every selected rule
(file rules report immediately; project rules accumulate and report in
``finalize``), then applies two suppression layers:

* **inline**: a ``# lint: ignore[CODE]`` comment on the flagged line
  (or a bare ``# lint: ignore`` for all codes) — for sites a human has
  verified are deterministic despite matching a conservative pattern;
* **baseline**: a JSON file of fingerprints with mandatory reasons —
  for debt that is tracked rather than fixed.  Baseline entries that no
  longer match anything are *stale* and fail the run, so the file can
  only shrink.

Everything is deterministic: files are walked in sorted order and
findings are sorted by ``(path, line, col, code)``.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field

from repro.analysis.lint.base import (
    FileContext,
    Finding,
    ProjectContext,
    Rule,
    module_name_for,
)
from repro.analysis.lint.det001 import Det001WallClockEntropy
from repro.analysis.lint.det002 import Det002UnorderedIteration
from repro.analysis.lint.det003 import Det003IdentityOrdering
from repro.analysis.lint.det004 import Det004InterproceduralTaint
from repro.analysis.lint.flt001 import Flt001FloatIdentity
from repro.analysis.lint.frk import (
    Frk001UnpicklableAcrossFork,
    Frk002MergeContract,
)
from repro.analysis.lint.index import (
    INDEX_SCHEMA_VERSION,
    ModuleIndex,
    ProjectIndex,
    content_hash,
    index_module,
)
from repro.analysis.lint.obs001 import Obs001TaxonomyDrift
from repro.analysis.lint.sim001 import Sim001KernelInvariants
from repro.analysis.lint.slot001 import Slot001UndeclaredSlot

#: JSON schema version of ``--json`` output and baseline files.
LINT_SCHEMA_VERSION = 2

#: Every shipped rule, in code order.
ALL_RULES: tuple[type[Rule], ...] = (
    Det001WallClockEntropy,
    Det002UnorderedIteration,
    Det003IdentityOrdering,
    Det004InterproceduralTaint,
    Frk001UnpicklableAcrossFork,
    Frk002MergeContract,
    Flt001FloatIdentity,
    Sim001KernelInvariants,
    Slot001UndeclaredSlot,
    Obs001TaxonomyDrift,
)

RULE_CODES: tuple[str, ...] = tuple(rule.code for rule in ALL_RULES)

_INLINE_IGNORE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)


class LintUsageError(ValueError):
    """Bad selection, unreadable baseline, or missing path."""


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding]
    files_scanned: int
    suppressed_inline: int = 0
    suppressed_baseline: int = 0
    stale_baseline: list[dict[str, str]] = field(default_factory=list)
    #: Modules summarized for the whole-program index (pass 1 scope).
    indexed_modules: int = 0
    #: Of those, how many were served from the incremental cache.
    cached_modules: int = 0
    #: Baseline accounting (zeroes when no ``--baseline`` was given).
    baseline_used: bool = False
    baseline_entries: int = 0
    baseline_counts: dict[str, int] = field(default_factory=dict)
    baseline_near_stale: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.stale_baseline

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for finding in self.findings:
            tally[finding.code] = tally.get(finding.code, 0) + 1
        return dict(sorted(tally.items()))

    def to_json(self) -> str:
        payload = {
            "version": LINT_SCHEMA_VERSION,
            "files_scanned": self.files_scanned,
            "counts": self.counts(),
            "index": {
                "modules": self.indexed_modules,
                "cached": self.cached_modules,
            },
            "baseline": {
                "used": self.baseline_used,
                "entries": self.baseline_entries,
                "matched_by_code": dict(sorted(self.baseline_counts.items())),
                "near_stale": self.baseline_near_stale,
            },
            "suppressed": {
                "inline": self.suppressed_inline,
                "baseline": self.suppressed_baseline,
            },
            "stale_baseline": self.stale_baseline,
            "findings": [
                {
                    "code": f.code,
                    "message": f.message,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "fingerprint": f.fingerprint,
                }
                for f in self.findings
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        for entry in self.stale_baseline:
            lines.append(
                "baseline: stale entry "
                f"{entry['fingerprint']} ({entry.get('reason', 'no reason')}) "
                "matches nothing; remove it"
            )
        counts = self.counts()
        summary = (
            ", ".join(f"{code}={n}" for code, n in counts.items())
            if counts
            else "clean"
        )
        suppressed = self.suppressed_inline + self.suppressed_baseline
        tail = f" ({suppressed} suppressed)" if suppressed else ""
        if self.baseline_used:
            lines.append(self.baseline_summary())
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_scanned} "
            f"file(s): {summary}{tail}"
        )
        return "\n".join(lines)

    def baseline_summary(self) -> str:
        """One line of baseline hygiene for CI logs.

        An entry is *nearing staleness* when it matched exactly one
        finding — the next fix to that site strands it, so the count is
        an early warning that the baseline is about to need pruning.
        """
        matched = (
            ", ".join(
                f"{code}={n}"
                for code, n in sorted(self.baseline_counts.items())
            )
            or "none"
        )
        return (
            f"baseline: {self.baseline_entries} entr"
            f"{'y' if self.baseline_entries == 1 else 'ies'}, "
            f"matched by code: {matched}, "
            f"{self.baseline_near_stale} nearing staleness, "
            f"{len(self.stale_baseline)} stale"
        )

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotations, one per finding."""
        lines = [
            f"::error file={f.path},line={f.line},col={max(f.col, 1)},"
            f"title={f.code}::{f.message}"
            for f in self.findings
        ]
        for entry in self.stale_baseline:
            lines.append(
                "::error title=stale-baseline::baseline entry "
                f"{entry['fingerprint']} ({entry.get('reason', 'no reason')}) "
                "matches nothing; remove it"
            )
        if self.baseline_used:
            lines.append(f"::notice title=lint-baseline::{self.baseline_summary()}")
        lines.append(
            f"::notice title=repro-lint::{len(self.findings)} finding(s) in "
            f"{self.files_scanned} file(s); index {self.indexed_modules} "
            f"module(s), {self.cached_modules} cached"
        )
        return "\n".join(lines)


def select_rules(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> list[type[Rule]]:
    """Validate ``--select``/``--ignore`` code lists against the registry."""
    for code in (select or []) + (ignore or []):
        if code not in RULE_CODES:
            known = ", ".join(RULE_CODES)
            raise LintUsageError(f"unknown rule code {code!r} (known: {known})")
    chosen = [
        rule
        for rule in ALL_RULES
        if (not select or rule.code in select)
        and (not ignore or rule.code not in ignore)
    ]
    if not chosen:
        raise LintUsageError("selection leaves no rules to run")
    return chosen


def collect_files(paths: list[str]) -> list[str]:
    """Python files under ``paths``, sorted, ``__pycache__`` excluded."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(dirpath, filename))
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(files))


def find_project_root(start: str) -> str | None:
    """Nearest ancestor of ``start`` containing ``pyproject.toml``."""
    current = os.path.abspath(start)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    while True:
        if os.path.exists(os.path.join(current, "pyproject.toml")):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def load_baseline(path: str) -> dict[str, str]:
    """``fingerprint -> reason`` from a baseline JSON file."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise LintUsageError(f"cannot read baseline {path}: {error}") from error
    entries = payload.get("entries", [])
    baseline: dict[str, str] = {}
    for entry in entries:
        fingerprint = entry.get("fingerprint")
        reason = entry.get("reason")
        if not fingerprint or not reason:
            raise LintUsageError(
                f"baseline {path}: every entry needs a fingerprint and a reason"
            )
        baseline[fingerprint] = reason
    return baseline


def _inline_suppressed(line_text: str, code: str) -> bool:
    match = _INLINE_IGNORE.search(line_text)
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    return code in {c.strip() for c in codes.split(",")}


def _load_index_cache(cache_path: str) -> dict[str, dict[str, object]]:
    """``abspath -> {"hash", "index"}`` entries, or empty on any damage."""
    try:
        with open(cache_path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    if not isinstance(payload, dict):
        return {}
    if payload.get("version") != INDEX_SCHEMA_VERSION:
        return {}
    entries = payload.get("entries")
    return entries if isinstance(entries, dict) else {}


def _write_index_cache(cache_path: str, modules: dict[str, ModuleIndex]) -> None:
    payload = {
        "version": INDEX_SCHEMA_VERSION,
        "entries": {
            abspath: {
                "hash": mod.content_hash,
                "index": mod.to_payload(),
            }
            for abspath, mod in sorted(modules.items())
        },
    }
    try:
        with open(cache_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
            handle.write("\n")
    except OSError:
        pass  # a read-only checkout never fails the lint run


def _index_scope(files: list[str], root: str | None) -> list[str]:
    """Pass-1 file set: the whole ``src`` tree plus the linted files.

    Linting a single file must still see the whole program — DET004's
    call chains and FRK's crossing closure span modules the user did not
    name on the command line.
    """
    scope = list(files)
    if root is not None:
        src = os.path.join(root, "src")
        if os.path.isdir(src):
            scope = scope + collect_files([src])
    # The lint set may spell a path relative while the src sweep spells
    # it absolute; dedupe on the real path, keeping the lint set's
    # spelling (it came first) so display paths match the invocation.
    unique: dict[str, str] = {}
    for path in scope:
        unique.setdefault(os.path.abspath(path), path)
    return sorted(unique.values())


def _build_index(
    files: list[str], root: str | None, cache_path: str | None
) -> tuple[ProjectIndex, dict[str, tuple[str, ast.Module]], int, int]:
    """Pass 1: summarize every module in scope, reusing cached summaries.

    Returns ``(index, parsed, indexed, cached)`` where ``parsed`` maps
    the lint-phase files' paths to their already-parsed trees so pass 2
    never parses a file twice.
    """
    cache = _load_index_cache(cache_path) if cache_path else {}
    lint_set = set(files)
    parsed: dict[str, tuple[str, ast.Module]] = {}
    modules: dict[str, ModuleIndex] = {}
    cached = 0
    for file_path in _index_scope(files, root):
        abspath = os.path.abspath(file_path)
        try:
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            continue
        display = _display_path(file_path)
        entry = cache.get(abspath)
        file_hash = content_hash(source)
        mod: ModuleIndex | None = None
        needs_tree = file_path in lint_set
        if (
            entry is not None
            and entry.get("hash") == file_hash
            and isinstance(entry.get("index"), dict)
        ):
            try:
                mod = ModuleIndex.from_payload(entry["index"])  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError):
                mod = None
            if mod is not None:
                # Display paths depend on the invocation cwd; pin them
                # to this run's view of the tree.
                mod.path = display
                mod.module = module_name_for(file_path)
                cached += 1
        if mod is None or needs_tree:
            try:
                tree = ast.parse(source, filename=file_path)
            except SyntaxError:
                continue  # the lint phase reports the PARSE finding
            if needs_tree:
                parsed[file_path] = (source, tree)
            if mod is None:
                mod = index_module(file_path, display, source, tree)
        modules[abspath] = mod
    if cache_path is not None:
        _write_index_cache(cache_path, modules)
    return ProjectIndex(list(modules.values())), parsed, len(modules), cached


def run_lint(
    paths: list[str],
    *,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
    baseline_path: str | None = None,
    cache_path: str | None = None,
) -> LintResult:
    """Lint ``paths`` and return the (already suppressed) result.

    ``cache_path`` enables the incremental pass-1 cache; the default of
    None keeps programmatic runs (and the test suite) hermetic.
    """
    files = collect_files(paths)
    rules: list[Rule] = [rule_cls() for rule_cls in select_rules(select, ignore)]
    root = find_project_root(files[0]) if files else None
    index, parsed, indexed_modules, cached_modules = _build_index(
        files, root, cache_path
    )
    project = ProjectContext(root=root, index=index)

    findings: list[Finding] = []
    sources: dict[str, list[str]] = {}
    for file_path in files:
        display = _display_path(file_path)
        if file_path in parsed:
            source, tree = parsed[file_path]
        else:
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
            try:
                tree = ast.parse(source, filename=file_path)
            except SyntaxError as error:
                findings.append(
                    Finding(
                        code="PARSE",
                        message=f"cannot parse file: {error.msg}",
                        path=display,
                        line=error.lineno or 1,
                        col=(error.offset or 1) - 1,
                    )
                )
                continue
        ctx = FileContext(
            path=display,
            module=module_name_for(file_path),
            tree=tree,
            source_lines=source.splitlines(),
            index=index,
            module_index=index.module_for(display),
        )
        sources[display] = ctx.source_lines
        project.scanned.append(display)
        for rule in rules:
            if rule.applies_to(ctx.module):
                findings.extend(rule.visit_file(ctx))

    for rule in rules:
        findings.extend(rule.finalize(project))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.message))

    result = LintResult(
        findings=[],
        files_scanned=len(files),
        indexed_modules=indexed_modules,
        cached_modules=cached_modules,
    )
    baseline = load_baseline(baseline_path) if baseline_path else {}
    result.baseline_used = baseline_path is not None
    result.baseline_entries = len(baseline)
    match_counts: dict[str, int] = {}
    for finding in findings:
        lines = sources.get(finding.path)
        if lines and 1 <= finding.line <= len(lines):
            if _inline_suppressed(lines[finding.line - 1], finding.code):
                result.suppressed_inline += 1
                continue
        if finding.fingerprint in baseline:
            match_counts[finding.fingerprint] = (
                match_counts.get(finding.fingerprint, 0) + 1
            )
            result.suppressed_baseline += 1
            result.baseline_counts[finding.code] = (
                result.baseline_counts.get(finding.code, 0) + 1
            )
            continue
        result.findings.append(finding)
    result.baseline_near_stale = sum(
        1 for count in match_counts.values() if count == 1
    )
    result.stale_baseline = [
        {"fingerprint": fingerprint, "reason": reason}
        for fingerprint, reason in sorted(baseline.items())
        if fingerprint not in match_counts
    ]
    return result


def _display_path(path: str) -> str:
    """Repo-relative posix-style path when possible, else as given."""
    absolute = os.path.abspath(path)
    cwd = os.getcwd()
    if absolute.startswith(cwd + os.sep):
        return os.path.relpath(absolute, cwd).replace(os.sep, "/")
    return path.replace(os.sep, "/")
