"""FRK001/FRK002 — fork/merge safety of instrumentation stores.

The parallel executor (:mod:`repro.parallel`) forks workers and pickles
each worker's entire :class:`~repro.obs.instrument.Instrumentation` back
to the parent, which folds it in with ``merge_from``.  Two contracts
follow for every class reachable from an Instrumentation store:

* **FRK001 — transitively picklable.**  No locks, open file handles,
  lambdas, generators or weak references anywhere in the attribute
  chain: any of these makes the worker's result un-picklable, and the
  failure surfaces as an opaque crash *inside* the pool rather than at
  the offending constructor.
* **FRK002 — order-stable merge.**  Every store registered on
  Instrumentation must implement ``merge_from``; a store that assigns
  dense ids (``self._next_id``) must renumber on merge (its
  ``merge_from`` reads *and* writes ``_next_id``), otherwise worker ids
  collide and the serial-vs-parallel byte identity breaks.

Both rules walk the project index: the crossing set is every class named
``Instrumentation``, the classes its ``__init__`` registers as stores,
and the transitive closure over base classes and classes those stores
construct.  Findings are anchored at the offending class, filtered to
files actually scanned in this run.
"""

from __future__ import annotations

from repro.analysis.lint.base import FileContext, Finding, ProjectContext, Rule
from repro.analysis.lint.index import ClassSummary, ModuleIndex, ProjectIndex

_ROOT_CLASS = "Instrumentation"
_MAX_CLOSURE = 500


def _crossing_classes(
    index: ProjectIndex,
) -> tuple[
    list[tuple[ModuleIndex, ClassSummary]],
    list[tuple[ModuleIndex, ClassSummary, str, int]],
]:
    """The fork-crossing closure and the direct store registrations.

    Returns ``(crossing, stores)`` where ``stores`` carries the
    registration site: ``(module, class, attr name, line)``.
    """
    roots: list[tuple[ModuleIndex, ClassSummary]] = []
    for path in sorted(index.modules):
        mod = index.modules[path]
        root = mod.classes.get(_ROOT_CLASS)
        if root is not None:
            roots.append((mod, root))

    stores: list[tuple[ModuleIndex, ClassSummary, str, int]] = []
    queue: list[tuple[ModuleIndex, ClassSummary]] = []
    seen: set[tuple[str, str]] = set()

    def enqueue(mod: ModuleIndex, cls: ClassSummary) -> None:
        key = (mod.path, cls.name)
        if key not in seen and len(seen) < _MAX_CLOSURE:
            seen.add(key)
            queue.append((mod, cls))

    for mod, root in roots:
        enqueue(mod, root)
        for attr, ref, line in root.store_attrs:
            resolved = index.resolve_class(mod, ref)
            if resolved is not None:
                stores.append((resolved[0], resolved[1], attr, line))
                enqueue(*resolved)

    crossing: list[tuple[ModuleIndex, ClassSummary]] = []
    while queue:
        mod, cls = queue.pop(0)
        crossing.append((mod, cls))
        for base_ref in cls.bases:
            resolved = index.resolve_class(mod, base_ref)
            if resolved is not None:
                enqueue(*resolved)
        for ref in cls.constructed:
            # ``FlowRecord(...)`` inside FlowLog.record: the constructed
            # value lives in the store and crosses the boundary with it.
            head = ref.split(".", 1)[0]
            if head and head[0].isupper():
                resolved = index.resolve_class(mod, ref)
                if resolved is not None:
                    enqueue(*resolved)
    return crossing, stores


class Frk001UnpicklableAcrossFork(Rule):
    code = "FRK001"
    summary = (
        "class crossing the fork/merge boundary holds an unpicklable "
        "attribute (lock, open handle, lambda, generator)"
    )
    exempt_modules = ("repro.analysis.lint",)

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        return []  # project rule: everything happens in finalize

    def finalize(self, project: ProjectContext) -> list[Finding]:
        index = project.index
        if index is None:
            return []
        scanned = set(project.scanned)
        findings: list[Finding] = []
        crossing, _ = _crossing_classes(index)
        for mod, cls in crossing:
            if mod.path not in scanned or not self.applies_to(mod.module):
                continue
            for attr, description, line in cls.hazards:
                findings.append(
                    Finding(
                        code=self.code,
                        message=(
                            f"class {cls.name} crosses the fork/merge "
                            f"boundary but attribute {attr!r} holds "
                            f"{description}; workers cannot pickle it back "
                            "to the parent"
                        ),
                        path=mod.path,
                        line=line,
                    )
                )
        return findings


class Frk002MergeContract(Rule):
    code = "FRK002"
    summary = (
        "Instrumentation store lacks an order-stable merge_from, or a "
        "dense-id store does not renumber on merge"
    )
    exempt_modules = ("repro.analysis.lint",)

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        return []  # project rule: everything happens in finalize

    def finalize(self, project: ProjectContext) -> list[Finding]:
        index = project.index
        if index is None:
            return []
        scanned = set(project.scanned)
        findings: list[Finding] = []
        _, stores = _crossing_classes(index)
        reported: set[tuple[str, str]] = set()
        for mod, cls, attr, _line in stores:
            if mod.path not in scanned or not self.applies_to(mod.module):
                continue
            key = (mod.path, cls.name)
            if key in reported:
                continue
            reported.add(key)
            if not self._has_merge_from(index, mod, cls):
                findings.append(
                    Finding(
                        code=self.code,
                        message=(
                            f"store class {cls.name} (Instrumentation "
                            f"attribute {attr!r}) defines no merge_from; "
                            "parallel workers cannot fold it back "
                            "deterministically"
                        ),
                        path=mod.path,
                        line=cls.lineno,
                    )
                )
                continue
            if cls.writes_next_id and cls.has_merge_from and not (
                cls.merge_reads_next_id and cls.merge_writes_next_id
            ):
                findings.append(
                    Finding(
                        code=self.code,
                        message=(
                            f"dense-id store {cls.name} assigns "
                            "self._next_id but its merge_from does not "
                            "renumber (read and advance _next_id); worker "
                            "ids will collide with the parent's"
                        ),
                        path=mod.path,
                        line=cls.merge_from_line or cls.lineno,
                    )
                )
        return findings

    @staticmethod
    def _has_merge_from(
        index: ProjectIndex, mod: ModuleIndex, cls: ClassSummary
    ) -> bool:
        if cls.has_merge_from:
            return True
        for base_ref in cls.bases:
            resolved = index.resolve_class(mod, base_ref)
            if resolved is not None and Frk002MergeContract._has_merge_from(
                index, *resolved
            ):
                return True
        return False
