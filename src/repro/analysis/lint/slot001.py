"""SLOT001 — attribute assigned on ``self`` but not declared in ``__slots__``.

The hot-path classes (``TcpSocket``, ``Link``, ``Packet``, ``Event``)
use ``__slots__`` for heap compactness.  Assigning an undeclared
attribute on an instance of such a class raises ``AttributeError`` *at
runtime*, on whichever code path first reaches the assignment — the
silent-until-triggered class of bug this rule moves to review time.

A class is checked only when its full inheritance chain is resolvable
within the file and every ancestor declares a literal ``__slots__``
(otherwise instances carry a ``__dict__`` and any attribute is legal).
Property setters defined on the class are recognized as legitimate
assignment targets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.base import FileContext, Finding, Rule


@dataclass
class _ClassInfo:
    name: str
    node: ast.ClassDef
    slots: tuple[str, ...] | None = None   # None: no literal __slots__
    slots_unknown: bool = False            # __slots__ present but not literal
    bases: list[str] = field(default_factory=list)
    bases_unresolvable: bool = False
    setter_names: set[str] = field(default_factory=set)


class Slot001UndeclaredSlot(Rule):
    code = "SLOT001"
    summary = "attribute assigned on self but missing from __slots__"

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        classes = _collect_classes(ctx.tree)
        findings: list[Finding] = []
        for info in classes.values():
            allowed = _resolve_allowed(info, classes)
            if allowed is None:
                continue
            findings.extend(_check_class(ctx, info, allowed))
        return findings


def _collect_classes(tree: ast.Module) -> dict[str, _ClassInfo]:
    classes: dict[str, _ClassInfo] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = _ClassInfo(name=node.name, node=node)
        if any(_is_dataclass_with_slots(d) for d in node.decorator_list):
            # @dataclass(slots=True) synthesizes __slots__ from the
            # fields; the AST does not see them, so skip the class.
            info.slots_unknown = True
        for base in node.bases:
            if isinstance(base, ast.Name):
                info.bases.append(base.id)
            else:
                info.bases_unresolvable = True
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        literal = _literal_slots(statement.value)
                        if literal is None:
                            info.slots_unknown = True
                        else:
                            info.slots = literal
            elif isinstance(statement, ast.FunctionDef):
                for decorator in statement.decorator_list:
                    if (
                        isinstance(decorator, ast.Attribute)
                        and decorator.attr == "setter"
                    ):
                        info.setter_names.add(statement.name)
        classes[node.name] = info
    return classes


def _is_dataclass_with_slots(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    func = decorator.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "dataclass":
        return False
    return any(
        kw.arg == "slots"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in decorator.keywords
    )


def _literal_slots(value: ast.expr) -> tuple[str, ...] | None:
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        names: list[str] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.append(element.value)
            else:
                return None
        return tuple(names)
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return (value.value,)
    return None


def _resolve_allowed(
    info: _ClassInfo, classes: dict[str, _ClassInfo]
) -> set[str] | None:
    """All legal ``self.X`` targets, or None when the class is uncheckable."""
    allowed: set[str] = set()
    seen: set[str] = set()
    current: _ClassInfo | None = info
    while current is not None:
        if current.name in seen:   # inheritance cycle in source; bail out
            return None
        seen.add(current.name)
        if current.slots_unknown or current.bases_unresolvable:
            return None
        if current.slots is None:
            # An ancestor without __slots__ gives instances a __dict__.
            return None
        allowed.update(current.slots)
        allowed.update(current.setter_names)
        if not current.bases:
            break
        if len(current.bases) > 1:
            return None   # multiple inheritance: stay conservative
        base_name = current.bases[0]
        if base_name == "object":
            break
        current = classes.get(base_name)
        if current is None:
            return None   # base defined elsewhere; cannot know its slots
    return allowed


def _check_class(
    ctx: FileContext, info: _ClassInfo, allowed: set[str]
) -> list[Finding]:
    findings: list[Finding] = []
    for statement in info.node.body:
        if not isinstance(statement, ast.FunctionDef):
            continue
        if any(
            isinstance(d, ast.Name) and d.id in ("staticmethod", "classmethod")
            for d in statement.decorator_list
        ):
            continue
        if not statement.args.args:
            continue
        self_name = statement.args.args[0].arg
        for node in ast.walk(statement):
            for target_attr in _stored_self_attrs(node, self_name):
                if target_attr in allowed:
                    continue
                findings.append(
                    ctx.finding(
                        "SLOT001",
                        node,
                        f"attribute `{target_attr}` assigned on self but "
                        f"not declared in __slots__ of class "
                        f"`{info.name}` (would raise AttributeError at "
                        "runtime)",
                    )
                )
    return findings


def _stored_self_attrs(node: ast.AST, self_name: str) -> list[str]:
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Call):
        # setattr(self, "x", ...) with a literal name
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "setattr"
            and len(node.args) >= 2
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == self_name
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            return [node.args[1].value]
        return []
    flattened: list[ast.expr] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            flattened.extend(target.elts)
        else:
            flattened.append(target)
    return [
        target.attr
        for target in flattened
        if isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == self_name
    ]
