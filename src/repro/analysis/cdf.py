"""Empirical cumulative distribution functions.

Every figure in the paper's evaluation is a CDF; this class is the single
representation the experiment harnesses share.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Iterable, Sequence


class EmpiricalCdf:
    """An immutable empirical CDF over float samples."""

    def __init__(self, samples: Iterable[float]) -> None:
        values = sorted(float(s) for s in samples)
        if not values:
            raise ValueError("cannot build a CDF from zero samples")
        self._values = values

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    @property
    def min(self) -> float:
        return self._values[0]

    @property
    def max(self) -> float:
        return self._values[-1]

    @property
    def mean(self) -> float:
        # fsum: the mean must not depend on how the samples were grouped
        # before they reached this CDF (serial vs merged collection).
        return math.fsum(self._values) / len(self._values)

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def cdf(self, x: float) -> float:
        """P(sample <= x)."""
        return bisect.bisect_right(self._values, x) / len(self._values)

    def quantile(self, p: float) -> float:
        """The value at CDF level ``p`` (linear interpolation)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        if p == 0.0:
            return self._values[0]
        if p == 1.0:
            return self._values[-1]
        position = p * (len(self._values) - 1)
        low = int(position)
        frac = position - low
        if low + 1 >= len(self._values):
            return self._values[-1]
        lo, hi = self._values[low], self._values[low + 1]
        # Clamp: in the subnormal range the convex combination can round
        # outside [lo, hi] (e.g. 0.5 * 5e-324 == 0.0), which would put a
        # quantile below the minimum sample.
        return min(max(lo * (1.0 - frac) + hi * frac, lo), hi)

    def percentiles(self, levels: Iterable[float]) -> list[float]:
        """Quantiles at several levels given in percent (e.g. 5, 50, 95)."""
        return [self.quantile(level / 100.0) for level in levels]

    def series(self, points: int = 100) -> list[tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting/printing."""
        if points < 2:
            raise ValueError(f"need at least 2 points, got {points}")
        return [
            (self.quantile(i / (points - 1)), i / (points - 1))
            for i in range(points)
        ]

    def __repr__(self) -> str:
        return (
            f"<EmpiricalCdf n={len(self)} min={self.min:.4g} "
            f"median={self.median:.4g} max={self.max:.4g}>"
        )
