"""Statistical comparison of paired measurement distributions.

The paper makes both positive claims ("transfer times decreased for 30%
of connections") and null claims ("Riptide had no discernible effect on
the 10KB probes").  A two-sample Kolmogorov–Smirnov test puts numbers on
both: a tiny p-value says the distributions genuinely differ, a large
one says any difference is noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from scipy import stats


@dataclass(frozen=True)
class KsComparison:
    """Result of a two-sample KS test between control and treatment."""

    statistic: float
    p_value: float
    n_control: int
    n_treatment: int

    def distributions_differ(self, alpha: float = 0.01) -> bool:
        """True when the difference is significant at level ``alpha``."""
        return self.p_value < alpha

    def consistent_with_no_change(self, alpha: float = 0.05) -> bool:
        """True when the data cannot reject 'no effect' at ``alpha``."""
        return self.p_value >= alpha

    def summary(self) -> str:
        return (
            f"KS D={self.statistic:.3f} p={self.p_value:.4g} "
            f"(n={self.n_control}/{self.n_treatment})"
        )


def ks_compare(
    control: Iterable[float],
    treatment: Iterable[float],
) -> KsComparison:
    """Two-sample KS test; raises on empty inputs."""
    control_values = list(control)
    treatment_values = list(treatment)
    if not control_values or not treatment_values:
        raise ValueError("ks_compare requires non-empty samples on both sides")
    result = stats.ks_2samp(control_values, treatment_values)
    return KsComparison(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        n_control=len(control_values),
        n_treatment=len(treatment_values),
    )


def median_shift(
    control: Iterable[float],
    treatment: Iterable[float],
) -> float:
    """Fractional median improvement of treatment over control."""
    control_values = sorted(control)
    treatment_values = sorted(treatment)
    if not control_values or not treatment_values:
        raise ValueError("median_shift requires non-empty samples")
    control_median = control_values[len(control_values) // 2]
    treatment_median = treatment_values[len(treatment_values) // 2]
    if control_median == 0:
        return 0.0
    return 1.0 - treatment_median / control_median
