"""Comparison statistics for paired experiment runs.

:func:`percentile_gain_profile` implements the Figure 15/16 analysis:
"the changes in performance by percentile ... in 5% steps" — the
fractional improvement of the treatment run over the baseline run at each
percentile of their respective completion-time distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.analysis.cdf import EmpiricalCdf


@dataclass(frozen=True)
class PercentileGain:
    """Gain at one percentile of the completion-time distribution."""

    percentile: float
    baseline: float
    treatment: float

    @property
    def gain(self) -> float:
        """Fractional improvement: 0.3 = 30 % faster than baseline."""
        if self.baseline == 0:
            return 0.0
        return 1.0 - self.treatment / self.baseline


def percentile_gain_profile(
    baseline_samples: Iterable[float],
    treatment_samples: Iterable[float],
    step: float = 5.0,
    lowest: float = 5.0,
    highest: float = 95.0,
) -> list[PercentileGain]:
    """Per-percentile gains of treatment over baseline (Figures 15/16)."""
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    baseline = EmpiricalCdf(baseline_samples)
    treatment = EmpiricalCdf(treatment_samples)
    gains = []
    level = lowest
    while level <= highest + 1e-9:
        gains.append(
            PercentileGain(
                percentile=level,
                baseline=baseline.quantile(level / 100.0),
                treatment=treatment.quantile(level / 100.0),
            )
        )
        level += step
    return gains


def fraction_below(samples: Iterable[float], threshold: float) -> float:
    """Fraction of samples at or below a threshold."""
    values = list(samples)
    if not values:
        raise ValueError("fraction_below needs at least one sample")
    return sum(1 for v in values if v <= threshold) / len(values)


def summarize(samples: Sequence[float]) -> dict[str, float]:
    """Small summary used by experiment reports."""
    cdf = EmpiricalCdf(samples)
    return {
        "n": float(len(cdf)),
        "min": cdf.min,
        "p25": cdf.quantile(0.25),
        "median": cdf.median,
        "p75": cdf.quantile(0.75),
        "p90": cdf.quantile(0.90),
        "max": cdf.max,
        "mean": cdf.mean,
    }
