"""Plain-text rendering of experiment output.

The benchmark harnesses print the same rows/series the paper's figures
and tables report; these helpers keep that output aligned and readable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.analysis.cdf import EmpiricalCdf


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_cdf_rows(
    cdfs: dict[str, EmpiricalCdf],
    levels: Sequence[float] = (10, 25, 50, 75, 90, 95),
    value_format: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Render several CDFs side by side at fixed percentile levels."""
    headers = ["series"] + [f"p{level:g}" for level in levels] + ["n"]
    rows = []
    for name, cdf in cdfs.items():
        cells = [name]
        cells.extend(value_format.format(v) for v in cdf.percentiles(levels))
        cells.append(str(len(cdf)))
        rows.append(cells)
    return format_table(headers, rows, title=title)
