"""The live-watch view: a run replayed as operator dashboard frames.

``python -m repro watch <experiment>`` runs an experiment under an
instrumentation capture and then replays the captured stores as a
sequence of aligned sim-time frames — one per SLO evaluation window —
the way an operator would have watched the run live.  Each frame shows
the trace-event volume of the window, the probe-latency p90 per fleet,
and the burn-rate alert state (pending/firing episodes) as of the
frame's end.

Frames are built entirely from the merged stores, in deterministic
order: the frame list (and its JSON rendering) is byte-identical
between a serial run and ``--workers N``.  The interactive mode only
changes pacing (wall-clock sleeps between frames) and cosmetics, never
content.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.instrument import Instrumentation
from repro.obs.slo import DEFAULT_SLO_WINDOW, AlertEpisode
from repro.obs.tsdb import WindowedStore

__all__ = [
    "build_watch_frames",
    "render_watch",
    "watch_frames_to_json",
]


def _episode_status(episode: AlertEpisode, now: float) -> str | None:
    """The episode's lifecycle state as of sim-time ``now`` (inclusive)."""
    if episode.pending_at > now:
        return None
    if episode.resolved_at is not None and episode.resolved_at <= now:
        return None
    if episode.firing_at is not None and episode.firing_at <= now:
        return "firing"
    return "pending"


def build_watch_frames(
    instrumentation: Instrumentation,
    interval: float = DEFAULT_SLO_WINDOW,
) -> list[dict[str, Any]]:
    """The run as a list of frame dicts, one per aligned window.

    Each frame covers ``[index * interval, (index + 1) * interval)`` and
    reports: trace events recorded in the window, probe-latency p90 per
    probe fleet over the window, and the alert episodes pending/firing
    as of the window's end.
    """
    if interval <= 0.0:
        raise ValueError(f"watch interval must be > 0, got {interval}")
    trace = instrumentation.trace
    tsdb = instrumentation.tsdb
    timeline = instrumentation.timeline
    episodes = list(instrumentation.alerts.episodes())

    end = 0.0
    have_data = False
    for event in trace.events():
        end = max(end, event.time)
        have_data = True
    for point in timeline.points():
        end = max(end, point.time)
        have_data = True
    for tsdb_point in tsdb.points():
        end = max(end, tsdb_point.time)
        have_data = True
    for episode in episodes:
        for stamp in (episode.pending_at, episode.firing_at, episode.resolved_at):
            if stamp is not None:
                end = max(end, stamp)
                have_data = True
    if not have_data:
        return []

    last_index = WindowedStore.window_index(end, interval)
    events_per_window = [0] * (last_index + 1)
    for event in trace.events():
        index = WindowedStore.window_index(event.time, interval)
        if 0 <= index <= last_index:
            events_per_window[index] += 1

    probe_sources = tsdb.sources_for("probe_latency")
    frames: list[dict[str, Any]] = []
    for index in range(last_index + 1):
        frame_end = (index + 1) * interval
        probe_p90: dict[str, float] = {}
        for source in probe_sources:
            p90 = tsdb.percentile(source, "probe_latency", index, interval, 90.0)
            if p90 is not None:
                probe_p90[source] = round(p90, 6)
        pending = 0
        firing: list[dict[str, Any]] = []
        for episode in episodes:
            status = _episode_status(episode, frame_end)
            if status == "pending":
                pending += 1
            elif status == "firing":
                firing.append(
                    {
                        "alert_id": episode.alert_id,
                        "slo": episode.slo,
                        "severity": episode.severity,
                        "source": episode.source,
                    }
                )
        frames.append(
            {
                "index": index,
                "time": round(frame_end, 6),
                "events": events_per_window[index],
                "probe_latency_p90": probe_p90,
                "alerts_pending": pending,
                "alerts_firing": len(firing),
                "firing": firing,
            }
        )
    return frames


def render_frame(frame: dict[str, Any]) -> str:
    """One frame as a single status line."""
    p90s = frame["probe_latency_p90"]
    p90_text = (
        " ".join(f"{source}={value * 1000:.0f}ms" for source, value in p90s.items())
        if p90s
        else "-"
    )
    firing = frame["firing"]
    alert_text = f"{frame['alerts_pending']}p/{frame['alerts_firing']}f"
    if firing:
        alert_text += (
            " ["
            + ", ".join(f"{a['slo']}/{a['severity']}" for a in firing[:4])
            + (", ..." if len(firing) > 4 else "")
            + "]"
        )
    return (
        f"t={frame['time']:8.1f}s  events={frame['events']:<6}  "
        f"probe p90: {p90_text}  alerts: {alert_text}"
    )


def render_watch(frames: list[dict[str, Any]], experiment: str = "") -> str:
    """All frames as a plain-text watch transcript (deterministic)."""
    title = experiment or "run"
    lines = [f"== watch: {title} ({len(frames)} frames) =="]
    lines.extend(render_frame(frame) for frame in frames)
    return "\n".join(lines)


def watch_frames_to_json(
    frames: list[dict[str, Any]], experiment: str = ""
) -> str:
    """The frame list as deterministic, indented JSON."""
    return json.dumps(
        {"experiment": experiment, "frames": frames}, indent=2
    )
