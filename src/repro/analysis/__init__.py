"""Measurement analysis: empirical CDFs, percentile gains, renderers."""

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.significance import KsComparison, ks_compare, median_shift
from repro.analysis.stats import (
    PercentileGain,
    fraction_below,
    percentile_gain_profile,
    summarize,
)
from repro.analysis.tables import format_cdf_rows, format_table

__all__ = [
    "EmpiricalCdf",
    "KsComparison",
    "PercentileGain",
    "format_cdf_rows",
    "format_table",
    "fraction_below",
    "ks_compare",
    "median_shift",
    "percentile_gain_profile",
    "summarize",
]
