"""Measurement analysis: empirical CDFs, percentile gains, renderers."""

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.export import (
    cdf_to_csv,
    cdfs_to_csv,
    metrics_to_csv,
    metrics_to_json,
    rows_to_csv,
    trace_to_json,
    write_csv,
)
from repro.analysis.significance import KsComparison, ks_compare, median_shift
from repro.analysis.stats import (
    PercentileGain,
    fraction_below,
    percentile_gain_profile,
    summarize,
)
from repro.analysis.tables import format_cdf_rows, format_table

__all__ = [
    "EmpiricalCdf",
    "KsComparison",
    "PercentileGain",
    "cdf_to_csv",
    "cdfs_to_csv",
    "format_cdf_rows",
    "format_table",
    "fraction_below",
    "ks_compare",
    "median_shift",
    "metrics_to_csv",
    "metrics_to_json",
    "percentile_gain_profile",
    "rows_to_csv",
    "summarize",
    "trace_to_json",
    "write_csv",
]
