"""CSV/JSON export of experiment data and run metrics.

Each figure harness prints human-readable tables; downstream users who
want to re-plot with their own tools can dump the underlying series with
these helpers instead of scraping the text output.  The metric/trace
exporters serialise a run's :class:`~repro.obs.MetricsRegistry` and
:class:`~repro.obs.TraceLog` (see ``python -m repro metrics``).
"""

from __future__ import annotations

import csv
import io
import json
import math
from collections.abc import Iterable, Mapping, Sequence

from repro.analysis.cdf import EmpiricalCdf
from repro.obs.flow import FlowLog
from repro.obs.metrics import DEFAULT_PERCENTILES, MetricsRegistry, format_labels
from repro.obs.span import SpanLog
from repro.obs.timeline import Timeline
from repro.obs.trace import TraceLog


def rows_to_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render rows as CSV text (with header line)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        writer.writerow(row)
    return buffer.getvalue()


def cdf_to_csv(cdf: EmpiricalCdf, points: int = 200, label: str = "value") -> str:
    """One CDF as ``(value, cumulative_fraction)`` pairs."""
    return rows_to_csv(
        (label, "cumulative_fraction"),
        [(f"{value:.9g}", f"{fraction:.6f}") for value, fraction in cdf.series(points)],
    )


def cdfs_to_csv(
    cdfs: Mapping[str, EmpiricalCdf],
    points: int = 200,
    label: str = "value",
) -> str:
    """Several CDFs in long format: ``series, value, cumulative_fraction``."""
    if not cdfs:
        raise ValueError("cdfs_to_csv needs at least one series")
    rows = []
    for name, cdf in cdfs.items():
        for value, fraction in cdf.series(points):
            rows.append((name, f"{value:.9g}", f"{fraction:.6f}"))
    return rows_to_csv(("series", label, "cumulative_fraction"), rows)


def write_csv(path: str, content: str) -> None:
    """Write CSV text to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)


def metrics_to_csv(
    registry: MetricsRegistry,
    percentiles: Iterable[float] = DEFAULT_PERCENTILES,
) -> str:
    """One registry in long format: ``kind, metric, labels, field, value``."""
    rows = []
    for row in registry.snapshot(percentiles):
        for field_name, value in row.fields:
            rows.append(
                (row.kind, row.name, format_labels(row.labels), field_name,
                 f"{value:.9g}")
            )
    return rows_to_csv(("kind", "metric", "labels", "field", "value"), rows)


def metrics_to_json(
    registry: MetricsRegistry,
    percentiles: Iterable[float] = DEFAULT_PERCENTILES,
) -> str:
    """One registry as a JSON document (one object per instrument)."""
    payload = [
        {
            "kind": row.kind,
            "metric": row.name,
            "labels": dict(row.labels),
            **dict(row.fields),
        }
        for row in registry.snapshot(percentiles)
    ]
    return json.dumps(payload, indent=2)


def _prom_escape(value: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: Iterable[tuple[str, str]]) -> str:
    pairs = [f'{key}="{_prom_escape(value)}"' for key, value in labels]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _prom_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def metrics_to_prometheus(
    registry: MetricsRegistry,
    percentiles: Iterable[float] = DEFAULT_PERCENTILES,
) -> str:
    """One registry in the Prometheus text exposition format.

    Counters and gauges export their current value; histograms export as
    summaries (one ``quantile``-labelled sample per percentile plus
    ``_sum``/``_count``).  The ``_sum`` line is recomputed from the
    sorted sample list with :func:`math.fsum`, so it is byte-identical
    between a serial run and any merge order of parallel worker
    registries (the registry's incremental sum can differ in the last
    ulp across merge orders).  Families and series are emitted in sorted
    order — the output is a deterministic artifact, suitable for byte
    comparison in CI.
    """
    levels = tuple(percentiles)
    lines: list[str] = []
    counters = registry.counters()
    if counters:
        seen: set[str] = set()
        for counter in counters:
            if counter.name not in seen:
                seen.add(counter.name)
                lines.append(f"# TYPE {counter.name} counter")
            lines.append(
                f"{counter.name}{_prom_labels(counter.labels)} {counter.value}"
            )
    seen_gauges: set[str] = set()
    for gauge in registry.gauges():
        if gauge.name not in seen_gauges:
            seen_gauges.add(gauge.name)
            lines.append(f"# TYPE {gauge.name} gauge")
        lines.append(
            f"{gauge.name}{_prom_labels(gauge.labels)} {_prom_value(gauge.value)}"
        )
    seen_summaries: set[str] = set()
    for histogram in registry.histograms():
        if histogram.name not in seen_summaries:
            seen_summaries.add(histogram.name)
            lines.append(f"# TYPE {histogram.name} summary")
        labels = tuple(histogram.labels)
        if histogram.count:
            for level in levels:
                quantile = _prom_value(level / 100.0)
                quantile_labels = _prom_labels(
                    (*labels, ("quantile", quantile))
                )
                lines.append(
                    f"{histogram.name}{quantile_labels} "
                    f"{_prom_value(histogram.percentile(level))}"
                )
        total = math.fsum(histogram.values())
        lines.append(
            f"{histogram.name}_sum{_prom_labels(labels)} {_prom_value(total)}"
        )
        lines.append(
            f"{histogram.name}_count{_prom_labels(labels)} {histogram.count}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def trace_to_json(log: TraceLog) -> str:
    """A trace log's totals and retained events as a JSON document."""
    payload = {
        "recorded": log.recorded,
        "retained": len(log),
        "dropped": log.dropped,
        "totals": {event_type.value: count for event_type, count in sorted(
            log.totals().items(), key=lambda item: item[0].value
        )},
        "events": [
            {
                "time": event.time,
                "type": event.type.value,
                "source": event.source,
                "details": {k: v for k, v in event.details},
            }
            for event in log.events()
        ],
    }
    return json.dumps(payload, indent=2)


def trace_to_csv(log: TraceLog) -> str:
    """Retained trace events in long format: ``time, type, source, details``.

    Details are flattened ``k=v`` pairs joined with spaces (one column),
    keeping one row per event regardless of each event type's fields.
    """
    rows = []
    for event in log.events():
        details = " ".join(f"{k}={v}" for k, v in event.details)
        rows.append((f"{event.time:.9g}", event.type.value, event.source, details))
    return rows_to_csv(("time", "type", "source", "details"), rows)


def flows_to_jsonl(
    flows: FlowLog,
    since: float | None = None,
    until: float | None = None,
) -> str:
    """Flow records as JSON Lines (one compact object per connection)."""
    records = flows.records(since=since, until=until)
    return "\n".join(
        json.dumps(record.to_dict(), separators=(",", ":"))
        for record in records
    ) + ("\n" if records else "")


def flows_to_json(
    flows: FlowLog,
    since: float | None = None,
    until: float | None = None,
) -> str:
    """Flow records plus log-level counts as one JSON document.

    ``recorded``/``retained``/``dropped`` always describe the whole log;
    ``selected`` and the record list reflect the ``since``/``until``
    sim-time window when one is given.
    """
    records = flows.records(since=since, until=until)
    payload = {
        "recorded": flows.next_id,
        "retained": len(flows),
        "dropped": flows.dropped,
        "selected": len(records),
        "flows": [record.to_dict() for record in records],
    }
    return json.dumps(payload, indent=2)


def spans_to_chrome_json(spans: SpanLog) -> str:
    """Spans as a Chrome trace-event JSON document.

    Loadable directly in Perfetto / ``chrome://tracing``: the object
    format with a ``traceEvents`` array and a display unit.
    """
    payload = {
        "traceEvents": spans.to_chrome_trace(),
        "displayTimeUnit": "ms",
    }
    return json.dumps(payload, indent=2)


def timeline_to_csv(timeline: Timeline) -> str:
    """Timeline points in long format: ``time, source, series, value``."""
    rows = [
        (f"{point.time:.9g}", point.source, point.series, f"{point.value:.9g}")
        for point in timeline.points()
    ]
    return rows_to_csv(("time", "source", "series", "value"), rows)
