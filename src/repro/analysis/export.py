"""CSV export of experiment data.

Each figure harness prints human-readable tables; downstream users who
want to re-plot with their own tools can dump the underlying series with
these helpers instead of scraping the text output.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Mapping, Sequence

from repro.analysis.cdf import EmpiricalCdf


def rows_to_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render rows as CSV text (with header line)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        writer.writerow(row)
    return buffer.getvalue()


def cdf_to_csv(cdf: EmpiricalCdf, points: int = 200, label: str = "value") -> str:
    """One CDF as ``(value, cumulative_fraction)`` pairs."""
    return rows_to_csv(
        (label, "cumulative_fraction"),
        [(f"{value:.9g}", f"{fraction:.6f}") for value, fraction in cdf.series(points)],
    )


def cdfs_to_csv(
    cdfs: Mapping[str, EmpiricalCdf],
    points: int = 200,
    label: str = "value",
) -> str:
    """Several CDFs in long format: ``series, value, cumulative_fraction``."""
    if not cdfs:
        raise ValueError("cdfs_to_csv needs at least one series")
    rows = []
    for name, cdf in cdfs.items():
        for value, fraction in cdf.series(points):
            rows.append((name, f"{value:.9g}", f"{fraction:.6f}"))
    return rows_to_csv(("series", label, "cumulative_fraction"), rows)


def write_csv(path: str, content: str) -> None:
    """Write CSV text to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
