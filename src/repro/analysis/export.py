"""CSV/JSON export of experiment data and run metrics.

Each figure harness prints human-readable tables; downstream users who
want to re-plot with their own tools can dump the underlying series with
these helpers instead of scraping the text output.  The metric/trace
exporters serialise a run's :class:`~repro.obs.MetricsRegistry` and
:class:`~repro.obs.TraceLog` (see ``python -m repro metrics``).
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable, Mapping, Sequence

from repro.analysis.cdf import EmpiricalCdf
from repro.obs.flow import FlowLog
from repro.obs.metrics import DEFAULT_PERCENTILES, MetricsRegistry, format_labels
from repro.obs.span import SpanLog
from repro.obs.timeline import Timeline
from repro.obs.trace import TraceLog


def rows_to_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render rows as CSV text (with header line)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        writer.writerow(row)
    return buffer.getvalue()


def cdf_to_csv(cdf: EmpiricalCdf, points: int = 200, label: str = "value") -> str:
    """One CDF as ``(value, cumulative_fraction)`` pairs."""
    return rows_to_csv(
        (label, "cumulative_fraction"),
        [(f"{value:.9g}", f"{fraction:.6f}") for value, fraction in cdf.series(points)],
    )


def cdfs_to_csv(
    cdfs: Mapping[str, EmpiricalCdf],
    points: int = 200,
    label: str = "value",
) -> str:
    """Several CDFs in long format: ``series, value, cumulative_fraction``."""
    if not cdfs:
        raise ValueError("cdfs_to_csv needs at least one series")
    rows = []
    for name, cdf in cdfs.items():
        for value, fraction in cdf.series(points):
            rows.append((name, f"{value:.9g}", f"{fraction:.6f}"))
    return rows_to_csv(("series", label, "cumulative_fraction"), rows)


def write_csv(path: str, content: str) -> None:
    """Write CSV text to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)


def metrics_to_csv(
    registry: MetricsRegistry,
    percentiles: Iterable[float] = DEFAULT_PERCENTILES,
) -> str:
    """One registry in long format: ``kind, metric, labels, field, value``."""
    rows = []
    for row in registry.snapshot(percentiles):
        for field_name, value in row.fields:
            rows.append(
                (row.kind, row.name, format_labels(row.labels), field_name,
                 f"{value:.9g}")
            )
    return rows_to_csv(("kind", "metric", "labels", "field", "value"), rows)


def metrics_to_json(
    registry: MetricsRegistry,
    percentiles: Iterable[float] = DEFAULT_PERCENTILES,
) -> str:
    """One registry as a JSON document (one object per instrument)."""
    payload = [
        {
            "kind": row.kind,
            "metric": row.name,
            "labels": dict(row.labels),
            **dict(row.fields),
        }
        for row in registry.snapshot(percentiles)
    ]
    return json.dumps(payload, indent=2)


def trace_to_json(log: TraceLog) -> str:
    """A trace log's totals and retained events as a JSON document."""
    payload = {
        "recorded": log.recorded,
        "retained": len(log),
        "dropped": log.dropped,
        "totals": {event_type.value: count for event_type, count in sorted(
            log.totals().items(), key=lambda item: item[0].value
        )},
        "events": [
            {
                "time": event.time,
                "type": event.type.value,
                "source": event.source,
                "details": {k: v for k, v in event.details},
            }
            for event in log.events()
        ],
    }
    return json.dumps(payload, indent=2)


def trace_to_csv(log: TraceLog) -> str:
    """Retained trace events in long format: ``time, type, source, details``.

    Details are flattened ``k=v`` pairs joined with spaces (one column),
    keeping one row per event regardless of each event type's fields.
    """
    rows = []
    for event in log.events():
        details = " ".join(f"{k}={v}" for k, v in event.details)
        rows.append((f"{event.time:.9g}", event.type.value, event.source, details))
    return rows_to_csv(("time", "type", "source", "details"), rows)


def flows_to_jsonl(flows: FlowLog) -> str:
    """Flow records as JSON Lines (one compact object per connection)."""
    return "\n".join(
        json.dumps(record.to_dict(), separators=(",", ":"))
        for record in flows.records()
    ) + ("\n" if len(flows) else "")


def flows_to_json(flows: FlowLog) -> str:
    """Flow records plus log-level counts as one JSON document."""
    payload = {
        "recorded": flows.next_id,
        "retained": len(flows),
        "dropped": flows.dropped,
        "flows": [record.to_dict() for record in flows.records()],
    }
    return json.dumps(payload, indent=2)


def spans_to_chrome_json(spans: SpanLog) -> str:
    """Spans as a Chrome trace-event JSON document.

    Loadable directly in Perfetto / ``chrome://tracing``: the object
    format with a ``traceEvents`` array and a display unit.
    """
    payload = {
        "traceEvents": spans.to_chrome_trace(),
        "displayTimeUnit": "ms",
    }
    return json.dumps(payload, indent=2)


def timeline_to_csv(timeline: Timeline) -> str:
    """Timeline points in long format: ``time, source, series, value``."""
    rows = [
        (f"{point.time:.9g}", point.source, point.series, f"{point.value:.9g}")
        for point in timeline.points()
    ]
    return rows_to_csv(("time", "source", "series", "value"), rows)
