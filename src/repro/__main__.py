"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    code = main()
except BrokenPipeError:
    # Downstream closed the pipe (`repro lint src/ | head`): exit
    # quietly like standard unix tools instead of tracebacking.  Stdout
    # is redirected to devnull so the interpreter's shutdown flush
    # doesn't hit the dead pipe and traceback anyway.
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())
    code = 1
raise SystemExit(code)
