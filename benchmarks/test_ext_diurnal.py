"""Extension benchmark: the TTL relearning penalty across traffic valleys.

Quantifies the Discussion-section statement that an idle path makes
Riptide's "effectiveness ... minimal": valleys longer than the TTL expire
the learned routes, so the first fetch of each peak pays full slow start.
"""

from conftest import run_once

from repro.experiments import ext_diurnal


def test_ext_diurnal_relearning_penalty(benchmark):
    result = run_once(benchmark, ext_diurnal.run)
    print("\n" + result.report())
    # The first post-valley fetch starts from the kernel default and is
    # substantially slower than a mid-peak fetch on learned routes.
    assert result.relearning_penalty > 0.3
    assert result.post_valley_median > result.mid_peak_median
