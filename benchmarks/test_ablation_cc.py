"""Ablation: congestion-control algorithm (CUBIC vs Reno) under Riptide.

Riptide leaves steady-state dynamics to the kernel's congestion control;
this ablation confirms the start-up gain is CC-agnostic (both algorithms
use identical slow start) while steady-state growth differs.
"""

import pytest
from conftest import run_once

from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response

RTT = 0.100


def cold_transfer_time(cc_name: str, initcwnd: int) -> float:
    bed = TwoHostTestbed(
        rtt=RTT,
        client_config=TcpConfig(congestion_control=cc_name, default_initrwnd=300),
        server_config=TcpConfig(congestion_control=cc_name, default_initrwnd=300),
    )
    bed.serve_echo()
    bed.server.ip.route_replace("10.0.0.0/24", initcwnd=initcwnd)
    return request_response(bed, response_bytes=100_000).total_time


def steady_state_cwnd(cc_name: str) -> int:
    bed = TwoHostTestbed(
        rtt=RTT,
        client_config=TcpConfig(congestion_control=cc_name, default_initrwnd=300),
        server_config=TcpConfig(congestion_control=cc_name, default_initrwnd=300),
    )
    bed.serve_echo()
    request_response(bed, response_bytes=5_000_000, deadline=120.0)
    return bed.server.sockets()[0].cc.cwnd_segments


def run_ablation() -> dict:
    return {
        "cold": {
            cc: {iw: cold_transfer_time(cc, iw) for iw in (10, 100)}
            for cc in ("cubic", "reno")
        },
        "steady": {cc: steady_state_cwnd(cc) for cc in ("cubic", "reno")},
    }


def test_ablation_congestion_control(benchmark):
    result = run_once(benchmark, run_ablation)
    print("\nAblation: congestion control")
    for cc in ("cubic", "reno"):
        cold = result["cold"][cc]
        print(
            f"  {cc}: cold 100KB IW10={cold[10] * 1000:.0f}ms "
            f"IW100={cold[100] * 1000:.0f}ms steady cwnd={result['steady'][cc]}"
        )
    # The start-up gain is identical under both CCs (shared slow start):
    for cc in ("cubic", "reno"):
        assert result["cold"][cc][100] < result["cold"][cc][10]
    assert result["cold"]["cubic"][10] == pytest.approx(
        result["cold"]["reno"][10], rel=0.01
    )
    # Both grow far past the initial window on a long lossless transfer.
    assert result["steady"]["cubic"] > 100
    assert result["steady"]["reno"] > 100
