"""Figure 6 benchmark: modelled 100 KB transfer times per initcwnd."""

from repro.experiments import fig06_transfer_time_model


def test_fig06_transfer_time_model(benchmark):
    result = benchmark(fig06_transfer_time_model.run)
    print("\n" + result.report())
    # Paper anchor: median IW10 penalty vs IW100 exceeds 280 ms.
    assert result.median_penalty_vs_100() > 0.280
    # Larger initial windows are never slower at any quantile.
    for p in (0.25, 0.5, 0.9):
        assert result.cdfs[10].quantile(p) >= result.cdfs[100].quantile(p)
