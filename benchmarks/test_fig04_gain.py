"""Figure 4 benchmark: theoretical RTT reduction vs file size."""

from repro.experiments import fig04_theoretical_gain


def test_fig04_theoretical_gain(benchmark):
    result = benchmark(fig04_theoretical_gain.run)
    print("\n" + result.report())
    # Paper: gains concentrate between 15 KB and 1 MB and diminish after.
    assert result.gain_at(100, 10_000) == 0.0
    assert result.gain_at(100, 100_000) >= 0.5
    assert result.gain_at(100, 30_000_000) < result.peak_gain(100) / 2
