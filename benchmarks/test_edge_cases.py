"""Section IV-D benchmark: best/worst-case probe times per destination."""

from conftest import run_once

from repro.experiments import edge_cases


def test_edge_cases_minimum_and_maximum(benchmark, paired_probe_study):
    control, riptide = paired_probe_study
    result = run_once(benchmark, edge_cases.build_result, control, riptide)
    print("\n" + result.report())
    # Paper: the best cases were already completing in the minimum RTTs,
    # so most destinations show (near) zero change in their minimum.
    assert result.fraction_min_within(tolerance=0.05) >= 0.5
    # Riptide never makes the best case meaningfully worse.
    assert all(d.min_change <= 0.05 for d in result.destinations)
