"""Figures 12-14 benchmark: probe completion-time CDFs by size/RTT bucket.

This module owns the full paired (control vs Riptide) probe study; the
Figure 15-16 and edge-case benchmarks reuse the same runs for their
analyses.
"""

from conftest import run_once

from repro.experiments import fig12_14_probe_times


def test_fig12_14_probe_completion_times(benchmark, paired_probe_study):
    control, riptide = paired_probe_study
    result = run_once(
        benchmark, fig12_14_probe_times.build_result, control, riptide
    )
    print("\n" + result.report())
    # Shape anchors: 10 KB probes are untouched (they already fit in the
    # default window); 50 KB probes improve over part of the CDF
    # (paper: ~30%); 100 KB probes improve over most of it (paper: ~78%).
    assert result.fraction_improved_for_size(10_000) < 0.10
    assert 0.15 <= result.fraction_improved_for_size(50_000) <= 0.80
    assert result.fraction_improved_for_size(100_000) >= 0.60
    # Ordering: the larger the probe, the more of its CDF improves.
    assert (
        result.fraction_improved_for_size(100_000)
        > result.fraction_improved_for_size(50_000)
        > result.fraction_improved_for_size(10_000)
    )
