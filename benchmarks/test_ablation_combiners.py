"""Ablation: combination algorithm (average vs max vs traffic-weighted).

Section III-B: the average is the deployed choice; max is the aggressive
variant ("the most the link is capable of handling"), traffic-weighting
the conservative one.  This ablation runs the same host with synthetic
connection mixes under each combiner and compares the learned windows.
"""

from conftest import run_once

from repro.core import RiptideAgent, RiptideConfig
from repro.net import Prefix
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


def learned_window(combiner: str) -> int:
    """Learned window for a mix of one busy and several idle connections."""
    bed = TwoHostTestbed(
        rtt=0.080,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    agent = RiptideAgent(
        bed.server,
        RiptideConfig(update_interval=0.5, combiner=combiner, c_max=500),
    )
    agent.start()
    # One big transfer grows a fat connection; three small ones stay thin.
    request_response(bed, response_bytes=1_500_000, deadline=60.0)
    for _ in range(3):
        request_response(bed, response_bytes=2_000)
    bed.sim.run(until=bed.sim.now + 3.0)
    learned = agent.learned_window_for(Prefix.host(bed.client.address))
    assert learned is not None
    return learned


def run_ablation() -> dict:
    return {name: learned_window(name) for name in ("average", "max", "traffic_weighted")}


def test_ablation_combiners(benchmark):
    result = run_once(benchmark, run_ablation)
    print("\nAblation: combiner -> learned window")
    for name, window in result.items():
        print(f"  {name}: {window}")
    # Aggressiveness ordering: max >= average, and the traffic-weighted
    # combiner leans toward the busy (large) connection, so it sits at or
    # above the plain average for this mix.
    assert result["max"] >= result["average"]
    assert result["traffic_weighted"] >= result["average"]
    # All three learned something beyond the default.
    assert all(window > 10 for window in result.values())
