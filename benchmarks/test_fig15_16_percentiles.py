"""Figures 15-16 benchmark: fraction of gain by percentile."""

from conftest import run_once

from repro.experiments import fig15_16_percentile_gain
from repro.experiments.scenarios import EU_SOURCE, NA_SOURCE


def test_fig15_16_percentile_gain(benchmark, paired_probe_study):
    control, riptide = paired_probe_study
    result = run_once(
        benchmark, fig15_16_percentile_gain.build_result, control, riptide
    )
    print("\n" + result.report())
    # Shape anchors: substantial upper-percentile gains for the 50 KB
    # probes (paper: up to ~30% EU / ~21% NA) ...
    for pop in (EU_SOURCE, NA_SOURCE):
        upper = [
            g.gain
            for g in result.profile(50_000, pop)
            if g.percentile >= 70
        ]
        assert max(upper) > 0.2
    # ... and 100 KB gains at least match 50 KB gains in breadth.
    for pop in (EU_SOURCE, NA_SOURCE):
        gains_50 = [g.gain for g in result.profile(50_000, pop)]
        gains_100 = [g.gain for g in result.profile(100_000, pop)]
        improved_50 = sum(1 for g in gains_50 if g > 0.05)
        improved_100 = sum(1 for g in gains_100 if g > 0.05)
        assert improved_100 >= improved_50
