"""Figure 3 benchmark: RTTs to complete transfers per initcwnd."""

from repro.experiments import fig03_rtt_cdf


def test_fig03_rtts_to_complete(benchmark):
    result = benchmark(fig03_rtt_cdf.run, samples=100_000)
    print("\n" + result.report())
    # Paper anchors: +31% first-RTT completions at IW50; 15% need more
    # than one RTT at IW100.
    assert abs(result.extra_first_rtt_at_50 - 0.31) < 0.03
    assert abs(result.not_first_rtt_at_100 - 0.15) < 0.02
