"""Figure 10 benchmark: live congestion windows per c_max value.

Regenerates the sweep over c_max in {50, 100, 150, 200, 250} plus the
no-Riptide control group on the evaluation sub-topology.
"""

from conftest import run_once

from repro.experiments import fig10_cmax_sweep


def test_fig10_cmax_sweep(benchmark):
    result = run_once(
        benchmark,
        fig10_cmax_sweep.run,
        duration=40.0,
        warmup=10.0,
    )
    print("\n" + result.report())
    # Shape anchors: Riptide raises the median window substantially over
    # the control group (paper: ~100% at the lowest setting) ...
    assert result.median_increase_vs_control(50) > 0.5
    # ... every series has a mode at its own c_max (unused connections
    # parked at their learned initial window) ...
    assert result.fraction_at_cmax(50) > result.fraction_at_cmax(100)
    assert result.fraction_at_cmax(100) > result.fraction_at_cmax(250)
    # ... and returns diminish past 100 (the paper's knee): the median
    # stops growing once c_max exceeds what traffic actually reaches.
    median_100 = result.cdfs[100].median
    median_250 = result.cdfs[250].median
    assert median_250 <= median_100 * 1.25
