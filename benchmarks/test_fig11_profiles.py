"""Figure 11 benchmark: probe-only vs organic-traffic PoP windows."""

from conftest import run_once

from repro.experiments import fig11_traffic_profiles


def test_fig11_traffic_profiles(benchmark):
    result = run_once(benchmark, fig11_traffic_profiles.run)
    print("\n" + result.report())
    # Shape anchors: the organic PoP reaches c_max for a large fraction
    # of connections (paper: 44%), the probe-only PoP essentially never
    # does (paper: 99% below c_max) and its windows are much smaller.
    assert result.organic_fraction_at_cmax > 0.3
    assert result.probe_only_fraction_below_cmax > 0.9
    assert result.probe_only.median < result.organic.median
