"""Figure 5 benchmark: the inter-PoP RTT distribution."""

from repro.experiments import fig05_rtt_distribution


def test_fig05_rtt_distribution(benchmark):
    result = benchmark(fig05_rtt_distribution.run)
    print("\n" + result.report())
    # Paper anchor: the median pairwise RTT exceeds 125 ms.
    assert result.cdf.median > 0.125
    assert 0.4 <= result.fraction_over_125ms <= 0.75
