"""Ablation: destination granularity (/32 host routes vs prefix routes).

Section III-B "Destinations as Routes": grouping a whole remote PoP under
one prefix route shares learned state across its hosts and shrinks the
route table.  This ablation fetches from a host the learning agent never
served before — only the prefix mode can jump-start that connection.
"""

from conftest import run_once

from repro.cdn.cluster import CdnCluster, ClusterConfig, with_riptide_config
from repro.cdn.topology import Topology, build_paper_topology


def run_arm(granularity: str) -> dict:
    full = build_paper_topology(servers_per_pop=3)
    topo = Topology(pops=tuple(p for p in full.pops if p.code in ("LHR", "JFK")))
    cluster = CdnCluster(
        topo,
        with_riptide_config(
            ClusterConfig(seed=21), granularity=granularity, prefix_length=16
        ),
    )
    # Organic traffic teaches JFK's host 0 about LHR's host 0 only.
    cluster.add_organic_workload("LHR", ["JFK"], host_index=0)
    cluster.start_riptide()
    cluster.run(25.0)
    # A brand-new consumer: LHR host 2 cold-fetches 100 KB from JFK.
    result = cluster.client("LHR", 2).fetch(cluster.server_address("JFK"), 100_000)
    cluster.run(10.0)
    assert result.completed
    routes = len(cluster.hosts("JFK")[0].route_table)
    return {"time": result.total_time, "routes": routes}


def run_ablation() -> dict:
    return {g: run_arm(g) for g in ("host", "prefix")}


def test_ablation_granularity(benchmark):
    result = run_once(benchmark, run_ablation)
    print("\nAblation: granularity")
    for name, data in result.items():
        print(
            f"  {name}: cold fetch from unseen host "
            f"{data['time'] * 1000:.0f}ms, routes installed {data['routes']}"
        )
    # Prefix routes jump-start connections to hosts never seen before.
    assert result["prefix"]["time"] < result["host"]["time"]
    # And they need no more FIB entries than host routes.
    assert result["prefix"]["routes"] <= result["host"]["routes"]
