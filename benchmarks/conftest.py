"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports (run with ``-s`` to see
them).  Simulation-backed benchmarks execute one full run per benchmark
round; the heavy paired probe study is shared by the three analyses that
consume it (Figures 12-14, 15-16 and the Section IV-D edge cases).
"""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import ProbeStudyConfig, run_paired_probe_study


@pytest.fixture(scope="session")
def paired_probe_study():
    """One control+Riptide probe study shared across benchmark modules."""
    return run_paired_probe_study(ProbeStudyConfig())


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
