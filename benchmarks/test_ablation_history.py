"""Ablation: history policy (EWMA vs windowed vs none).

Section III-B: the EWMA "prevents the congestion window from enacting
dangerous increases, and likewise prevents the window from plummeting"
when connections churn.  This ablation feeds each policy the same noisy
observation sequence and compares stability and responsiveness.
"""

import statistics

from conftest import run_once

from repro.core import make_history_policy


def drive(policy_name: str, sequence: list[float]) -> list[float]:
    policy = make_history_policy(policy_name, alpha=0.7, window=10)
    return [policy.update("dest", value) for value in sequence]


def run_ablation() -> dict:
    # A path whose live windows oscillate (churn: connections close and
    # new small ones appear), then permanently degrade.
    noisy = [100, 10, 100, 10, 100, 10, 100, 10, 100, 10] * 3
    degraded = [100.0] * 10 + [10.0] * 20
    return {
        name: {
            "noise_stdev": statistics.pstdev(drive(name, noisy)[5:]),
            "degrade_trace": drive(name, degraded),
        }
        for name in ("ewma", "windowed", "none")
    }


def test_ablation_history_policies(benchmark):
    result = run_once(benchmark, run_ablation)
    print("\nAblation: history policy under churn")
    for name, data in result.items():
        final = data["degrade_trace"][-1]
        print(
            f"  {name}: stdev under churn={data['noise_stdev']:.1f} "
            f"value 20 ticks after degradation={final:.1f}"
        )
    # Smoothing policies damp churn far below the raw oscillation.
    assert result["ewma"]["noise_stdev"] < result["none"]["noise_stdev"]
    assert result["windowed"]["noise_stdev"] < result["none"]["noise_stdev"]
    # All policies eventually converge to the degraded level.
    for name in ("ewma", "windowed", "none"):
        assert result[name]["degrade_trace"][-1] < 15.0
    # But "none" reacts instantly while EWMA glides down (no plummet).
    ewma_first_after = result["ewma"]["degrade_trace"][10]
    none_first_after = result["none"]["degrade_trace"][10]
    assert none_first_after == 10.0
    assert ewma_first_after > 30.0
