"""Ablation: NewReno-only vs SACK-assisted loss recovery.

The calibrated experiments run NewReno (the reproduction default); this
ablation shows what the SACK option buys on lossy paths — multi-loss
windows recover in one round trip instead of one round trip per hole.
"""

from conftest import run_once

from repro.net.loss import BernoulliLoss
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response

RTT = 0.100


def transfer_under_loss(sack: bool, seed: int) -> float:
    config = TcpConfig(sack=sack, default_initrwnd=300)
    bed = TwoHostTestbed(
        rtt=RTT,
        loss_model=BernoulliLoss(0.02),
        seed=seed,
        client_config=config,
        server_config=config,
    )
    bed.serve_echo()
    result = request_response(bed, response_bytes=400_000, deadline=300.0)
    assert result.completed
    return result.total_time


def run_ablation() -> dict:
    seeds = range(1, 9)
    return {
        "newreno": [transfer_under_loss(False, s) for s in seeds],
        "sack": [transfer_under_loss(True, s) for s in seeds],
    }


def test_ablation_sack_recovery(benchmark):
    result = run_once(benchmark, run_ablation)
    mean_newreno = sum(result["newreno"]) / len(result["newreno"])
    mean_sack = sum(result["sack"]) / len(result["sack"])
    print("\nAblation: 400KB over a 2%-loss path (mean of 8 seeds)")
    print(f"  newreno: {mean_newreno * 1000:.0f}ms")
    print(f"  sack:    {mean_sack * 1000:.0f}ms")
    # SACK recovers multi-loss windows without serial hole-filling.
    assert mean_sack <= mean_newreno
