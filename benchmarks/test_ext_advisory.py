"""Extension benchmark: advisories prevent crowding during load shifts.

Section V proposes feeding load-balancing signals to Riptide so it "sets
more conservative congestion windows to avoid sudden crowding".  This
benchmark stages the crowding: a fleet of connections opens to the same
destination at the same instant, each at the learned initcwnd.
"""

from conftest import run_once

from repro.experiments import ext_advisory


def test_ext_advisory_load_shift(benchmark):
    result = run_once(benchmark, ext_advisory.run)
    print("\n" + result.report())
    control = result.arms["control"]
    riptide = result.arms["riptide"]
    advisory = result.arms["advisory"]
    # Plain Riptide's simultaneous learned-window bursts crowd the path:
    # most drops, failed transfers — the exact Section V concern.
    assert riptide.queue_drops > control.queue_drops
    assert riptide.completed < control.completed
    # The advisory restores full completion and sheds most of the drops.
    assert advisory.completed == control.completed
    assert advisory.queue_drops < riptide.queue_drops
