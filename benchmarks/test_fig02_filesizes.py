"""Figure 2 benchmark: the production file-size distribution."""

from repro.experiments import fig02_filesizes


def test_fig02_filesize_distribution(benchmark):
    result = benchmark(fig02_filesizes.run, samples=100_000)
    print("\n" + result.report())
    # Paper anchor: 54% of files exceed the default 10-segment window.
    assert abs(result.fraction_exceeding_default_window - 0.54) < 0.02
