"""Ablation: user-space routes vs the Section V kernel implementation.

The paper predicts a kernel-mode Riptide "would likely reduce load, as
an external program no longer has to monitor all open connections, and
potentially enable higher granularity computations ... per connection
basis, rather than per route."  Both variants run the same Algorithm 1
here; the ablation compares their side effects: route-table churn and
the resulting transfer times (which must be identical — the mechanism
differs, the policy does not).
"""

from conftest import run_once

from repro.core import KernelModeAgent, RiptideAgent, RiptideConfig
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


def run_arm(agent_cls) -> dict:
    bed = TwoHostTestbed(
        rtt=0.100,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    agent = agent_cls(bed.server, RiptideConfig(update_interval=0.5))
    agent.start()
    # Teach, then measure a cold transfer.
    request_response(bed, response_bytes=1_000_000)
    bed.sim.run(until=bed.sim.now + 3.0)
    for sock in list(bed.client.sockets()):
        sock.close()
    bed.sim.run(until=bed.sim.now + 1.0)
    cold = request_response(bed, response_bytes=100_000)
    return {
        "cold_time": cold.total_time,
        "route_commands": bed.server.ip.commands_issued,
        "route_entries": len(bed.server.route_table),
    }


def run_ablation() -> dict:
    return {
        "user_space": run_arm(RiptideAgent),
        "kernel_mode": run_arm(KernelModeAgent),
    }


def test_ablation_kernel_mode(benchmark):
    result = run_once(benchmark, run_ablation)
    print("\nAblation: user-space routes vs kernel hook")
    for name, data in result.items():
        print(
            f"  {name}: cold 100KB {data['cold_time'] * 1000:.0f}ms, "
            f"ip commands {data['route_commands']}, "
            f"routes {data['route_entries']}"
        )
    # Identical policy -> identical transfer outcome.
    assert result["kernel_mode"]["cold_time"] == result["user_space"]["cold_time"]
    # The kernel variant never touches the route table.
    assert result["kernel_mode"]["route_commands"] == 0
    assert result["kernel_mode"]["route_entries"] == 0
    assert result["user_space"]["route_commands"] > 0
