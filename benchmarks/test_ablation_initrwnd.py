"""Ablation: the Section III-C initrwnd coupling.

"If a sender opens with large initial congestion window, the default
receive window may not be able to handle the first incoming burst.  To
avoid this limitation, the initrwnd must be increased to accommodate the
maximum initial congestion window, c_max."
"""

from conftest import run_once

from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response

RTT = 0.100


def transfer_time(initcwnd: int, initrwnd: int) -> float:
    bed = TwoHostTestbed(
        rtt=RTT,
        client_config=TcpConfig(default_initrwnd=initrwnd),
        server_config=TcpConfig(default_initrwnd=initrwnd),
    )
    bed.serve_echo()
    bed.server.ip.route_replace("10.0.0.0/24", initcwnd=initcwnd)
    return request_response(bed, response_bytes=100_000).total_time


def run_ablation() -> dict:
    return {
        "iw10_stock": transfer_time(10, 20),
        "iw100_stock_rwnd": transfer_time(100, 20),
        "iw100_raised_rwnd": transfer_time(100, 300),
    }


def test_ablation_initrwnd_coupling(benchmark):
    result = run_once(benchmark, run_ablation)
    print("\nAblation: initrwnd coupling (100 KB, 100 ms RTT)")
    for name, value in result.items():
        print(f"  {name}: {value * 1000:.0f}ms")
    # A raised initcwnd helps even against a stock receive window (the
    # window auto-grows), but only a raised initrwnd realises the full
    # single-round transfer.
    assert result["iw100_stock_rwnd"] < result["iw10_stock"]
    assert result["iw100_raised_rwnd"] < result["iw100_stock_rwnd"]
    # The full configuration completes in ~2 RTT (handshake + one round).
    assert result["iw100_raised_rwnd"] < 2.5 * RTT
