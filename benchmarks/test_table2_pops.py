"""Table II benchmark: the continental PoP census."""

from repro.experiments import table2_pops


def test_table2_pop_census(benchmark):
    result = benchmark(table2_pops.run)
    print("\n" + result.report())
    assert result.matches_paper
    assert result.total == 34
