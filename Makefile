# Convenience targets for the Riptide reproduction.

PYTHON ?= python

.PHONY: install test lint typecheck bench bench-guard bench-figs bench-fast examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

# Generic style (ruff) plus the codebase-specific determinism /
# observability rules (`repro lint`, see docs/ARCHITECTURE.md).
lint:
	ruff check src/
	PYTHONPATH=src $(PYTHON) -m repro lint src/ --baseline lint-baseline.json

typecheck:
	$(PYTHON) -m mypy

# Tracked perf baseline (kernel events/s, timer churn, full-stack
# transfer, probe study, sweep, fluid step, hybrid agreement) ->
# BENCH_004.json with ratios against the committed BENCH_003.json.
bench:
	PYTHONPATH=src $(PYTHON) -m repro bench

# Same, but fail if kernel or fluid-step events/s regresses below
# BENCH_003.json.
bench-guard:
	PYTHONPATH=src $(PYTHON) -m repro bench --guard

# Paper figure/table regeneration benchmarks (pytest-benchmark).
bench-figs:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Model-backed artifacts only (seconds instead of minutes).
bench-fast:
	$(PYTHON) -m pytest benchmarks/test_fig02_filesizes.py \
		benchmarks/test_fig03_rtt_cdf.py benchmarks/test_fig04_gain.py \
		benchmarks/test_fig05_rtts.py benchmarks/test_fig06_model_times.py \
		benchmarks/test_table2_pops.py --benchmark-only -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/prefix_granularity.py
	$(PYTHON) examples/operations_playbook.py
	$(PYTHON) examples/parameter_tuning.py
	$(PYTHON) examples/probe_study.py

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
