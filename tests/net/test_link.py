"""Unit tests for link serialization, queueing, propagation and loss."""

import random

import pytest

from repro.net import BernoulliLoss, DuplexLink, IPv4Address, Packet
from repro.net.link import Link

SRC = IPv4Address("10.0.0.1")
DST = IPv4Address("10.1.0.1")


def make_packet(size: int = 1500) -> Packet:
    return Packet(SRC, DST, size)


class TestLinkBasics:
    def test_delivery_includes_serialization_and_propagation(self, sim):
        link = Link(sim, bandwidth_bps=1e6, propagation_delay=0.05)
        arrivals = []
        link.transmit(make_packet(1250), lambda p: arrivals.append(sim.now))
        sim.run_until_idle()
        # 1250 B at 1 Mbps = 10 ms serialization + 50 ms propagation.
        assert arrivals == pytest.approx([0.06])

    def test_back_to_back_packets_serialize(self, sim):
        link = Link(sim, bandwidth_bps=1e6, propagation_delay=0.0)
        arrivals = []
        for _ in range(3):
            link.transmit(make_packet(1250), lambda p: arrivals.append(sim.now))
        sim.run_until_idle()
        assert arrivals == pytest.approx([0.01, 0.02, 0.03])

    def test_serialization_time(self, sim):
        link = Link(sim, bandwidth_bps=8e6, propagation_delay=0.0)
        assert link.serialization_time(1000) == pytest.approx(0.001)

    def test_stats_track_delivery(self, sim):
        link = Link(sim, bandwidth_bps=1e9, propagation_delay=0.001)
        link.transmit(make_packet(100), lambda p: None)
        sim.run_until_idle()
        assert link.stats.packets_offered == 1
        assert link.stats.packets_delivered == 1
        assert link.stats.bytes_delivered == 100
        assert link.stats.drop_rate == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bandwidth_bps": 0},
            {"bandwidth_bps": -1},
            {"propagation_delay": -0.1},
            {"queue_limit_packets": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, sim, kwargs):
        defaults = {"bandwidth_bps": 1e6, "propagation_delay": 0.0}
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            Link(sim, **defaults)


class TestQueueing:
    def test_queue_overflow_drops_tail(self, sim):
        link = Link(sim, bandwidth_bps=1e6, propagation_delay=0.0, queue_limit_packets=2)
        delivered = []
        results = [
            link.transmit(make_packet(1250), lambda p: delivered.append(p.packet_id))
            for _ in range(5)
        ]
        sim.run_until_idle()
        # One transmits immediately, two queue, two are tail-dropped.
        assert results == [True, True, True, False, False]
        assert len(delivered) == 3
        assert link.stats.packets_dropped_queue == 2

    def test_queue_drains_in_fifo_order(self, sim):
        link = Link(sim, bandwidth_bps=1e6, propagation_delay=0.0, queue_limit_packets=10)
        order = []
        packets = [make_packet(125) for _ in range(4)]
        for packet in packets:
            link.transmit(packet, lambda p: order.append(p.packet_id))
        sim.run_until_idle()
        assert order == [p.packet_id for p in packets]

    def test_max_queue_depth_recorded(self, sim):
        link = Link(sim, bandwidth_bps=1e3, propagation_delay=0.0, queue_limit_packets=10)
        for _ in range(5):
            link.transmit(make_packet(100), lambda p: None)
        assert link.stats.max_queue_depth >= 4


class TestLoss:
    def test_lossy_link_drops_packets(self, sim):
        link = Link(
            sim,
            bandwidth_bps=1e9,
            propagation_delay=0.0,
            queue_limit_packets=2000,
            loss_model=BernoulliLoss(0.5),
            rng=random.Random(4),
        )
        delivered = []
        for _ in range(1000):
            link.transmit(make_packet(100), lambda p: delivered.append(1))
        sim.run_until_idle()
        assert 400 < len(delivered) < 600
        assert link.stats.packets_dropped_loss == 1000 - len(delivered)

    def test_lost_packet_still_occupies_transmitter(self, sim):
        link = Link(
            sim,
            bandwidth_bps=1e6,
            propagation_delay=0.0,
            loss_model=BernoulliLoss(0.999999),
            rng=random.Random(1),
        )
        arrivals = []
        link.transmit(make_packet(1250), lambda p: arrivals.append(sim.now))
        link.transmit(make_packet(1250), lambda p: arrivals.append(sim.now))
        sim.run_until_idle()
        # Both almost surely lost, but the wire was busy 20 ms total.
        assert sim.now == pytest.approx(0.02)


class TestDuplexLink:
    def test_directions_are_independent(self, sim):
        duplex = DuplexLink(sim, bandwidth_bps=1e6, propagation_delay=0.01)
        forward, backward = [], []
        duplex.forward.transmit(make_packet(125), lambda p: forward.append(sim.now))
        duplex.reverse.transmit(make_packet(125), lambda p: backward.append(sim.now))
        sim.run_until_idle()
        assert len(forward) == 1 and len(backward) == 1

    def test_rtt_is_sum_of_propagation(self, sim):
        duplex = DuplexLink(sim, bandwidth_bps=1e9, propagation_delay=0.030)
        assert duplex.rtt == pytest.approx(0.060)

    def test_loss_state_is_per_direction(self, sim):
        duplex = DuplexLink(
            sim,
            bandwidth_bps=1e9,
            propagation_delay=0.0,
            loss_model=BernoulliLoss(0.3),
            rng_forward=random.Random(1),
            rng_reverse=random.Random(2),
        )
        assert duplex.forward._loss is not duplex.reverse._loss


class TestQueueDepthGauge:
    """Regression: the link_queue_depth gauge was set on enqueue only, so
    after a burst drained it stayed stuck at the peak."""

    def test_gauge_returns_to_zero_when_queue_empties(self):
        from repro.obs import capture
        from repro.sim import Simulator

        with capture() as instrumentation:
            sim = Simulator()
            link = Link(sim, bandwidth_bps=1e6, propagation_delay=0.001)
            for _ in range(10):
                link.transmit(make_packet(1250), lambda p: None)
            gauge = instrumentation.metrics.gauge("link_queue_depth")
            assert gauge.value > 0
            sim.run_until_idle()
            assert link.queue_depth == 0
            assert gauge.value == 0
            # The high-water mark still records the burst peak.
            assert gauge.max_value == 9

    def test_gauge_tracks_partial_drain(self):
        from repro.obs import capture
        from repro.sim import Simulator

        with capture() as instrumentation:
            sim = Simulator()
            link = Link(sim, bandwidth_bps=1e6, propagation_delay=0.0)
            for _ in range(5):
                link.transmit(make_packet(1250), lambda p: None)
            gauge = instrumentation.metrics.gauge("link_queue_depth")
            # 10 ms per packet; by 25 ms three have been popped to the
            # wire (at 0, 10 and 20 ms), so two still wait in the queue.
            sim.run(until=0.025)
            assert gauge.value == link.queue_depth == 2
