"""Unit tests for the zone/trunk fabric."""

import pytest

from repro.net import IPv4Address, Network, NetworkError, Packet, PathSpec, Prefix
from repro.net.errors import NoRouteError


class FakeHost:
    def __init__(self, address: str) -> None:
        self.address = IPv4Address(address)
        self.received: list[Packet] = []

    def receive_packet(self, packet: Packet) -> None:
        self.received.append(packet)


ZONE_A = Prefix.parse("10.0.0.0/24")
ZONE_B = Prefix.parse("10.1.0.0/24")


@pytest.fixture
def fabric(sim, streams):
    network = Network(sim, streams)
    network.add_zone(ZONE_A)
    network.add_zone(ZONE_B)
    network.connect_zones(ZONE_A, ZONE_B, PathSpec(propagation_delay=0.025))
    return network


class TestZones:
    def test_overlapping_zone_rejected(self, sim, streams):
        network = Network(sim, streams)
        network.add_zone(Prefix.parse("10.0.0.0/16"))
        with pytest.raises(NetworkError):
            network.add_zone(Prefix.parse("10.0.5.0/24"))
        with pytest.raises(NetworkError):
            network.add_zone(Prefix.parse("10.0.0.0/8"))

    def test_zone_of_resolves_membership(self, fabric):
        assert fabric.zone_of(IPv4Address("10.0.0.9")) == ZONE_A
        assert fabric.zone_of(IPv4Address("10.1.0.9")) == ZONE_B
        assert fabric.zone_of(IPv4Address("192.168.0.1")) is None

    def test_connect_requires_registered_zones(self, sim, streams):
        network = Network(sim, streams)
        network.add_zone(ZONE_A)
        with pytest.raises(NetworkError):
            network.connect_zones(ZONE_A, ZONE_B, PathSpec())

    def test_connect_zone_to_itself_rejected(self, fabric):
        with pytest.raises(NetworkError):
            fabric.connect_zones(ZONE_A, ZONE_A, PathSpec())

    def test_double_connect_rejected(self, fabric):
        with pytest.raises(NetworkError):
            fabric.connect_zones(ZONE_B, ZONE_A, PathSpec())

    def test_trunk_between_is_symmetric(self, fabric):
        assert fabric.trunk_between(ZONE_A, ZONE_B) is fabric.trunk_between(
            ZONE_B, ZONE_A
        )


class TestDelivery:
    def test_inter_zone_delivery(self, sim, fabric):
        a = FakeHost("10.0.0.1")
        b = FakeHost("10.1.0.1")
        fabric.attach(a)
        fabric.attach(b)
        fabric.send(Packet(a.address, b.address, 100))
        sim.run_until_idle()
        assert len(b.received) == 1
        assert sim.now >= 0.025

    def test_reverse_direction_uses_reverse_link(self, sim, fabric):
        a = FakeHost("10.0.0.1")
        b = FakeHost("10.1.0.1")
        fabric.attach(a)
        fabric.attach(b)
        fabric.send(Packet(b.address, a.address, 100))
        sim.run_until_idle()
        assert len(a.received) == 1

    def test_intra_zone_delivery_is_fast(self, sim, fabric):
        a1 = FakeHost("10.0.0.1")
        a2 = FakeHost("10.0.0.2")
        fabric.attach(a1)
        fabric.attach(a2)
        fabric.send(Packet(a1.address, a2.address, 100))
        sim.run_until_idle()
        assert len(a2.received) == 1
        assert sim.now < 0.001

    def test_unknown_zone_raises(self, sim, fabric):
        a = FakeHost("10.0.0.1")
        fabric.attach(a)
        with pytest.raises(NoRouteError):
            fabric.send(Packet(a.address, IPv4Address("192.168.0.1"), 100))

    def test_unconnected_zones_raise(self, sim, streams):
        network = Network(sim, streams)
        network.add_zone(ZONE_A)
        network.add_zone(ZONE_B)
        a = FakeHost("10.0.0.1")
        network.attach(a)
        with pytest.raises(NoRouteError):
            network.send(Packet(a.address, IPv4Address("10.1.0.1"), 100))

    def test_packet_to_missing_host_counted(self, sim, fabric):
        a = FakeHost("10.0.0.1")
        fabric.attach(a)
        fabric.send(Packet(a.address, IPv4Address("10.1.0.200"), 100))
        sim.run_until_idle()
        assert fabric.packets_to_unknown_host == 1


class TestAttachment:
    def test_duplicate_address_rejected(self, fabric):
        fabric.attach(FakeHost("10.0.0.1"))
        with pytest.raises(NetworkError):
            fabric.attach(FakeHost("10.0.0.1"))

    def test_detach_allows_reattach(self, fabric):
        first = FakeHost("10.0.0.1")
        fabric.attach(first)
        fabric.detach(first.address)
        fabric.attach(FakeHost("10.0.0.1"))

    def test_host_at(self, fabric):
        host = FakeHost("10.0.0.1")
        fabric.attach(host)
        assert fabric.host_at(host.address) is host
        assert fabric.host_at(IPv4Address("10.0.0.2")) is None
