"""Unit tests for the loss models."""

import random

import pytest

from repro.net import BernoulliLoss, GilbertElliottLoss, NoLoss


class TestNoLoss:
    def test_never_drops(self):
        model = NoLoss()
        rng = random.Random(1)
        assert not any(model.should_drop(rng) for _ in range(1000))

    def test_clone_returns_fresh_instance(self):
        model = NoLoss()
        assert model.clone() is not model


class TestBernoulliLoss:
    def test_zero_probability_never_drops(self):
        model = BernoulliLoss(0.0)
        rng = random.Random(1)
        assert not any(model.should_drop(rng) for _ in range(1000))

    def test_drop_rate_approximates_probability(self):
        model = BernoulliLoss(0.2)
        rng = random.Random(7)
        drops = sum(model.should_drop(rng) for _ in range(20000))
        assert 0.18 < drops / 20000 < 0.22

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_invalid_probability_rejected(self, bad):
        with pytest.raises(ValueError):
            BernoulliLoss(bad)

    def test_clone_preserves_probability(self):
        assert BernoulliLoss(0.05).clone().probability == 0.05


class TestGilbertElliottLoss:
    def test_always_good_behaves_like_no_loss(self):
        model = GilbertElliottLoss(0.0, 1.0, loss_good=0.0, loss_bad=1.0)
        rng = random.Random(3)
        assert not any(model.should_drop(rng) for _ in range(1000))

    def test_bad_state_loses_heavily(self):
        model = GilbertElliottLoss(1.0, 0.0, loss_good=0.0, loss_bad=1.0)
        rng = random.Random(3)
        # First packet transitions to bad, everything is lost from there.
        drops = [model.should_drop(rng) for _ in range(100)]
        assert all(drops)

    def test_losses_are_bursty(self):
        """Consecutive losses cluster more than under Bernoulli."""
        model = GilbertElliottLoss(0.01, 0.2, loss_good=0.0, loss_bad=0.5)
        rng = random.Random(11)
        outcomes = [model.should_drop(rng) for _ in range(50000)]
        loss_rate = sum(outcomes) / len(outcomes)
        pairs = sum(
            1 for a, b in zip(outcomes, outcomes[1:]) if a and b
        )
        conditional = pairs / max(sum(outcomes), 1)
        assert conditional > 2 * loss_rate  # loss given loss is elevated

    def test_transition_state_tracked(self):
        model = GilbertElliottLoss(1.0, 0.0)
        rng = random.Random(5)
        model.should_drop(rng)
        assert model.in_bad_state

    def test_clone_resets_state(self):
        model = GilbertElliottLoss(1.0, 0.0)
        rng = random.Random(5)
        model.should_drop(rng)
        assert not model.clone().in_bad_state

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(ValueError):
            GilbertElliottLoss(bad, 0.5)
        with pytest.raises(ValueError):
            GilbertElliottLoss(0.5, 0.5, loss_bad=bad)

    @pytest.mark.parametrize("bad", [-0.01, 1.5])
    def test_invalid_recovery_and_good_rate_rejected(self, bad):
        with pytest.raises(ValueError):
            GilbertElliottLoss(0.5, bad)
        with pytest.raises(ValueError):
            GilbertElliottLoss(0.5, 0.5, loss_good=bad)

    def test_clone_preserves_all_parameters(self):
        model = GilbertElliottLoss(0.02, 0.3, loss_good=0.001, loss_bad=0.7)
        twin = model.clone()
        assert twin.p_good_to_bad == 0.02
        assert twin.p_bad_to_good == 0.3
        assert twin.loss_good == 0.001
        assert twin.loss_bad == 0.7


class TestCloneStateIndependence:
    """Each link direction must own independent channel state."""

    def test_gilbert_elliott_clones_do_not_share_state(self):
        model = GilbertElliottLoss(1.0, 0.0, loss_good=0.0, loss_bad=1.0)
        twin = model.clone()
        rng = random.Random(5)
        model.should_drop(rng)  # drives only the original into bad state
        assert model.in_bad_state
        assert not twin.in_bad_state
        # And the other way round: exercising the clone leaves the
        # original's state untouched.
        fresh = model.clone()
        fresh.should_drop(rng)
        assert fresh.in_bad_state
        assert not model.clone().in_bad_state

    @pytest.mark.parametrize(
        "model",
        [
            NoLoss(),
            BernoulliLoss(0.1),
            GilbertElliottLoss(0.01, 0.2),
        ],
        ids=["no_loss", "bernoulli", "gilbert_elliott"],
    )
    def test_clone_is_always_a_distinct_instance(self, model):
        assert model.clone() is not model

    def test_bernoulli_clones_draw_independently(self):
        # Two clones fed the same rng sequence behave identically —
        # there is no hidden shared mutable state.
        a = BernoulliLoss(0.3).clone()
        b = BernoulliLoss(0.3).clone()
        outcomes_a = [a.should_drop(random.Random(9)) for _ in range(1)]
        outcomes_b = [b.should_drop(random.Random(9)) for _ in range(1)]
        assert outcomes_a == outcomes_b
