"""Conservation properties of the network substrate.

Packets are never created or destroyed silently: everything offered to a
link is either delivered, dropped at the queue tail, dropped in flight,
or still inside the link when the clock stops.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import BernoulliLoss, IPv4Address, Packet
from repro.net.link import Link
from repro.sim import Simulator

SRC = IPv4Address("10.0.0.1")
DST = IPv4Address("10.1.0.1")

FAST = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@FAST
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.floats(min_value=0.0, max_value=0.5),
    queue=st.integers(min_value=1, max_value=64),
    count=st.integers(min_value=1, max_value=300),
)
def test_link_conserves_packets(seed, loss, queue, count):
    sim = Simulator()
    link = Link(
        sim,
        bandwidth_bps=10e6,
        propagation_delay=0.01,
        queue_limit_packets=queue,
        loss_model=BernoulliLoss(loss),
        rng=random.Random(seed),
    )
    delivered = []
    for _ in range(count):
        link.transmit(Packet(SRC, DST, 1000), lambda p: delivered.append(p))
    sim.run_until_idle()
    stats = link.stats
    assert stats.packets_offered == count
    assert (
        stats.packets_delivered
        + stats.packets_dropped_queue
        + stats.packets_dropped_loss
        == count
    )
    assert stats.packets_delivered == len(delivered)
    assert stats.bytes_delivered == 1000 * len(delivered)


@FAST
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    sizes=st.lists(st.integers(min_value=40, max_value=1500), min_size=1, max_size=50),
)
def test_fifo_delivery_order(seed, sizes):
    """A lossless link delivers in exactly the offered order."""
    sim = Simulator()
    link = Link(sim, bandwidth_bps=5e6, propagation_delay=0.005)
    order = []
    packets = [Packet(SRC, DST, size) for size in sizes]
    for packet in packets:
        link.transmit(packet, lambda p: order.append(p.packet_id))
    sim.run_until_idle()
    assert order == [p.packet_id for p in packets]


@FAST
@given(count=st.integers(min_value=1, max_value=100))
def test_throughput_bounded_by_bandwidth(count):
    """Delivery of N back-to-back packets takes at least N*serialization."""
    sim = Simulator()
    link = Link(sim, bandwidth_bps=8e6, propagation_delay=0.0)
    done = []
    for _ in range(count):
        link.transmit(Packet(SRC, DST, 1000), lambda p: done.append(sim.now))
    sim.run_until_idle()
    assert len(done) == count
    # 1000 B at 8 Mbps = 1 ms per packet.
    assert done[-1] == pytest.approx(count * 0.001)


class TestProbeAccounting:
    def test_every_issued_probe_is_tracked(self):
        from repro.cdn.cluster import CdnCluster, ClusterConfig
        from repro.cdn.topology import Topology, build_paper_topology

        full = build_paper_topology()
        topo = Topology(pops=tuple(p for p in full.pops if p.code in ("LHR", "JFK")))
        cluster = CdnCluster(topo, ClusterConfig(seed=9))
        fleet = cluster.make_probe_fleet(["LHR", "JFK"], interval=5.0)
        fleet.start(initial_delay=0.0)
        cluster.run(12.0)
        # 3 rounds x 2 sources x 1 target each x 3 sizes.
        assert len(fleet.results) == 3 * 2 * 1 * 3
        completed = fleet.completed_results()
        incomplete = [p for p in fleet.results if not p.completed]
        assert len(completed) + len(incomplete) == len(fleet.results)
        # On a clean fabric everything issued >1s before the end finished.
        assert len(incomplete) == 0
